//! # memo-fit
//!
//! Nonlinear least-squares fitting by the Levenberg–Marquardt algorithm —
//! the method the paper uses for Figure 2's best-fit line ("nonlinear
//! least squares fitting using the Marquardt-Levenberg Algorithm", §3.2),
//! implemented from scratch.
//!
//! The solver is generic over the model: you provide `f(x, params)` and
//! the data; Jacobians are computed by central finite differences.
//!
//! ```
//! use memo_fit::{fit, fit_line};
//!
//! // Recover a planted line y = 0.9 - 0.05 x.
//! let xs: Vec<f64> = (0..20).map(f64::from).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 0.9 - 0.05 * x).collect();
//! let line = fit_line(&xs, &ys)?;
//! assert!((line.intercept - 0.9).abs() < 1e-8);
//! assert!((line.slope + 0.05).abs() < 1e-8);
//!
//! // The same through the general interface with an exponential model.
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (-0.3 * x).exp()).collect();
//! let result = fit(|x, p| p[0] * (p[1] * x).exp(), &xs, &ys, &[1.0, -0.1])?;
//! assert!((result.params[0] - 2.0).abs() < 1e-6);
//! assert!((result.params[1] + 0.3).abs() < 1e-6);
//! # Ok::<(), memo_fit::FitError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Errors from the fitting routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// `xs` and `ys` differ in length or are empty.
    BadData,
    /// Fewer data points than parameters.
    Underdetermined,
    /// The normal equations became singular and damping could not rescue
    /// them (e.g. a parameter has no effect on the model).
    Singular,
    /// The iteration limit was reached before convergence.
    NoConvergence,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::BadData => f.write_str("xs and ys must be non-empty and equal length"),
            FitError::Underdetermined => f.write_str("fewer data points than parameters"),
            FitError::Singular => f.write_str("normal equations are singular"),
            FitError::NoConvergence => f.write_str("did not converge within the iteration limit"),
        }
    }
}

impl std::error::Error for FitError {}

/// The outcome of a successful fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Best-fit parameters.
    pub params: Vec<f64>,
    /// Residual sum of squares at the solution.
    pub rss: f64,
    /// Iterations used.
    pub iterations: u32,
}

/// A fitted straight line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Value at `x = 0`.
    pub intercept: f64,
    /// Change in `y` per unit `x`.
    pub slope: f64,
    /// Residual sum of squares.
    pub rss: f64,
}

impl Line {
    /// Evaluate the line at `x`.
    #[must_use]
    pub fn at(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Levenberg–Marquardt fit of `model(x, params)` to `(xs, ys)`.
///
/// # Errors
///
/// See [`FitError`]; in particular the fit fails if the data is shorter
/// than the parameter vector or the Jacobian collapses.
pub fn fit(
    model: impl Fn(f64, &[f64]) -> f64,
    xs: &[f64],
    ys: &[f64],
    initial: &[f64],
) -> Result<FitResult, FitError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(FitError::BadData);
    }
    let np = initial.len();
    if np == 0 || xs.len() < np {
        return Err(FitError::Underdetermined);
    }

    let rss_of = |p: &[f64]| -> f64 {
        xs.iter().zip(ys).map(|(&x, &y)| (y - model(x, p)).powi(2)).sum()
    };

    let mut params = initial.to_vec();
    let mut lambda = 1e-3;
    let mut rss = rss_of(&params);
    const MAX_ITER: u32 = 200;

    for iter in 0..MAX_ITER {
        // Jacobian by central differences, residuals at current params.
        let mut jtj = vec![vec![0.0f64; np]; np];
        let mut jtr = vec![0.0f64; np];
        for (&x, &y) in xs.iter().zip(ys) {
            let r = y - model(x, &params);
            let mut grad = vec![0.0f64; np];
            for (k, g) in grad.iter_mut().enumerate() {
                let h = 1e-6 * params[k].abs().max(1e-6);
                let mut p_hi = params.clone();
                p_hi[k] += h;
                let mut p_lo = params.clone();
                p_lo[k] -= h;
                *g = (model(x, &p_hi) - model(x, &p_lo)) / (2.0 * h);
            }
            for a in 0..np {
                jtr[a] += grad[a] * r;
                for b in 0..np {
                    jtj[a][b] += grad[a] * grad[b];
                }
            }
        }

        // Try damped steps, growing lambda until the step improves RSS.
        let mut stepped = false;
        for _ in 0..30 {
            let mut damped = jtj.clone();
            for (a, row) in damped.iter_mut().enumerate() {
                row[a] += lambda * row[a].max(1e-12);
            }
            let Some(delta) = solve(damped, jtr.clone()) else {
                lambda *= 10.0;
                continue;
            };
            let candidate: Vec<f64> =
                params.iter().zip(&delta).map(|(p, d)| p + d).collect();
            let new_rss = rss_of(&candidate);
            if new_rss.is_finite() && new_rss <= rss {
                let improvement = rss - new_rss;
                params = candidate;
                rss = new_rss;
                lambda = (lambda * 0.3).max(1e-12);
                stepped = true;
                if improvement <= 1e-12 * (1.0 + rss) {
                    return Ok(FitResult { params, rss, iterations: iter + 1 });
                }
                break;
            }
            lambda *= 10.0;
        }
        if !stepped {
            // No downhill step exists: either converged or singular.
            return if rss.is_finite() {
                Ok(FitResult { params, rss, iterations: iter + 1 })
            } else {
                Err(FitError::Singular)
            };
        }
    }
    Err(FitError::NoConvergence)
}

/// Convenience: fit a straight line (the Figure 2 usage).
///
/// # Errors
///
/// As [`fit`].
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<Line, FitError> {
    let mean_y = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
    let result = fit(|x, p| p[0] + p[1] * x, xs, ys, &[mean_y, 0.0])?;
    Ok(Line { intercept: result.params[0], slope: result.params[1], rss: result.rss })
}

/// Gaussian elimination with partial pivoting; `None` when singular.
// The elimination inner loop reads `a[col][k]` while writing `a[row][k]`;
// an iterator version needs split_at_mut gymnastics that obscure the math.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for (ak, xk) in a[col][col + 1..n].iter().zip(&x[col + 1..n]) {
            sum -= ak * xk;
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_planted_parameters() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.85 - 0.052 * x).collect();
        let line = fit_line(&xs, &ys).unwrap();
        assert!((line.intercept - 0.85).abs() < 1e-8);
        assert!((line.slope + 0.052).abs() < 1e-8);
        assert!(line.rss < 1e-12);
        assert!((line.at(2.0) - (0.85 - 0.104)).abs() < 1e-8);
    }

    #[test]
    fn line_fit_handles_noise() {
        // Deterministic pseudo-noise around a known line.
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.2 - 0.3 * x + 0.01 * ((i * 2654435761) % 100) as f64 / 100.0)
            .collect();
        let line = fit_line(&xs, &ys).unwrap();
        assert!((line.slope + 0.3).abs() < 0.01, "slope {}", line.slope);
    }

    #[test]
    fn exponential_model_converges() {
        let xs: Vec<f64> = (1..40).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (-0.15 * x).exp() + 0.2).collect();
        let r = fit(|x, p| p[0] * (p[1] * x).exp() + p[2], &xs, &ys, &[1.0, -0.05, 0.0]).unwrap();
        assert!((r.params[0] - 3.0).abs() < 1e-4, "{:?}", r.params);
        assert!((r.params[1] + 0.15).abs() < 1e-5);
        assert!((r.params[2] - 0.2).abs() < 1e-4);
    }

    #[test]
    fn saturating_model_converges() {
        // Michaelis-Menten-style y = a·x/(b+x).
        let xs: Vec<f64> = (1..30).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x / (2.5 + x)).collect();
        let r = fit(|x, p| p[0] * x / (p[1] + x), &xs, &ys, &[1.0, 1.0]).unwrap();
        assert!((r.params[0] - 5.0).abs() < 1e-5);
        assert!((r.params[1] - 2.5).abs() < 1e-4);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(fit_line(&[], &[]).unwrap_err(), FitError::BadData);
        assert_eq!(fit_line(&[1.0], &[1.0, 2.0]).unwrap_err(), FitError::BadData);
        assert_eq!(
            fit(|x, p| p[0] * x, &[1.0, 2.0], &[1.0, 2.0], &[]).unwrap_err(),
            FitError::Underdetermined
        );
        // One point, two parameters.
        assert_eq!(fit_line(&[1.0], &[1.0]).unwrap_err(), FitError::Underdetermined);
    }

    #[test]
    fn perfect_fit_terminates_immediately() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 1.0, 1.0, 1.0];
        let line = fit_line(&xs, &ys).unwrap();
        assert!(line.slope.abs() < 1e-12);
        assert!((line.intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solver_rejects_singular_systems() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve(a, vec![1.0, 2.0]), None);
    }

    #[test]
    fn solver_handles_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}

//! The mutable in-memory tier: a sorted map with byte accounting.
//!
//! Writes land here (after the WAL has made them durable) and reads
//! check here first — the memtable always holds the newest version of
//! any key it contains. Deletes are tombstones (`None`) so a flush can
//! shadow older segment versions; compaction reclaims them for good.

use std::collections::BTreeMap;

/// Fixed per-entry overhead charged on top of key/value bytes, so the
/// flush threshold tracks real memory pressure, not just payload size.
const ENTRY_OVERHEAD: usize = 64;

/// The in-memory write buffer. Not thread-safe by itself — the store
/// serializes access.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    bytes: usize,
}

impl MemTable {
    /// An empty memtable.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite `key`.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.insert(key, Some(value));
    }

    /// Record a tombstone for `key`.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.insert(key, None);
    }

    fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let key_len = key.len();
        self.bytes += key_len + value.as_ref().map_or(0, Vec::len) + ENTRY_OVERHEAD;
        if let Some(old) = self.map.insert(key, value) {
            // Replacement: the old version's account (the map keeps the
            // original key allocation, but the charge is symmetric).
            self.bytes -= key_len + old.map_or(0, |v| v.len()) + ENTRY_OVERHEAD;
        }
    }

    /// The newest version of `key`: `Some(Some(v))` live, `Some(None)`
    /// deleted, `None` unknown here (check the segments).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.map.get(key).map(|v| v.as_deref())
    }

    /// Entries (live + tombstones) currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes buffered (keys + values + per-entry overhead) —
    /// the flush trigger.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate entries in key order — the segment writer's input.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Drop everything (after a successful flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_version_wins_and_tombstones_are_visible() {
        let mut mt = MemTable::new();
        mt.put(b"k".to_vec(), b"v1".to_vec());
        mt.put(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(mt.get(b"k"), Some(Some(b"v2".as_slice())));
        mt.delete(b"k".to_vec());
        assert_eq!(mt.get(b"k"), Some(None), "tombstone, not absence");
        assert_eq!(mt.get(b"other"), None);
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn byte_accounting_tracks_replacements() {
        let mut mt = MemTable::new();
        mt.put(b"key".to_vec(), vec![0u8; 100]);
        let first = mt.approx_bytes();
        assert!(first >= 103);
        mt.put(b"key".to_vec(), vec![0u8; 10]);
        assert!(mt.approx_bytes() < first, "smaller replacement shrinks the account");
        mt.clear();
        assert_eq!(mt.approx_bytes(), 0);
        assert!(mt.is_empty());
    }

    #[test]
    fn iterates_in_key_order() {
        let mut mt = MemTable::new();
        mt.put(b"b".to_vec(), b"2".to_vec());
        mt.put(b"a".to_vec(), b"1".to_vec());
        mt.delete(b"c".to_vec());
        let keys: Vec<&[u8]> = mt.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
    }
}

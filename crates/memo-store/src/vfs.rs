//! The virtual filesystem under every store I/O, and its fault-injecting
//! double.
//!
//! All file traffic in this crate — WAL appends, segment writes, renames,
//! fsyncs, directory listings — goes through the [`Vfs`] trait. Production
//! uses [`RealVfs`] (thin `std::fs` passthrough). Tests and chaos runs use
//! [`FaultVfs`], which wraps the real filesystem and injects faults
//! *deterministically*: a SplitMix64 stream seeded by [`FaultConfig::seed`]
//! decides, per operation, whether to fail it, and scheduled faults fire at
//! exact per-class operation counts (the 3rd fsync, the 7th write, …).
//!
//! The injectable fault surface mirrors what real disks do to serving
//! systems:
//!
//! * clean I/O errors on read, write, fsync, and rename;
//! * `ENOSPC` on writes (a full disk);
//! * **short writes** — a prefix of the buffer lands, then the call fails,
//!   exactly the torn-write shape the WAL's CRC framing exists to catch;
//! * configurable latency, so slow disks (not just broken ones) are
//!   reproducible.
//!
//! Open/create/list/remove metadata calls pass through unfaulted: the
//! interesting failure domains are the data path and the durability path,
//! and keeping metadata reliable keeps every injected run recoverable.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One open file behind the [`Vfs`] abstraction.
///
/// The handle owns its cursor semantics: [`read_all`](VfsFile::read_all)
/// reads from the start, [`append`](VfsFile::append) writes at the end,
/// [`truncate`](VfsFile::truncate) cuts to `len` and repositions there,
/// and [`read_exact_at`](VfsFile::read_exact_at) is positioned.
pub trait VfsFile: Send {
    /// Read the whole file (from offset 0) into memory.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Append `buf` at the end of the file, fully. A short write is an
    /// error (the prefix may have landed — exactly a torn write).
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures, including injected
    /// `ENOSPC` and short writes.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flush file contents to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Underlying (or injected) sync failures.
    fn sync(&mut self) -> io::Result<()>;

    /// Cut the file to `len` bytes and position the cursor there.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures (never injected: recovery must be able to
    /// truncate a damaged tail even on a misbehaving disk).
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Read exactly `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// The filesystem the store runs on. Implementations must be shareable
/// across the store's threads.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Open `path` read+write, creating it if absent (the WAL shape).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Create (or truncate) `path` for writing (the segment-tmp shape).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Open `path` read-only (the segment shape).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically move `from` over `to`.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) failures — a crashed rename must leave
    /// `to` either absent or fully the old file, never half of each.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create `path` and any missing parents.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// The entries directly inside `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Flush the *directory entry* at `path` to stable storage.
    ///
    /// A rename is only crash-durable once the parent directory's entry
    /// list is on disk; fsyncing the file alone leaves the publish
    /// vulnerable to vanishing with the dir cache. Counted as an `Fsync`
    /// class operation by the fault injector.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) sync failures.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------------

/// Direct `std::fs` passthrough — production behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.0.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.0.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::End(0))?;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::Start(len)).map(|_| ())
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.read_exact(buf)
    }
}

impl Vfs for RealVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::open(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// The operation classes faults attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `read_all` / `read_exact_at`.
    Read,
    /// `append` (WAL records, segment bodies).
    Write,
    /// `sync` (durability points).
    Fsync,
    /// `rename` (segment publication).
    Rename,
}

impl FaultOp {
    /// All classes, in counter order.
    pub const ALL: [FaultOp; 4] = [FaultOp::Read, FaultOp::Write, FaultOp::Fsync, FaultOp::Rename];

    fn index(self) -> usize {
        match self {
            FaultOp::Read => 0,
            FaultOp::Write => 1,
            FaultOp::Fsync => 2,
            FaultOp::Rename => 3,
        }
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A clean I/O error; nothing reached the disk.
    Error,
    /// `ENOSPC` — the disk is full (write classes only; elsewhere it
    /// degrades to [`FaultKind::Error`]).
    Enospc,
    /// A deterministic prefix of the buffer lands, then the call fails —
    /// the torn-write shape (write class only; elsewhere an error).
    ShortWrite,
}

/// A fault pinned to an exact operation count: "the `nth` operation of
/// class `op` (1-based) fails as `kind`". Scheduled faults take priority
/// over the probabilistic stream, so tests can script exact orderings
/// like *fsync fails, then the process crashes*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// The operation class to fault.
    pub op: FaultOp,
    /// Which occurrence (1-based count within the class).
    pub nth: u64,
    /// How the fault manifests.
    pub kind: FaultKind,
}

/// Everything configurable about a [`FaultVfs`]. Rates are per-mille
/// (0 = never, 1000 = always), evaluated against the deterministic
/// seeded stream once per operation.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the SplitMix64 decision stream.
    pub seed: u64,
    /// Per-mille chance each read fails.
    pub read_error_permille: u32,
    /// Per-mille chance each write (append) fails.
    pub write_error_permille: u32,
    /// Per-mille chance each fsync fails.
    pub fsync_error_permille: u32,
    /// Per-mille chance each rename fails.
    pub rename_error_permille: u32,
    /// Of the write faults that fire, per-mille that manifest as `ENOSPC`.
    pub enospc_permille: u32,
    /// Of the write faults that fire, per-mille that manifest as a short
    /// write (after the `ENOSPC` share).
    pub short_write_permille: u32,
    /// Per-mille chance any faultable operation is delayed by
    /// [`latency`](FaultConfig::latency) before running.
    pub latency_permille: u32,
    /// The injected delay.
    pub latency: Duration,
    /// Exact-count faults, consulted before the probabilistic stream.
    pub scheduled: Vec<ScheduledFault>,
}

impl FaultConfig {
    /// A configuration that injects nothing — a counting passthrough.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_permille: 0,
            write_error_permille: 0,
            fsync_error_permille: 0,
            rename_error_permille: 0,
            enospc_permille: 0,
            short_write_permille: 0,
            latency_permille: 0,
            latency: Duration::ZERO,
            scheduled: Vec::new(),
        }
    }
}

/// A snapshot of what the injector has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations seen per class (`FaultOp::ALL` order).
    pub ops: [u64; 4],
    /// Faults injected per class (`FaultOp::ALL` order).
    pub injected: [u64; 4],
    /// Of the injected write faults, how many were short writes.
    pub short_writes: u64,
    /// Of the injected write faults, how many were `ENOSPC`.
    pub enospc: u64,
    /// Latency injections applied.
    pub delays: u64,
}

/// SplitMix64 — the same deterministic generator the rest of the
/// workspace uses; reimplemented here because this crate is
/// dependency-free by policy.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

struct FaultState {
    config: FaultConfig,
    rng: SplitMix64,
    /// Per-class operation counts (for scheduled faults).
    counts: [u64; 4],
}

struct FaultShared {
    state: Mutex<FaultState>,
    injected: [AtomicU64; 4],
    short_writes: AtomicU64,
    enospc: AtomicU64,
    delays: AtomicU64,
}

/// What one operation should do, as decided by the shared state.
struct Decision {
    delay: Option<Duration>,
    fault: Option<FaultKind>,
}

impl FaultShared {
    fn decide(&self, op: FaultOp) -> Decision {
        let mut st = self.state.lock().expect("fault state poisoned");
        st.counts[op.index()] += 1;
        let n = st.counts[op.index()];

        let delay = (st.config.latency_permille > 0
            && st.rng.next_below(1000) < u64::from(st.config.latency_permille))
        .then_some(st.config.latency);

        let scheduled =
            st.config.scheduled.iter().find(|s| s.op == op && s.nth == n).map(|s| s.kind);
        let fault = scheduled.or_else(|| {
            let permille = match op {
                FaultOp::Read => st.config.read_error_permille,
                FaultOp::Write => st.config.write_error_permille,
                FaultOp::Fsync => st.config.fsync_error_permille,
                FaultOp::Rename => st.config.rename_error_permille,
            };
            if permille == 0 || st.rng.next_below(1000) >= u64::from(permille) {
                return None;
            }
            if op == FaultOp::Write {
                // Split the write-fault budget: ENOSPC, then short write,
                // then a clean error.
                let roll = st.rng.next_below(1000);
                if roll < u64::from(st.config.enospc_permille) {
                    Some(FaultKind::Enospc)
                } else if roll
                    < u64::from(st.config.enospc_permille)
                        + u64::from(st.config.short_write_permille)
                {
                    Some(FaultKind::ShortWrite)
                } else {
                    Some(FaultKind::Error)
                }
            } else {
                Some(FaultKind::Error)
            }
        });
        drop(st);

        if let Some(kind) = fault {
            self.injected[op.index()].fetch_add(1, Ordering::Relaxed);
            match kind {
                FaultKind::ShortWrite => {
                    self.short_writes.fetch_add(1, Ordering::Relaxed);
                }
                FaultKind::Enospc => {
                    self.enospc.fetch_add(1, Ordering::Relaxed);
                }
                FaultKind::Error => {}
            }
        }
        if delay.is_some() {
            self.delays.fetch_add(1, Ordering::Relaxed);
        }
        Decision { delay, fault }
    }

    /// A deterministic prefix length for a short write of `len` bytes —
    /// always strictly shorter than the buffer, so the write is torn.
    fn short_prefix(&self, len: usize) -> usize {
        let mut st = self.state.lock().expect("fault state poisoned");
        usize::try_from(st.rng.next_below(len.max(1) as u64)).unwrap_or(0)
    }
}

fn injected_err(op: FaultOp, kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::Enospc => {
            io::Error::other(format!("injected {op:?} fault: no space left on device (ENOSPC)"))
        }
        FaultKind::ShortWrite => io::Error::other(format!("injected {op:?} fault: short write")),
        FaultKind::Error => io::Error::other(format!("injected {op:?} fault: I/O error")),
    }
}

/// A [`Vfs`] that passes through to [`RealVfs`] while deterministically
/// injecting faults per [`FaultConfig`]. Share the `Arc` you give the
/// store to reconfigure the fault mix mid-run ([`set_config`](Self::set_config))
/// and to read [`stats`](Self::stats).
pub struct FaultVfs {
    inner: RealVfs,
    shared: Arc<FaultShared>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FaultVfs").field("stats", &stats).finish_non_exhaustive()
    }
}

impl FaultVfs {
    /// An injector over the real filesystem.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        let rng = SplitMix64(config.seed ^ 0x5DEE_CE66_D1CE_C0DE);
        FaultVfs {
            inner: RealVfs,
            shared: Arc::new(FaultShared {
                state: Mutex::new(FaultState { config, rng, counts: [0; 4] }),
                injected: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
                short_writes: AtomicU64::new(0),
                enospc: AtomicU64::new(0),
                delays: AtomicU64::new(0),
            }),
        }
    }

    /// Swap the fault mix mid-run (chaos phases: storm → calm). The
    /// operation counts and the decision stream continue; scheduled
    /// faults in the new config match against the continuing counts.
    pub fn set_config(&self, config: FaultConfig) {
        let mut st = self.shared.state.lock().expect("fault state poisoned");
        st.rng = SplitMix64(config.seed ^ 0x5DEE_CE66_D1CE_C0DE);
        st.config = config;
    }

    /// Stop injecting anything (counting passthrough from here on).
    pub fn quiesce(&self) {
        let seed = self.shared.state.lock().expect("fault state poisoned").config.seed;
        self.set_config(FaultConfig::quiet(seed));
    }

    /// Snapshot the injection counters.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        let counts = self.shared.state.lock().expect("fault state poisoned").counts;
        FaultStats {
            ops: counts,
            injected: [
                self.shared.injected[0].load(Ordering::Relaxed),
                self.shared.injected[1].load(Ordering::Relaxed),
                self.shared.injected[2].load(Ordering::Relaxed),
                self.shared.injected[3].load(Ordering::Relaxed),
            ],
            short_writes: self.shared.short_writes.load(Ordering::Relaxed),
            enospc: self.shared.enospc.load(Ordering::Relaxed),
            delays: self.shared.delays.load(Ordering::Relaxed),
        }
    }

    fn wrap(&self, file: Box<dyn VfsFile>) -> Box<dyn VfsFile> {
        Box::new(FaultFile { inner: file, shared: Arc::clone(&self.shared) })
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    shared: Arc<FaultShared>,
}

impl FaultFile {
    fn gate(&self, op: FaultOp) -> io::Result<()> {
        let decision = self.shared.decide(op);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            Some(kind) => Err(injected_err(op, kind)),
            None => Ok(()),
        }
    }
}

impl VfsFile for FaultFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.gate(FaultOp::Read)?;
        self.inner.read_all()
    }

    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let decision = self.shared.decide(FaultOp::Write);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            None => self.inner.append(buf),
            Some(FaultKind::ShortWrite) => {
                // The torn-write shape: a prefix lands, the call fails.
                let prefix = self.shared.short_prefix(buf.len());
                let _ = self.inner.append(&buf[..prefix]);
                Err(injected_err(FaultOp::Write, FaultKind::ShortWrite))
            }
            Some(kind) => Err(injected_err(FaultOp::Write, kind)),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.gate(FaultOp::Fsync)?;
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // Never injected: recovery must be able to cut a damaged tail.
        self.inner.truncate(len)
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.gate(FaultOp::Read)?;
        self.inner.read_exact_at(offset, buf)
    }
}

impl Vfs for FaultVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.open_rw(path).map(|f| self.wrap(f))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.create(path).map(|f| self.wrap(f))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.open_read(path).map(|f| self.wrap(f))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let decision = self.shared.decide(FaultOp::Rename);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            Some(kind) => Err(injected_err(FaultOp::Rename, kind)),
            None => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Durability-point class, same as file fsync: a dir sync that
        // fails means the rename it covers may not survive a crash.
        let decision = self.shared.decide(FaultOp::Fsync);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fault {
            Some(kind) => Err(injected_err(FaultOp::Fsync, kind)),
            None => self.inner.sync_dir(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memo-vfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn real_vfs_roundtrips_append_truncate_and_positioned_reads() {
        let path = tmp("real.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = RealVfs;
        let mut f = vfs.open_rw(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world");
        // Appends after a full read still land at the end.
        f.append(b"!").unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world!");
        f.truncate(5).unwrap();
        f.append(b"?").unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello?");
        let mut buf = [0u8; 2];
        f.read_exact_at(1, &mut buf).unwrap();
        assert_eq!(&buf, b"el");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quiet_fault_vfs_is_a_counting_passthrough() {
        let path = tmp("quiet.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = FaultVfs::new(FaultConfig::quiet(7));
        let mut f = vfs.open_rw(&path).unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"data");
        let stats = vfs.stats();
        assert_eq!(stats.ops, [1, 1, 1, 0]);
        assert_eq!(stats.injected, [0; 4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scheduled_faults_fire_at_exact_operation_counts() {
        let path = tmp("sched.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = FaultVfs::new(FaultConfig {
            scheduled: vec![
                ScheduledFault { op: FaultOp::Write, nth: 2, kind: FaultKind::Error },
                ScheduledFault { op: FaultOp::Fsync, nth: 1, kind: FaultKind::Error },
            ],
            ..FaultConfig::quiet(3)
        });
        let mut f = vfs.open_rw(&path).unwrap();
        f.append(b"a").unwrap(); // write #1: clean
        assert!(f.append(b"b").is_err(), "write #2 is scheduled to fail");
        f.append(b"c").unwrap(); // write #3: clean again
        assert!(f.sync().is_err(), "fsync #1 is scheduled to fail");
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"ac", "the failed write left nothing behind");
        let stats = vfs.stats();
        assert_eq!(stats.injected, [0, 1, 1, 0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_writes_land_a_strict_prefix() {
        let path = tmp("short.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault {
                op: FaultOp::Write,
                nth: 1,
                kind: FaultKind::ShortWrite,
            }],
            ..FaultConfig::quiet(11)
        });
        let mut f = vfs.open_rw(&path).unwrap();
        let payload = vec![0xAB; 64];
        assert!(f.append(&payload).is_err());
        let on_disk = f.read_all().unwrap();
        assert!(on_disk.len() < payload.len(), "a short write must be torn");
        assert_eq!(on_disk, payload[..on_disk.len()], "the prefix that landed is intact");
        assert_eq!(vfs.stats().short_writes, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rate_based_faults_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let path = tmp(&format!("rate-{seed}.bin"));
            let _ = std::fs::remove_file(&path);
            let vfs = FaultVfs::new(FaultConfig {
                write_error_permille: 400,
                ..FaultConfig::quiet(seed)
            });
            let mut f = vfs.open_rw(&path).unwrap();
            let outcomes = (0..64).map(|_| f.append(b"x").is_ok()).collect();
            let _ = std::fs::remove_file(&path);
            outcomes
        };
        assert_eq!(run(5), run(5), "same seed, same fault pattern");
        assert_ne!(run(5), run(6), "different seeds diverge");
        assert!(run(5).iter().any(|ok| !ok), "a 40% rate must fire within 64 ops");
        assert!(run(5).iter().any(|ok| *ok), "and must not fire always");
    }

    #[test]
    fn enospc_faults_name_the_condition() {
        let vfs = FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault { op: FaultOp::Write, nth: 1, kind: FaultKind::Enospc }],
            ..FaultConfig::quiet(1)
        });
        let path = tmp("enospc.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open_rw(&path).unwrap();
        let err = f.append(b"z").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(vfs.stats().enospc, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reconfiguration_mid_run_changes_the_mix() {
        let path = tmp("reconf.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = FaultVfs::new(FaultConfig {
            write_error_permille: 1000,
            ..FaultConfig::quiet(9)
        });
        let mut f = vfs.open_rw(&path).unwrap();
        assert!(f.append(b"x").is_err(), "storm phase: every write fails");
        vfs.quiesce();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.stats().ops[FaultOp::Write.index()], 2);
        let _ = std::fs::remove_file(&path);
    }
}

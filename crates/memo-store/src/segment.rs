//! Immutable sorted segment files with a sparse in-memory index and a
//! persisted per-segment bloom filter.
//!
//! A segment is one memtable flush (or one compaction output), laid out
//! for cheap point lookups without loading the data into memory:
//!
//! ```text
//! header : magic "MSEG" | version u16 LE | reserved u16
//! data   : entries sorted by key, each
//!          [op: u8 (1 = put, 2 = tombstone)]
//!          [klen: u32 LE] [key] (put only: [vlen: u32 LE] [value])
//! index  : [count: u32 LE] then, for every SPARSE_EVERY-th entry,
//!          [klen: u32 LE] [key] [file offset: u64 LE]
//! bloom  : serialized [`Bloom`] over every key (incl. tombstones);
//!          empty when the store was configured with 0 bits/key
//! footer : [data_off u64][index_off u64][bloom_off u64][entry_count u64]
//!          [data_crc u32][index_crc u32][bloom_crc u32][index_count u32]
//!          | magic "GESM"
//! ```
//!
//! Version 1 files (no bloom region, 40-byte footer) remain readable:
//! `open` detects them by the header version and rebuilds the filter
//! from the data region, so old stores upgrade in place on recovery.
//!
//! Writers stream to `<name>.tmp`, `rename` into place, and fsync the
//! *parent directory* — a rename is only crash-durable once the dir
//! entry itself is on stable storage. A crash mid-flush therefore never
//! leaves a half-segment under a live name, and a published segment
//! cannot vanish with the directory cache. `open` validates all region
//! checksums and the footer framing, so bit rot is detected rather than
//! served. Lookups consult the bloom filter (callers use
//! [`Segment::maybe_contains`] to skip files entirely), then
//! binary-search the sparse index for the greatest indexed key ≤ target
//! and scan forward at most `SPARSE_EVERY` entries — the classic SSTable
//! read path, optionally short-circuited by the checksummed
//! [`BlockCache`] so hot spans skip the disk read.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::block_cache::BlockCache;
use crate::bloom::{self, Bloom};
use crate::vfs::{Vfs, VfsFile};
use crate::{crc32, StoreError};

const MAGIC_HEAD: &[u8; 4] = b"MSEG";
const MAGIC_FOOT: &[u8; 4] = b"GESM";
const VERSION: u16 = 2;
const VERSION_V1: u16 = 1;
const HEADER_LEN: u64 = 8;
const FOOTER_LEN_V1: u64 = 8 + 8 + 8 + 4 + 4 + 4 + 4; // 3 u64s, 3 u32s, magic
const FOOTER_LEN: u64 = 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4; // 4 u64s, 4 u32s, magic

/// Bits/key used when rebuilding the filter for a version-1 segment
/// (which recorded no sizing preference of its own).
const REBUILD_BLOOM_BITS: u32 = 10;

/// Every how many entries the sparse index records a (key, offset) pair.
pub const SPARSE_EVERY: usize = 16;

/// Lookup result: `Some(Some(v))` live value, `Some(None)` tombstone,
/// `None` not present in this segment.
pub type Lookup = Option<Option<Vec<u8>>>;

/// Full segment contents in key order; `None` values are tombstones.
pub type Entries = Vec<(Vec<u8>, Option<Vec<u8>>)>;

const OP_PUT: u8 = 1;
const OP_TOMBSTONE: u8 = 2;

/// Serialize one data entry.
fn encode_entry(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.push(OP_PUT);
            out.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(u32::try_from(v.len()).expect("value fits u32")).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => {
            out.push(OP_TOMBSTONE);
            out.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

/// Write a segment from `entries` (must be sorted by key, newest version
/// only) to `path` atomically, with a bloom filter at `bloom_bits_per_key`
/// bits per key (0 disables the filter — every probe then reads the
/// index span). Returns the entry count and file size.
///
/// A failed write never leaves anything visible: the temp file is
/// removed on every error path (write, fsync, or rename failure), and if
/// the *directory* fsync after the rename fails, the just-published file
/// is removed again — an un-synced dir entry is not durable, so the
/// caller must retry rather than believe a publish that could vanish.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failures.
pub fn write<'a>(
    vfs: &dyn Vfs,
    path: &Path,
    entries: impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)>,
    fsync: bool,
    bloom_bits_per_key: u32,
) -> Result<(u64, u64), StoreError> {
    let mut data = Vec::new();
    let mut index: Vec<u8> = Vec::new();
    let mut hashes: Vec<(u64, u64)> = Vec::new();
    let mut index_count: u32 = 0;
    let mut entry_count: u64 = 0;
    for (key, value) in entries {
        if entry_count.is_multiple_of(SPARSE_EVERY as u64) {
            index.extend_from_slice(
                &(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes(),
            );
            index.extend_from_slice(key);
            index.extend_from_slice(&(HEADER_LEN + data.len() as u64).to_le_bytes());
            index_count += 1;
        }
        if bloom_bits_per_key > 0 {
            // Tombstones too: a probe for a deleted key must reach this
            // segment's tombstone, not fall through to an older value.
            hashes.push(bloom::hash_pair(key));
        }
        encode_entry(&mut data, key, value);
        entry_count += 1;
    }
    let bloom_bytes = if bloom_bits_per_key > 0 {
        Bloom::from_hashes(&hashes, bloom_bits_per_key).to_bytes()
    } else {
        Vec::new()
    };

    let mut out = Vec::with_capacity(
        HEADER_LEN as usize + data.len() + index.len() + bloom_bytes.len() + 64,
    );
    out.extend_from_slice(MAGIC_HEAD);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    let data_off = out.len() as u64;
    out.extend_from_slice(&data);
    let index_off = out.len() as u64;
    out.extend_from_slice(&index_count.to_le_bytes());
    out.extend_from_slice(&index);
    let bloom_off = out.len() as u64;
    out.extend_from_slice(&bloom_bytes);
    out.extend_from_slice(&data_off.to_le_bytes());
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(&bloom_off.to_le_bytes());
    out.extend_from_slice(&entry_count.to_le_bytes());
    out.extend_from_slice(&crc32(&data).to_le_bytes());
    out.extend_from_slice(&crc32(&index).to_le_bytes());
    out.extend_from_slice(&crc32(&bloom_bytes).to_le_bytes());
    out.extend_from_slice(&index_count.to_le_bytes()); // footer copy, framing check
    out.extend_from_slice(MAGIC_FOOT);

    let tmp = path.with_extension("tmp");
    let publish = || -> Result<(), StoreError> {
        let mut file = vfs
            .create(&tmp)
            .map_err(|e| StoreError::io(format!("create segment {}", tmp.display()), e))?;
        file.append(&out).map_err(|e| StoreError::io("write segment", e))?;
        if fsync {
            file.sync().map_err(|e| StoreError::io("fsync segment", e))?;
        }
        drop(file);
        vfs.rename(&tmp, path)
            .map_err(|e| StoreError::io(format!("rename segment into {}", path.display()), e))?;
        if fsync {
            if let Err(e) = vfs.sync_dir(path.parent().unwrap_or_else(|| Path::new("."))) {
                // The rename landed but its dir entry is not durable: a
                // crash could un-publish it. Withdraw the segment so the
                // caller retries from a clean state (the WAL still holds
                // the data).
                let _ = vfs.remove_file(path);
                return Err(StoreError::io("fsync segment directory", e));
            }
        }
        Ok(())
    };
    if let Err(e) = publish() {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    Ok((entry_count, out.len() as u64))
}

/// One sparse-index point.
#[derive(Debug, Clone)]
struct IndexPoint {
    key: Vec<u8>,
    offset: u64,
}

/// Parse a run of data-region entries out of `buf` (offsets relative to
/// the buffer). Shared by [`Segment::scan_all`] and the version-1 bloom
/// rebuild.
fn parse_entries(path: &Path, buf: &[u8]) -> Result<Entries, StoreError> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        let op = buf[at];
        let klen = buf
            .get(at + 1..at + 5)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
            .ok_or_else(|| Segment::corrupt(path, "entry truncated"))?;
        let kend = at + 5 + klen;
        let key = buf
            .get(at + 5..kend)
            .ok_or_else(|| Segment::corrupt(path, "key truncated"))?
            .to_vec();
        match op {
            OP_TOMBSTONE => {
                out.push((key, None));
                at = kend;
            }
            OP_PUT => {
                let vlen = buf
                    .get(kend..kend + 4)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                    .ok_or_else(|| Segment::corrupt(path, "value length truncated"))?;
                let value = buf
                    .get(kend + 4..kend + 4 + vlen)
                    .ok_or_else(|| Segment::corrupt(path, "value truncated"))?
                    .to_vec();
                out.push((key, Some(value)));
                at = kend + 4 + vlen;
            }
            other => return Err(Segment::corrupt(path, format!("unknown entry op {other}"))),
        }
    }
    Ok(out)
}

/// Per-read accounting for the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadAcct {
    /// Bytes actually read from disk (0 on a block-cache hit).
    pub disk_bytes: u64,
    /// The span came out of the block cache with a matching checksum.
    pub cache_hit: bool,
    /// The span was consulted in the cache but absent or failed its
    /// checksum (a miss that fell through to disk).
    pub cache_miss: bool,
}

/// An open, validated segment: sparse index and bloom filter in memory,
/// data on disk.
pub struct Segment {
    path: PathBuf,
    /// Stable identity for block-cache keys: the `seg-NNNNNNNN` sequence
    /// number when the filename has one, else a hash of the path.
    id: u64,
    file: Mutex<Box<dyn VfsFile>>,
    index: Vec<IndexPoint>,
    bloom: Option<Bloom>,
    data_off: u64,
    index_off: u64,
    entries: u64,
    file_len: u64,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("entries", &self.entries)
            .field("file_len", &self.file_len)
            .field("bloom", &self.bloom.is_some())
            .finish_non_exhaustive()
    }
}

/// Derive a stable segment id from its path (sequence number when the
/// store's `seg-NNNNNNNN.seg` naming is in use, FNV-1a of the path
/// otherwise).
fn segment_id(path: &Path) -> u64 {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
    if let Some(seq) = stem.strip_prefix("seg-").and_then(|d| d.parse::<u64>().ok()) {
        return seq;
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in path.to_string_lossy().as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x1_0000_01B3);
    }
    h
}

impl Segment {
    fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::CorruptSegment { path: path.to_path_buf(), detail: detail.into() }
    }

    /// Open and validate the segment at `path` (checks magic, version,
    /// and every region CRC — a full read once, then lookups seek).
    /// Version-1 files get their bloom filter rebuilt from the data
    /// region; version-2 files load the persisted, checksummed one.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSegment`] when validation fails;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> Result<Segment, StoreError> {
        let mut file = vfs
            .open_read(path)
            .map_err(|e| StoreError::io(format!("open segment {}", path.display()), e))?;
        let bytes = file
            .read_all()
            .map_err(|e| StoreError::io(format!("read segment {}", path.display()), e))?;
        let len = bytes.len() as u64;
        if len < HEADER_LEN + FOOTER_LEN_V1 || &bytes[..4] != MAGIC_HEAD {
            return Err(Self::corrupt(path, "missing header"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        let footer_len = match version {
            VERSION_V1 => FOOTER_LEN_V1,
            VERSION => FOOTER_LEN,
            v => return Err(Self::corrupt(path, format!("unknown version {v}"))),
        };
        if len < HEADER_LEN + footer_len {
            return Err(Self::corrupt(path, "file shorter than its footer"));
        }
        let foot = &bytes[(len - footer_len) as usize..];
        if &foot[footer_len as usize - 4..] != MAGIC_FOOT {
            return Err(Self::corrupt(path, "missing footer magic"));
        }
        let u64_at = |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().expect("8"));
        let u32_at = |b: &[u8], at: usize| u32::from_le_bytes(b[at..at + 4].try_into().expect("4"));
        // The v2 footer inserts bloom_off after index_off and bloom_crc
        // after index_crc; v1 fields otherwise line up.
        let (data_off, index_off, bloom_off, entries, data_crc, index_crc, bloom_crc, index_count_footer) =
            if version == VERSION {
                (
                    u64_at(foot, 0),
                    u64_at(foot, 8),
                    Some(u64_at(foot, 16)),
                    u64_at(foot, 24),
                    u32_at(foot, 32),
                    u32_at(foot, 36),
                    u32_at(foot, 40),
                    u32_at(foot, 44),
                )
            } else {
                (
                    u64_at(foot, 0),
                    u64_at(foot, 8),
                    None,
                    u64_at(foot, 16),
                    u32_at(foot, 24),
                    u32_at(foot, 28),
                    0,
                    u32_at(foot, 32),
                )
            };
        let regions_end = len - footer_len;
        let index_end = bloom_off.unwrap_or(regions_end);
        if data_off != HEADER_LEN
            || index_off < data_off
            || index_off + 4 > index_end
            || index_end > regions_end
        {
            return Err(Self::corrupt(path, "offsets out of range"));
        }
        let data = &bytes[data_off as usize..index_off as usize];
        if crc32(data) != data_crc {
            return Err(Self::corrupt(path, "data checksum mismatch"));
        }
        let index_bytes = &bytes[index_off as usize + 4..index_end as usize];
        if crc32(index_bytes) != index_crc {
            return Err(Self::corrupt(path, "index checksum mismatch"));
        }
        let index_count = u32_at(&bytes, index_off as usize);
        if index_count != index_count_footer {
            return Err(Self::corrupt(path, "index count mismatch"));
        }
        let bloom = match bloom_off {
            Some(off) => {
                let bloom_bytes = &bytes[off as usize..regions_end as usize];
                if crc32(bloom_bytes) != bloom_crc {
                    return Err(Self::corrupt(path, "bloom checksum mismatch"));
                }
                if bloom_bytes.is_empty() {
                    None // written with bloom disabled
                } else {
                    Some(
                        Bloom::from_bytes(bloom_bytes)
                            .ok_or_else(|| Self::corrupt(path, "bloom region malformed"))?,
                    )
                }
            }
            None => {
                // Version-1 segment: no persisted filter. Rebuild from
                // the (already checksummed) data region so old stores
                // gain the skip-probe path on recovery.
                let keys = parse_entries(path, data)?;
                Some(Bloom::build(keys.iter().map(|(k, _)| k.as_slice()), REBUILD_BLOOM_BITS))
            }
        };

        // Decode the sparse index.
        let mut index = Vec::with_capacity(index_count as usize);
        let mut at = 0usize;
        for _ in 0..index_count {
            let klen = *index_bytes
                .get(at..at + 4)
                .and_then(|b| Some(u32::from_le_bytes(b.try_into().ok()?)))
                .as_ref()
                .ok_or_else(|| Self::corrupt(path, "index truncated"))?
                as usize;
            let key = index_bytes
                .get(at + 4..at + 4 + klen)
                .ok_or_else(|| Self::corrupt(path, "index key truncated"))?
                .to_vec();
            let offset = index_bytes
                .get(at + 4 + klen..at + 12 + klen)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| Self::corrupt(path, "index offset truncated"))?;
            if offset < data_off || offset > index_off {
                return Err(Self::corrupt(path, "index offset out of range"));
            }
            index.push(IndexPoint { key, offset });
            at += 12 + klen;
        }
        if at != index_bytes.len() {
            return Err(Self::corrupt(path, "index trailing bytes"));
        }

        Ok(Segment {
            path: path.to_path_buf(),
            id: segment_id(path),
            file: Mutex::new(file),
            index,
            bloom,
            data_off,
            index_off,
            entries,
            file_len: len,
        })
    }

    /// Number of entries (live + tombstones).
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// On-disk size in bytes.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The file path (for deletion after compaction).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The block-cache identity of this segment.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bloom-filter verdict: `false` means `key` is definitely not here
    /// and the probe can be skipped; `true` means "maybe" (always, when
    /// the segment was written with the filter disabled).
    #[must_use]
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        self.bloom.as_ref().is_none_or(|b| b.contains(key))
    }

    /// Whether this segment carries a bloom filter (persisted or rebuilt).
    /// Callers use it to tell "filter said maybe but the key was absent"
    /// (a countable false positive) from "no filter to ask".
    #[must_use]
    pub fn has_bloom(&self) -> bool {
        self.bloom.is_some()
    }

    /// Look up `key`: `Some(Some(v))` live value, `Some(None)` tombstone,
    /// `None` not present in this segment. Also returns bytes read from
    /// disk for the caller's accounting.
    ///
    /// # Errors
    ///
    /// As [`get_with_cache`](Self::get_with_cache).
    pub fn get(&self, key: &[u8]) -> Result<(Lookup, u64), StoreError> {
        self.get_with_cache(key, None).map(|(l, acct)| (l, acct.disk_bytes))
    }

    /// [`get`](Self::get), optionally short-circuited by a checksummed
    /// block cache. The cacheable unit is one sparse-index span: on a
    /// miss the span read from disk is inserted with its CRC; a hit is
    /// parsed directly (the whole point of the cache is that hot serves
    /// stop paying read + re-verify). The stored CRC arbitrates parse
    /// failures: if the cached bytes no longer match it, the entry was
    /// corrupted in memory and the probe falls through to disk; if they
    /// still match, the corruption is real — it came from the segment —
    /// and the error propagates.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failures, [`StoreError::CorruptSegment`]
    /// if the data region does not parse (defense in depth — the CRC was
    /// already verified at open).
    pub fn get_with_cache(
        &self,
        key: &[u8],
        cache: Option<&dyn BlockCache>,
    ) -> Result<(Lookup, ReadAcct), StoreError> {
        let mut acct = ReadAcct::default();
        // Greatest indexed key <= target.
        let slot = self.index.partition_point(|p| p.key.as_slice() <= key);
        if slot == 0 {
            return Ok((None, acct)); // target sorts before the first key
        }
        let start = self.index[slot - 1].offset;
        let end = self.index.get(slot).map_or(self.index_off, |p| p.offset);
        let span = usize::try_from(end - start).expect("segment spans fit usize");

        if let Some(cache) = cache {
            match cache.get(self.id, start) {
                Some(block) if block.1.len() == span => match self.scan_span(&block.1, key) {
                    Ok(found) => {
                        acct.cache_hit = true;
                        return Ok((found, acct));
                    }
                    // Unparseable: the CRC recorded at fill time says
                    // whether the bytes rotted in cache (mismatch — fall
                    // through to disk and re-fill) or were bad from the
                    // start (match — surface the corruption).
                    Err(err) => {
                        if crc32(&block.1) == block.0 {
                            return Err(err);
                        }
                        acct.cache_miss = true;
                    }
                },
                // Absent, or the wrong length for this span: read from
                // disk and (re-)insert.
                _ => acct.cache_miss = true,
            }
        }

        let mut buf = vec![0u8; span];
        {
            let mut file = self.file.lock().expect("segment file poisoned");
            file.read_exact_at(start, &mut buf)
                .map_err(|e| StoreError::io("read segment span", e))?;
        }
        acct.disk_bytes = span as u64;
        if let Some(cache) = cache {
            cache.put(self.id, start, crc32(&buf), buf.clone());
        }
        Ok((self.scan_span(&buf, key)?, acct))
    }

    /// Scan one sparse-index span for `key` (early exit once past it).
    fn scan_span(&self, buf: &[u8], key: &[u8]) -> Result<Lookup, StoreError> {
        let mut at = 0usize;
        while at < buf.len() {
            let (op, rest) = (buf[at], at + 1);
            let klen = buf
                .get(rest..rest + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .ok_or_else(|| Self::corrupt(&self.path, "entry truncated"))?;
            let kend = rest + 4 + klen;
            let k = buf.get(rest + 4..kend).ok_or_else(|| Self::corrupt(&self.path, "key truncated"))?;
            match op {
                OP_TOMBSTONE => {
                    if k == key {
                        return Ok(Some(None));
                    }
                    if k > key {
                        return Ok(None);
                    }
                    at = kend;
                }
                OP_PUT => {
                    let vlen = buf
                        .get(kend..kend + 4)
                        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                        .ok_or_else(|| Self::corrupt(&self.path, "value length truncated"))?;
                    if k == key {
                        let v = buf
                            .get(kend + 4..kend + 4 + vlen)
                            .ok_or_else(|| Self::corrupt(&self.path, "value truncated"))?;
                        return Ok(Some(Some(v.to_vec())));
                    }
                    if k > key {
                        return Ok(None);
                    }
                    at = kend + 4 + vlen;
                }
                other => {
                    return Err(Self::corrupt(&self.path, format!("unknown entry op {other}")))
                }
            }
        }
        Ok(None)
    }

    /// Stream every entry in key order — compaction's input.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::CorruptSegment`] as in [`get`](Self::get).
    pub fn scan_all(&self) -> Result<Entries, StoreError> {
        let span = usize::try_from(self.index_off - self.data_off).expect("span fits usize");
        let mut buf = vec![0u8; span];
        {
            let mut file = self.file.lock().expect("segment file poisoned");
            file.read_exact_at(self.data_off, &mut buf)
                .map_err(|e| StoreError::io("read segment data", e))?;
        }
        parse_entries(&self.path, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_cache::CachedBlock;
    use crate::vfs::{FaultConfig, FaultKind, FaultOp, FaultVfs, RealVfs, ScheduledFault};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memo-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        // > SPARSE_EVERY entries so multiple index points exist.
        let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..50u32)
            .map(|i| (format!("key-{i:04}").into_bytes(), Some(vec![i as u8; 10 + i as usize])))
            .collect();
        entries[7].1 = None; // a tombstone mid-run
        entries
    }

    fn write_sample(path: &Path, entries: &Entries, bloom_bits: u32) -> (u64, u64) {
        write(
            &RealVfs,
            path,
            entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
            true,
            bloom_bits,
        )
        .unwrap()
    }

    /// Build a version-1 segment file byte-for-byte (the pre-bloom
    /// format), for the upgrade-path tests.
    fn write_v1_file(path: &Path, entries: &Entries) {
        let mut data = Vec::new();
        let mut index: Vec<u8> = Vec::new();
        let mut index_count: u32 = 0;
        for (n, (key, value)) in entries.iter().enumerate() {
            if n % SPARSE_EVERY == 0 {
                index.extend_from_slice(&(u32::try_from(key.len()).unwrap()).to_le_bytes());
                index.extend_from_slice(key);
                index.extend_from_slice(&(HEADER_LEN + data.len() as u64).to_le_bytes());
                index_count += 1;
            }
            encode_entry(&mut data, key, value.as_deref());
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_HEAD);
        out.extend_from_slice(&VERSION_V1.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        let data_off = out.len() as u64;
        out.extend_from_slice(&data);
        let index_off = out.len() as u64;
        out.extend_from_slice(&index_count.to_le_bytes());
        out.extend_from_slice(&index);
        out.extend_from_slice(&data_off.to_le_bytes());
        out.extend_from_slice(&index_off.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&data).to_le_bytes());
        out.extend_from_slice(&crc32(&index).to_le_bytes());
        out.extend_from_slice(&index_count.to_le_bytes());
        out.extend_from_slice(MAGIC_FOOT);
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn roundtrips_every_entry_through_the_sparse_index() {
        let path = tmp("roundtrip.seg");
        let entries = sample();
        let (count, size) = write_sample(&path, &entries, 10);
        assert_eq!(count, 50);
        assert!(size > 0);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert_eq!(seg.entries(), 50);
        assert!(seg.index.len() >= 2, "50 entries need >1 sparse point");
        for (k, v) in &entries {
            let (found, _bytes) = seg.get(k).unwrap();
            assert_eq!(found, Some(v.clone()), "key {:?}", String::from_utf8_lossy(k));
        }
        // Absent keys: before the first, between entries, after the last.
        assert_eq!(seg.get(b"aaa").unwrap().0, None);
        assert_eq!(seg.get(b"key-0007x").unwrap().0, None);
        assert_eq!(seg.get(b"zzz").unwrap().0, None);
        assert_eq!(seg.scan_all().unwrap(), entries);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detects_corruption_anywhere() {
        let path = tmp("corrupt.seg");
        let entries = sample();
        write(&RealVfs, &path, entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())), false, 10)
            .unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of offsets; every variant must be
        // rejected at open (magic, version, region crcs, footer).
        for at in [0usize, 5, 9, clean.len() / 2, clean.len() - 30, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(Segment::open(&RealVfs, &path), Err(StoreError::CorruptSegment { .. })),
                "corruption at byte {at} must be detected"
            );
        }
        // Truncation too.
        std::fs::write(&path, &clean[..clean.len() - 10]).unwrap();
        assert!(Segment::open(&RealVfs, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_segment_is_valid() {
        let path = tmp("empty.seg");
        write(&RealVfs, &path, std::iter::empty(), false, 10).unwrap();
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert_eq!(seg.entries(), 0);
        assert_eq!(seg.get(b"anything").unwrap().0, None);
        assert!(!seg.maybe_contains(b"anything"), "an empty segment contains nothing");
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: a failed publish (rename, fsync — file *or* directory —
    /// or body write) must leave neither the temp file nor a visible
    /// segment behind.
    #[test]
    fn failed_publish_cleans_up_the_temp_file() {
        let entries = sample();
        let faults = [
            ("rename", ScheduledFault { op: FaultOp::Rename, nth: 1, kind: FaultKind::Error }),
            ("fsync", ScheduledFault { op: FaultOp::Fsync, nth: 1, kind: FaultKind::Error }),
            // Fsync #2 is the parent-directory sync after the rename:
            // the file landed under its final name, but the publish is
            // not durable, so the writer must withdraw it.
            ("dirsync", ScheduledFault { op: FaultOp::Fsync, nth: 2, kind: FaultKind::Error }),
            ("write", ScheduledFault { op: FaultOp::Write, nth: 1, kind: FaultKind::Enospc }),
            ("short", ScheduledFault { op: FaultOp::Write, nth: 1, kind: FaultKind::ShortWrite }),
        ];
        for (tag, fault) in faults {
            let path = tmp(&format!("cleanup-{tag}.seg"));
            let _ = std::fs::remove_file(&path);
            let vfs =
                FaultVfs::new(FaultConfig { scheduled: vec![fault], ..FaultConfig::quiet(2) });
            let err = write(
                &vfs,
                &path,
                entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
                true,
                10,
            );
            assert!(err.is_err(), "{tag}: the injected fault must surface");
            assert!(!path.exists(), "{tag}: no half-segment may become visible");
            assert!(!path.with_extension("tmp").exists(), "{tag}: the temp file must be removed");
            // The same writer succeeds once the disk behaves again.
            write(&vfs, &path, entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())), true, 10)
                .unwrap();
            let seg = Segment::open(&vfs, &path).unwrap();
            assert_eq!(seg.entries(), 50);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn bloom_filter_persists_and_screens_absent_keys() {
        let path = tmp("bloom.seg");
        let entries = sample();
        write_sample(&path, &entries, 10);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        for (k, _) in &entries {
            assert!(seg.maybe_contains(k), "no false negatives, ever");
        }
        assert!(seg.maybe_contains(b"key-0007"), "tombstoned keys must stay in the filter");
        let rejected = (0..1000)
            .filter(|i| !seg.maybe_contains(format!("absent-{i}").as_bytes()))
            .count();
        assert!(rejected > 900, "only {rejected}/1000 absent keys screened");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bloom_disabled_segments_always_say_maybe() {
        let path = tmp("nobloom.seg");
        let entries = sample();
        write_sample(&path, &entries, 0);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert!(seg.bloom.is_none());
        assert!(seg.maybe_contains(b"definitely-absent"));
        assert_eq!(seg.get(b"key-0003").unwrap().0, Some(entries[3].1.clone()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_one_segments_open_with_a_rebuilt_bloom() {
        let path = tmp("v1.seg");
        let entries = sample();
        write_v1_file(&path, &entries);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert!(seg.bloom.is_some(), "old-format segments must gain a filter at open");
        assert_eq!(seg.entries(), 50);
        for (k, v) in &entries {
            assert!(seg.maybe_contains(k));
            assert_eq!(seg.get(k).unwrap().0, Some(v.clone()));
        }
        assert!(
            (0..1000).any(|i| !seg.maybe_contains(format!("absent-{i}").as_bytes())),
            "the rebuilt filter must actually screen"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bloom_region_corruption_is_detected_at_open() {
        let path = tmp("bloomcorrupt.seg");
        let entries = sample();
        write_sample(&path, &entries, 10);
        let clean = std::fs::read(&path).unwrap();
        // The bloom region sits between the index and the footer; flip a
        // byte inside it (12-byte bloom header is right after the index,
        // whose end we can find from the footer).
        let foot = &clean[clean.len() - FOOTER_LEN as usize..];
        let bloom_off = u64::from_le_bytes(foot[16..24].try_into().unwrap()) as usize;
        assert!(bloom_off + 12 < clean.len() - FOOTER_LEN as usize, "bloom region exists");
        let mut bad = clean.clone();
        bad[bloom_off + 13] ^= 0x40; // a word inside the bit array
        std::fs::write(&path, &bad).unwrap();
        let err = Segment::open(&RealVfs, &path).unwrap_err();
        assert!(
            matches!(&err, StoreError::CorruptSegment { detail, .. } if detail.contains("bloom")),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A test block cache: a locked map plus hit/put counters.
    #[derive(Debug, Default)]
    struct MapCache {
        map: Mutex<HashMap<(u64, u64), CachedBlock>>,
        gets: AtomicU64,
        puts: AtomicU64,
    }

    impl BlockCache for MapCache {
        fn get(&self, segment_id: u64, offset: u64) -> Option<CachedBlock> {
            self.gets.fetch_add(1, Ordering::Relaxed);
            self.map.lock().unwrap().get(&(segment_id, offset)).cloned()
        }
        fn put(&self, segment_id: u64, offset: u64, checksum: u32, block: Vec<u8>) {
            self.puts.fetch_add(1, Ordering::Relaxed);
            self.map.lock().unwrap().insert((segment_id, offset), Arc::new((checksum, block)));
        }
    }

    #[test]
    fn block_cache_serves_repeat_reads_and_rejects_corrupt_entries() {
        let path = tmp("blockcache.seg");
        let entries = sample();
        write_sample(&path, &entries, 10);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        let cache = MapCache::default();

        let (found, acct) = seg.get_with_cache(b"key-0003", Some(&cache)).unwrap();
        assert_eq!(found, Some(entries[3].1.clone()));
        assert!(acct.cache_miss && !acct.cache_hit && acct.disk_bytes > 0, "{acct:?}");

        let (found, acct) = seg.get_with_cache(b"key-0003", Some(&cache)).unwrap();
        assert_eq!(found, Some(entries[3].1.clone()));
        assert!(acct.cache_hit && acct.disk_bytes == 0, "{acct:?}");
        // A different key in the same span hits the same cached block.
        let (found, acct) = seg.get_with_cache(b"key-0005", Some(&cache)).unwrap();
        assert_eq!(found, Some(entries[5].1.clone()));
        assert!(acct.cache_hit, "{acct:?}");
        assert_eq!(cache.puts.load(Ordering::Relaxed), 1);

        // Corrupt the cached bytes under their checksum: the next read
        // must fall through to disk and still answer correctly.
        {
            let mut map = cache.map.lock().unwrap();
            let entry = map.values_mut().next().unwrap();
            let (crc, mut bytes) = (**entry).clone();
            bytes[0] ^= 0xFF;
            *entry = Arc::new((crc, bytes));
        }
        let (found, acct) = seg.get_with_cache(b"key-0003", Some(&cache)).unwrap();
        assert_eq!(found, Some(entries[3].1.clone()));
        assert!(acct.cache_miss && acct.disk_bytes > 0, "corrupt entry must not serve: {acct:?}");
        let _ = std::fs::remove_file(&path);
    }
}

//! Immutable sorted segment files with a sparse in-memory index.
//!
//! A segment is one memtable flush (or one compaction output), laid out
//! for cheap point lookups without loading the data into memory:
//!
//! ```text
//! header : magic "MSEG" | version u16 LE | reserved u16
//! data   : entries sorted by key, each
//!          [op: u8 (1 = put, 2 = tombstone)]
//!          [klen: u32 LE] [key] (put only: [vlen: u32 LE] [value])
//! index  : [count: u32 LE] then, for every SPARSE_EVERY-th entry,
//!          [klen: u32 LE] [key] [file offset: u64 LE]
//! footer : [data_off u64][index_off u64][entry_count u64]
//!          [data_crc u32][index_crc u32][index_count u32] | magic "GESM"
//! ```
//!
//! Writers stream to `<name>.tmp` and `rename` into place, so a crash
//! mid-flush never leaves a half-segment under a live name; `open`
//! validates both region checksums and the footer framing, so bit rot is
//! detected rather than served. Lookups binary-search the sparse index
//! for the greatest indexed key ≤ target, then scan forward at most
//! `SPARSE_EVERY` entries — the classic SSTable read path.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::vfs::{Vfs, VfsFile};
use crate::{crc32, StoreError};

const MAGIC_HEAD: &[u8; 4] = b"MSEG";
const MAGIC_FOOT: &[u8; 4] = b"GESM";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 8;
const FOOTER_LEN: u64 = 8 + 8 + 8 + 4 + 4 + 4 + 4; // 3 offsets, 3 u32s, magic

/// Every how many entries the sparse index records a (key, offset) pair.
pub const SPARSE_EVERY: usize = 16;

/// Lookup result: `Some(Some(v))` live value, `Some(None)` tombstone,
/// `None` not present in this segment.
pub type Lookup = Option<Option<Vec<u8>>>;

/// Full segment contents in key order; `None` values are tombstones.
pub type Entries = Vec<(Vec<u8>, Option<Vec<u8>>)>;

const OP_PUT: u8 = 1;
const OP_TOMBSTONE: u8 = 2;

/// Serialize one data entry.
fn encode_entry(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.push(OP_PUT);
            out.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(u32::try_from(v.len()).expect("value fits u32")).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => {
            out.push(OP_TOMBSTONE);
            out.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

/// Write a segment from `entries` (must be sorted by key, newest version
/// only) to `path` atomically. Returns the entry count and file size.
///
/// A failed write never leaves anything visible: the temp file is
/// removed on every error path (write, fsync, or rename failure), so a
/// faulting disk cannot strand a half-segment for the next open to trip
/// over.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failures.
pub fn write<'a>(
    vfs: &dyn Vfs,
    path: &Path,
    entries: impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)>,
    fsync: bool,
) -> Result<(u64, u64), StoreError> {
    let mut data = Vec::new();
    let mut index: Vec<u8> = Vec::new();
    let mut index_count: u32 = 0;
    let mut entry_count: u64 = 0;
    for (key, value) in entries {
        if entry_count.is_multiple_of(SPARSE_EVERY as u64) {
            index.extend_from_slice(
                &(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes(),
            );
            index.extend_from_slice(key);
            index.extend_from_slice(&(HEADER_LEN + data.len() as u64).to_le_bytes());
            index_count += 1;
        }
        encode_entry(&mut data, key, value);
        entry_count += 1;
    }

    let mut out = Vec::with_capacity(HEADER_LEN as usize + data.len() + index.len() + 64);
    out.extend_from_slice(MAGIC_HEAD);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    let data_off = out.len() as u64;
    out.extend_from_slice(&data);
    let index_off = out.len() as u64;
    out.extend_from_slice(&index_count.to_le_bytes());
    out.extend_from_slice(&index);
    out.extend_from_slice(&data_off.to_le_bytes());
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(&entry_count.to_le_bytes());
    out.extend_from_slice(&crc32(&data).to_le_bytes());
    out.extend_from_slice(&crc32(&index).to_le_bytes());
    out.extend_from_slice(&index_count.to_le_bytes()); // footer copy, framing check
    out.extend_from_slice(MAGIC_FOOT);

    let tmp = path.with_extension("tmp");
    let publish = || -> Result<(), StoreError> {
        let mut file = vfs
            .create(&tmp)
            .map_err(|e| StoreError::io(format!("create segment {}", tmp.display()), e))?;
        file.append(&out).map_err(|e| StoreError::io("write segment", e))?;
        if fsync {
            file.sync().map_err(|e| StoreError::io("fsync segment", e))?;
        }
        drop(file);
        vfs.rename(&tmp, path)
            .map_err(|e| StoreError::io(format!("rename segment into {}", path.display()), e))
    };
    if let Err(e) = publish() {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    Ok((entry_count, out.len() as u64))
}

/// One sparse-index point.
#[derive(Debug, Clone)]
struct IndexPoint {
    key: Vec<u8>,
    offset: u64,
}

/// An open, validated segment: sparse index in memory, data on disk.
pub struct Segment {
    path: PathBuf,
    file: Mutex<Box<dyn VfsFile>>,
    index: Vec<IndexPoint>,
    data_off: u64,
    index_off: u64,
    entries: u64,
    file_len: u64,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("entries", &self.entries)
            .field("file_len", &self.file_len)
            .finish_non_exhaustive()
    }
}

impl Segment {
    fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::CorruptSegment { path: path.to_path_buf(), detail: detail.into() }
    }

    /// Open and validate the segment at `path` (checks magic, version,
    /// and both region CRCs — a full read once, then lookups seek).
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSegment`] when validation fails;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> Result<Segment, StoreError> {
        let mut file = vfs
            .open_read(path)
            .map_err(|e| StoreError::io(format!("open segment {}", path.display()), e))?;
        let bytes = file
            .read_all()
            .map_err(|e| StoreError::io(format!("read segment {}", path.display()), e))?;
        let len = bytes.len() as u64;
        if len < HEADER_LEN + FOOTER_LEN || &bytes[..4] != MAGIC_HEAD {
            return Err(Self::corrupt(path, "missing header"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(Self::corrupt(path, format!("unknown version {version}")));
        }
        let foot = &bytes[(len - FOOTER_LEN) as usize..];
        if &foot[FOOTER_LEN as usize - 4..] != MAGIC_FOOT {
            return Err(Self::corrupt(path, "missing footer magic"));
        }
        let u64_at = |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().expect("8"));
        let u32_at = |b: &[u8], at: usize| u32::from_le_bytes(b[at..at + 4].try_into().expect("4"));
        let data_off = u64_at(foot, 0);
        let index_off = u64_at(foot, 8);
        let entries = u64_at(foot, 16);
        let data_crc = u32_at(foot, 24);
        let index_crc = u32_at(foot, 28);
        let index_count_footer = u32_at(foot, 32);
        if data_off != HEADER_LEN || index_off < data_off || index_off > len - FOOTER_LEN {
            return Err(Self::corrupt(path, "offsets out of range"));
        }
        let data = &bytes[data_off as usize..index_off as usize];
        if crc32(data) != data_crc {
            return Err(Self::corrupt(path, "data checksum mismatch"));
        }
        let index_bytes = &bytes[index_off as usize + 4..(len - FOOTER_LEN) as usize];
        if crc32(index_bytes) != index_crc {
            return Err(Self::corrupt(path, "index checksum mismatch"));
        }
        let index_count = u32_at(&bytes, index_off as usize);
        if index_count != index_count_footer {
            return Err(Self::corrupt(path, "index count mismatch"));
        }

        // Decode the sparse index.
        let mut index = Vec::with_capacity(index_count as usize);
        let mut at = 0usize;
        for _ in 0..index_count {
            let klen = *index_bytes
                .get(at..at + 4)
                .and_then(|b| Some(u32::from_le_bytes(b.try_into().ok()?)))
                .as_ref()
                .ok_or_else(|| Self::corrupt(path, "index truncated"))?
                as usize;
            let key = index_bytes
                .get(at + 4..at + 4 + klen)
                .ok_or_else(|| Self::corrupt(path, "index key truncated"))?
                .to_vec();
            let offset = index_bytes
                .get(at + 4 + klen..at + 12 + klen)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| Self::corrupt(path, "index offset truncated"))?;
            if offset < data_off || offset > index_off {
                return Err(Self::corrupt(path, "index offset out of range"));
            }
            index.push(IndexPoint { key, offset });
            at += 12 + klen;
        }
        if at != index_bytes.len() {
            return Err(Self::corrupt(path, "index trailing bytes"));
        }

        Ok(Segment {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            index,
            data_off,
            index_off,
            entries,
            file_len: len,
        })
    }

    /// Number of entries (live + tombstones).
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// On-disk size in bytes.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The file path (for deletion after compaction).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Look up `key`: `Some(Some(v))` live value, `Some(None)` tombstone,
    /// `None` not present in this segment. Also returns bytes read from
    /// disk for the caller's accounting.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failures, [`StoreError::CorruptSegment`]
    /// if the data region does not parse (defense in depth — the CRC was
    /// already verified at open).
    pub fn get(&self, key: &[u8]) -> Result<(Lookup, u64), StoreError> {
        // Greatest indexed key <= target.
        let slot = self.index.partition_point(|p| p.key.as_slice() <= key);
        if slot == 0 {
            return Ok((None, 0)); // target sorts before the first key
        }
        let start = self.index[slot - 1].offset;
        let end = self.index.get(slot).map_or(self.index_off, |p| p.offset);
        let span = usize::try_from(end - start).expect("segment spans fit usize");
        let mut buf = vec![0u8; span];
        {
            let mut file = self.file.lock().expect("segment file poisoned");
            file.read_exact_at(start, &mut buf)
                .map_err(|e| StoreError::io("read segment span", e))?;
        }
        let mut at = 0usize;
        while at < buf.len() {
            let (op, rest) = (buf[at], at + 1);
            let klen = buf
                .get(rest..rest + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .ok_or_else(|| Self::corrupt(&self.path, "entry truncated"))?;
            let kend = rest + 4 + klen;
            let k = buf.get(rest + 4..kend).ok_or_else(|| Self::corrupt(&self.path, "key truncated"))?;
            match op {
                OP_TOMBSTONE => {
                    if k == key {
                        return Ok((Some(None), (at + 5 + klen) as u64));
                    }
                    if k > key {
                        return Ok((None, at as u64));
                    }
                    at = kend;
                }
                OP_PUT => {
                    let vlen = buf
                        .get(kend..kend + 4)
                        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                        .ok_or_else(|| Self::corrupt(&self.path, "value length truncated"))?;
                    if k == key {
                        let v = buf
                            .get(kend + 4..kend + 4 + vlen)
                            .ok_or_else(|| Self::corrupt(&self.path, "value truncated"))?;
                        return Ok((Some(Some(v.to_vec())), (kend + 4 + vlen) as u64));
                    }
                    if k > key {
                        return Ok((None, at as u64));
                    }
                    at = kend + 4 + vlen;
                }
                other => {
                    return Err(Self::corrupt(&self.path, format!("unknown entry op {other}")))
                }
            }
        }
        Ok((None, buf.len() as u64))
    }

    /// Stream every entry in key order — compaction's input.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::CorruptSegment`] as in [`get`](Self::get).
    pub fn scan_all(&self) -> Result<Entries, StoreError> {
        let span = usize::try_from(self.index_off - self.data_off).expect("span fits usize");
        let mut buf = vec![0u8; span];
        {
            let mut file = self.file.lock().expect("segment file poisoned");
            file.read_exact_at(self.data_off, &mut buf)
                .map_err(|e| StoreError::io("read segment data", e))?;
        }
        let mut out = Vec::with_capacity(usize::try_from(self.entries).unwrap_or(0));
        let mut at = 0usize;
        while at < buf.len() {
            let op = buf[at];
            let klen = buf
                .get(at + 1..at + 5)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .ok_or_else(|| Self::corrupt(&self.path, "entry truncated"))?;
            let kend = at + 5 + klen;
            let key = buf
                .get(at + 5..kend)
                .ok_or_else(|| Self::corrupt(&self.path, "key truncated"))?
                .to_vec();
            match op {
                OP_TOMBSTONE => {
                    out.push((key, None));
                    at = kend;
                }
                OP_PUT => {
                    let vlen = buf
                        .get(kend..kend + 4)
                        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                        .ok_or_else(|| Self::corrupt(&self.path, "value length truncated"))?;
                    let value = buf
                        .get(kend + 4..kend + 4 + vlen)
                        .ok_or_else(|| Self::corrupt(&self.path, "value truncated"))?
                        .to_vec();
                    out.push((key, Some(value)));
                    at = kend + 4 + vlen;
                }
                other => {
                    return Err(Self::corrupt(&self.path, format!("unknown entry op {other}")))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultKind, FaultOp, FaultVfs, RealVfs, ScheduledFault};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memo-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        // > SPARSE_EVERY entries so multiple index points exist.
        let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..50u32)
            .map(|i| (format!("key-{i:04}").into_bytes(), Some(vec![i as u8; 10 + i as usize])))
            .collect();
        entries[7].1 = None; // a tombstone mid-run
        entries
    }

    #[test]
    fn roundtrips_every_entry_through_the_sparse_index() {
        let path = tmp("roundtrip.seg");
        let entries = sample();
        let (count, size) =
            write(&RealVfs, &path, entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())), true)
                .unwrap();
        assert_eq!(count, 50);
        assert!(size > 0);
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert_eq!(seg.entries(), 50);
        assert!(seg.index.len() >= 2, "50 entries need >1 sparse point");
        for (k, v) in &entries {
            let (found, _bytes) = seg.get(k).unwrap();
            assert_eq!(found, Some(v.clone()), "key {:?}", String::from_utf8_lossy(k));
        }
        // Absent keys: before the first, between entries, after the last.
        assert_eq!(seg.get(b"aaa").unwrap().0, None);
        assert_eq!(seg.get(b"key-0007x").unwrap().0, None);
        assert_eq!(seg.get(b"zzz").unwrap().0, None);
        assert_eq!(seg.scan_all().unwrap(), entries);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detects_corruption_anywhere() {
        let path = tmp("corrupt.seg");
        let entries = sample();
        write(&RealVfs, &path, entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())), false)
            .unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of offsets; every variant must be
        // rejected at open (magic, version, data crc, index crc, footer).
        for at in [0usize, 5, 9, clean.len() / 2, clean.len() - 30, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(Segment::open(&RealVfs, &path), Err(StoreError::CorruptSegment { .. })),
                "corruption at byte {at} must be detected"
            );
        }
        // Truncation too.
        std::fs::write(&path, &clean[..clean.len() - 10]).unwrap();
        assert!(Segment::open(&RealVfs, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_segment_is_valid() {
        let path = tmp("empty.seg");
        write(&RealVfs, &path, std::iter::empty(), false).unwrap();
        let seg = Segment::open(&RealVfs, &path).unwrap();
        assert_eq!(seg.entries(), 0);
        assert_eq!(seg.get(b"anything").unwrap().0, None);
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: a failed publish (rename, fsync, or body write) must
    /// leave neither the temp file nor a visible segment behind.
    #[test]
    fn failed_publish_cleans_up_the_temp_file() {
        let entries = sample();
        let faults = [
            ("rename", ScheduledFault { op: FaultOp::Rename, nth: 1, kind: FaultKind::Error }),
            ("fsync", ScheduledFault { op: FaultOp::Fsync, nth: 1, kind: FaultKind::Error }),
            ("write", ScheduledFault { op: FaultOp::Write, nth: 1, kind: FaultKind::Enospc }),
            ("short", ScheduledFault { op: FaultOp::Write, nth: 1, kind: FaultKind::ShortWrite }),
        ];
        for (tag, fault) in faults {
            let path = tmp(&format!("cleanup-{tag}.seg"));
            let _ = std::fs::remove_file(&path);
            let vfs =
                FaultVfs::new(FaultConfig { scheduled: vec![fault], ..FaultConfig::quiet(2) });
            let err = write(
                &vfs,
                &path,
                entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
                true,
            );
            assert!(err.is_err(), "{tag}: the injected fault must surface");
            assert!(!path.exists(), "{tag}: no half-segment may become visible");
            assert!(!path.with_extension("tmp").exists(), "{tag}: the temp file must be removed");
            // The same writer succeeds once the disk behaves again.
            write(&vfs, &path, entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref())), true)
                .unwrap();
            let seg = Segment::open(&vfs, &path).unwrap();
            assert_eq!(seg.entries(), 50);
            let _ = std::fs::remove_file(&path);
        }
    }
}

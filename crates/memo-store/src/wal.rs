//! The checksummed append-only write-ahead log.
//!
//! Every mutation is framed and checksummed before it reaches the
//! memtable, so a crash at *any* byte boundary loses at most the
//! unacknowledged suffix:
//!
//! ```text
//! record := [crc32: u32 LE over payload] [len: u32 LE] [payload]
//! payload := [op: u8 (1 = put, 2 = delete)]
//!            [klen: u32 LE] [key bytes]
//!            (put only) [vlen: u32 LE] [value bytes]
//! ```
//!
//! Recovery reads records sequentially and stops at the first frame that
//! does not fully fit (a torn write) or whose CRC does not match (a torn
//! or corrupted write); everything before that point is the committed
//! prefix and is replayed, everything after is truncated away so the log
//! never re-serves damage. The crash-recovery property tests exercise
//! truncation and single-byte corruption at every offset of a synthetic
//! log.

use std::path::{Path, PathBuf};

use crate::vfs::{Vfs, VfsFile};
use crate::{crc32, StoreError};

/// One recovered WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Delete `key` (a tombstone until compaction reclaims it).
    Delete {
        /// The key.
        key: Vec<u8>,
    },
}

impl WalOp {
    /// The key this operation touches.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        match self {
            WalOp::Put { key, .. } | WalOp::Delete { key } => key,
        }
    }
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const FRAME_HEADER: usize = 8; // crc32 + len

fn encode_payload(op: &WalOp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + op.key().len());
    match op {
        WalOp::Put { key, value } => {
            buf.push(OP_PUT);
            buf.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            buf.extend_from_slice(key);
            buf.extend_from_slice(
                &(u32::try_from(value.len()).expect("value fits u32")).to_le_bytes(),
            );
            buf.extend_from_slice(value);
        }
        WalOp::Delete { key } => {
            buf.push(OP_DELETE);
            buf.extend_from_slice(&(u32::try_from(key.len()).expect("key fits u32")).to_le_bytes());
            buf.extend_from_slice(key);
        }
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let (&op, rest) = payload.split_first()?;
    let take = |bytes: &[u8]| -> Option<(Vec<u8>, usize)> {
        let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        Some((bytes.get(4..4 + len)?.to_vec(), 4 + len))
    };
    match op {
        OP_PUT => {
            let (key, used) = take(rest)?;
            let (value, used2) = take(&rest[used..])?;
            (used + used2 == rest.len()).then_some(WalOp::Put { key, value })
        }
        OP_DELETE => {
            let (key, used) = take(rest)?;
            (used == rest.len()).then_some(WalOp::Delete { key })
        }
        _ => None,
    }
}

/// Frame one operation exactly as [`Wal::append`] writes it — exposed so
/// the crash-recovery tests can build synthetic logs byte-for-byte.
#[must_use]
pub fn encode_record(op: &WalOp) -> Vec<u8> {
    let payload = encode_payload(op);
    let mut rec = Vec::with_capacity(FRAME_HEADER + payload.len());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&(u32::try_from(payload.len()).expect("payload fits u32")).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// What recovery found in a log.
#[derive(Debug)]
pub struct Recovery {
    /// The committed operations, in append order.
    pub ops: Vec<WalOp>,
    /// Byte length of the committed prefix.
    pub committed_bytes: u64,
    /// `true` when a torn or corrupt tail was found (and truncated).
    pub tail_damaged: bool,
}

/// Scan `bytes` as a WAL and return the committed prefix. Pure — the
/// file-level [`Wal::recover`] and the property tests both call this.
#[must_use]
pub fn scan(bytes: &[u8]) -> Recovery {
    let mut ops = Vec::new();
    let mut at = 0usize;
    loop {
        let Some(header) = bytes.get(at..at + FRAME_HEADER) else {
            // Torn frame header (or clean EOF when at == len).
            return Recovery {
                ops,
                committed_bytes: at as u64,
                tail_damaged: at != bytes.len(),
            };
        };
        let stored_crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let Some(payload) = bytes.get(at + FRAME_HEADER..at + FRAME_HEADER + len) else {
            // Torn payload: the frame claims more bytes than exist.
            return Recovery { ops, committed_bytes: at as u64, tail_damaged: true };
        };
        if crc32(payload) != stored_crc {
            // Corrupt record: checksum rejects it (and everything after —
            // the log has no resynchronization points by design).
            return Recovery { ops, committed_bytes: at as u64, tail_damaged: true };
        }
        let Some(op) = decode_payload(payload) else {
            // Checksum passed but the payload grammar is wrong — a
            // same-CRC corruption or a foreign writer. Reject it too.
            return Recovery { ops, committed_bytes: at as u64, tail_damaged: true };
        };
        ops.push(op);
        at += FRAME_HEADER + len;
    }
}

/// The write-ahead log file: append + fsync per operation, recover on
/// open, truncate after a successful memtable flush. All I/O goes
/// through the [`Vfs`] the log was opened with.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    fsync: bool,
    /// Length of the committed (acknowledged) prefix. A failed append or
    /// fsync rolls the file back to this point so an unacknowledged
    /// record never survives — the freeze/rename handoff to the
    /// background flusher relies on frozen logs holding only
    /// acknowledged records.
    committed: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (creating if absent) the log at `path` on `vfs`, recovering
    /// the committed prefix and truncating any damaged tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(vfs: &dyn Vfs, path: &Path, fsync: bool) -> Result<(Wal, Recovery), StoreError> {
        let mut file = vfs
            .open_rw(path)
            .map_err(|e| StoreError::io(format!("open wal {}", path.display()), e))?;
        let bytes = file
            .read_all()
            .map_err(|e| StoreError::io(format!("read wal {}", path.display()), e))?;
        let recovery = scan(&bytes);
        // Cut any damaged tail (truncate also positions the cursor at the
        // committed end, where fresh appends belong).
        file.truncate(recovery.committed_bytes)
            .map_err(|e| StoreError::io("truncate damaged wal tail", e))?;
        let committed = recovery.committed_bytes;
        let wal = Wal { file, path: path.to_path_buf(), fsync, committed };
        Ok((wal, recovery))
    }

    /// Append one operation durably. Returns the framed record length.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write or sync failure. The operation is not
    /// committed, and the log is rolled back (best-effort truncate —
    /// never fault-injected) to the committed prefix so the torn or
    /// unsynced record cannot leak into a frozen log later.
    pub fn append(&mut self, op: &WalOp) -> Result<usize, StoreError> {
        let rec = encode_record(op);
        if let Err(e) = self.file.append(&rec) {
            let _ = self.file.truncate(self.committed);
            return Err(StoreError::io(format!("append wal {}", self.path.display()), e));
        }
        if self.fsync {
            if let Err(e) = self.file.sync() {
                let _ = self.file.truncate(self.committed);
                return Err(StoreError::io("fsync wal", e));
            }
        }
        self.committed += rec.len() as u64;
        Ok(rec.len())
    }

    /// Drop every record — called after the memtable has been durably
    /// flushed into a segment, which supersedes the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on truncate/sync failure.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.truncate(0).map_err(|e| StoreError::io("truncate wal", e))?;
        self.committed = 0;
        if self.fsync {
            self.file.sync().map_err(|e| StoreError::io("fsync wal", e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Put { key: b"table/5".to_vec(), value: b"rendered bytes".to_vec() },
            WalOp::Delete { key: b"stale".to_vec() },
            WalOp::Put { key: b"k".to_vec(), value: vec![0u8; 100] },
        ]
    }

    fn log_of(ops: &[WalOp]) -> Vec<u8> {
        ops.iter().flat_map(encode_record).collect()
    }

    #[test]
    fn scan_recovers_every_committed_record() {
        let ops = ops();
        let log = log_of(&ops);
        let rec = scan(&log);
        assert_eq!(rec.ops, ops);
        assert_eq!(rec.committed_bytes, log.len() as u64);
        assert!(!rec.tail_damaged);
    }

    #[test]
    fn scan_rejects_torn_and_corrupt_tails() {
        let ops = ops();
        let log = log_of(&ops);
        // Torn: drop the last byte — the final record must vanish whole.
        let rec = scan(&log[..log.len() - 1]);
        assert_eq!(rec.ops, ops[..2]);
        assert!(rec.tail_damaged);
        // Corrupt: flip a byte in the last record's payload.
        let mut bad = log.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let rec = scan(&bad);
        assert_eq!(rec.ops, ops[..2]);
        assert!(rec.tail_damaged);
    }

    #[test]
    fn file_roundtrip_and_tail_truncation() {
        let dir = std::env::temp_dir().join(format!("memo-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let (mut wal, rec) = Wal::open(&RealVfs, &path, true).unwrap();
        assert!(rec.ops.is_empty());
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);

        // Damage the tail on disk; reopen must truncate it away.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.pop();
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, rec) = Wal::open(&RealVfs, &path, true).unwrap();
        assert_eq!(rec.ops, ops()[..2]);
        assert!(rec.tail_damaged);
        // The truncated log accepts fresh appends cleanly.
        wal.append(&WalOp::Put { key: b"new".to_vec(), value: b"v".to_vec() }).unwrap();
        drop(wal);
        let rec = scan(&std::fs::read(&path).unwrap());
        assert_eq!(rec.ops.len(), 3);
        assert!(!rec.tail_damaged);

        wal_cleanup(&dir);
    }

    #[test]
    fn failed_appends_roll_back_to_the_committed_prefix() {
        use crate::vfs::{FaultConfig, FaultKind, FaultOp, FaultVfs, ScheduledFault};
        let dir = std::env::temp_dir().join(format!("memo-wal-rollback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let vfs = FaultVfs::new(FaultConfig {
            scheduled: vec![
                ScheduledFault { op: FaultOp::Write, nth: 2, kind: FaultKind::ShortWrite },
                ScheduledFault { op: FaultOp::Fsync, nth: 2, kind: FaultKind::Error },
            ],
            ..FaultConfig::quiet(21)
        });
        let (mut wal, _) = Wal::open(&vfs, &path, true).unwrap();
        let ops = ops();
        wal.append(&ops[0]).unwrap();
        // Short write: a prefix lands, then the call fails — the log must
        // snap back to exactly one committed record, immediately.
        assert!(wal.append(&ops[1]).is_err());
        assert_eq!(scan(&std::fs::read(&path).unwrap()).ops, ops[..1]);
        // Fsync failure: the bytes landed but were never made durable —
        // the unacknowledged record must be rolled back too.
        assert!(wal.append(&ops[2]).is_err());
        assert_eq!(scan(&std::fs::read(&path).unwrap()).ops, ops[..1]);
        // The log keeps accepting appends afterwards.
        wal.append(&ops[2]).unwrap();
        drop(wal);
        let rec = scan(&std::fs::read(&path).unwrap());
        assert_eq!(rec.ops, vec![ops[0].clone(), ops[2].clone()]);
        assert!(!rec.tail_damaged);
        wal_cleanup(&dir);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = std::env::temp_dir().join(format!("memo-wal-reset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&RealVfs, &path, false).unwrap();
        wal.append(&WalOp::Delete { key: b"k".to_vec() }).unwrap();
        wal.reset().unwrap();
        wal.append(&WalOp::Put { key: b"a".to_vec(), value: b"b".to_vec() }).unwrap();
        drop(wal);
        let rec = scan(&std::fs::read(&path).unwrap());
        assert_eq!(rec.ops, vec![WalOp::Put { key: b"a".to_vec(), value: b"b".to_vec() }]);
        wal_cleanup(&dir);
    }

    fn wal_cleanup(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

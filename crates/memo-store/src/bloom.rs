//! Per-segment bloom filters: remember where a key *isn't*.
//!
//! The paper's memo-tables win only when a probe is cheaper than the
//! work it replaces; the same bargain holds one level down. A segment
//! probe costs a sparse-index binary search plus a positioned read of up
//! to `SPARSE_EVERY` entries — far more than recomputing nothing. A
//! bloom filter answers "definitely absent" from a few dozen in-memory
//! bits, so misses skip the file entirely (the way-memoization idea from
//! Ishihara & Fallah, applied to segment files).
//!
//! The filter uses **SplitMix64 double-hashing**: two 64-bit hashes
//! `h1`, `h2` are derived from the key by folding 8-byte chunks through
//! the SplitMix64 finalizer, and probe `i` tests bit `h1 + i·h2 mod m`
//! (Kirsch–Mitzenmacher). Serialization is a fixed little-endian frame —
//! `[k u32][nbits u64][words u64...]` — checksummed by the segment
//! footer that embeds it.

/// Cap on the number of probe bits per key, whatever the bits/key knob
/// says (diminishing returns well before this).
const MAX_PROBES: u32 = 16;

/// The SplitMix64 output finalizer — the same mixer the fault injector
/// and the load generator use, reimplemented because this crate is
/// dependency-free by policy.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The double-hash pair for `key`: two independent 64-bit streams over
/// the same chunks, seeded differently. `h2` is forced odd so the probe
/// stride never collapses to zero modulo a power-of-two bit count.
#[must_use]
pub fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h1 = 0x517C_C1B7_2722_0A95 ^ key.len() as u64;
    let mut h2 = 0x2545_F491_4F6C_DD1D ^ (key.len() as u64).rotate_left(32);
    for chunk in key.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from_le_bytes(word);
        h1 = mix(h1 ^ v);
        h2 = mix(h2.rotate_left(13) ^ v);
    }
    (mix(h1), mix(h2) | 1)
}

/// A bloom filter over one segment's key set. Immutable once built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    /// Probes per key.
    k: u32,
    /// Bit-array length (≥ 64).
    nbits: u64,
    /// The bit array, 64 bits per word, little-endian on disk.
    words: Vec<u64>,
}

impl Bloom {
    /// Build a filter sized for `hashes.len()` keys at `bits_per_key`
    /// bits each (minimum one word), from precomputed [`hash_pair`]s.
    #[must_use]
    pub fn from_hashes(hashes: &[(u64, u64)], bits_per_key: u32) -> Bloom {
        let nbits = (hashes.len() as u64 * u64::from(bits_per_key.max(1))).max(64);
        // Optimal k ≈ bits/key · ln 2; integer-rounded, clamped sane.
        let k = ((u64::from(bits_per_key) * 693 + 500) / 1000).clamp(1, u64::from(MAX_PROBES)) as u32;
        let mut bloom = Bloom { k, nbits, words: vec![0u64; nbits.div_ceil(64) as usize] };
        for &(h1, h2) in hashes {
            for i in 0..u64::from(k) {
                let bit = h1.wrapping_add(i.wrapping_mul(h2)) % bloom.nbits;
                bloom.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        bloom
    }

    /// Build from raw keys (convenience over [`from_hashes`](Self::from_hashes)).
    #[must_use]
    pub fn build<'a>(keys: impl Iterator<Item = &'a [u8]>, bits_per_key: u32) -> Bloom {
        let hashes: Vec<(u64, u64)> = keys.map(hash_pair).collect();
        Self::from_hashes(&hashes, bits_per_key)
    }

    /// `false` means the key is definitely not in the segment; `true`
    /// means "maybe" (the false-positive side of the bargain).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..u64::from(self.k)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Serialized size in bytes (the segment writer's sizing input).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        12 + self.words.len() * 8
    }

    /// Serialize: `[k u32 LE][nbits u64 LE][words u64 LE ...]`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nbits.to_le_bytes());
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Decode a serialized filter; `None` when the frame is malformed
    /// (wrong length, zero probes, zero bits).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Bloom> {
        let k = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
        let nbits = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
        if k == 0 || k > MAX_PROBES || nbits < 64 {
            return None;
        }
        let body = bytes.get(12..)?;
        let n_words = nbits.div_ceil(64) as usize;
        if body.len() != n_words * 8 {
            return None;
        }
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Bloom { k, nbits, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("results/table/{i}@scale=16;sci_n={}", i % 57).into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives_ever() {
        let keys = keys(500);
        let bloom = Bloom::build(keys.iter().map(Vec::as_slice), 10);
        for k in &keys {
            assert!(bloom.contains(k), "inserted key must never be rejected");
        }
    }

    #[test]
    fn false_positive_rate_is_in_the_expected_band() {
        let keys = keys(1000);
        let bloom = Bloom::build(keys.iter().map(Vec::as_slice), 10);
        let probes = 10_000usize;
        let fp = (0..probes)
            .filter(|i| bloom.contains(format!("absent/{i}/not-a-key").as_bytes()))
            .count();
        // Theory says ~0.8% at 10 bits/key; allow a wide band for hash
        // quality variance, but demand it actually filters.
        assert!(fp < probes / 20, "fp rate {fp}/{probes} is far above the 10 bits/key band");
        assert!(
            (0..probes).any(|i| !bloom.contains(format!("absent/{i}/not-a-key").as_bytes())),
            "a real filter must reject most absent keys"
        );
    }

    #[test]
    fn roundtrips_through_bytes() {
        let keys = keys(100);
        let bloom = Bloom::build(keys.iter().map(Vec::as_slice), 12);
        let bytes = bloom.to_bytes();
        assert_eq!(bytes.len(), bloom.byte_len());
        let back = Bloom::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, bloom);
        for k in &keys {
            assert!(back.contains(k));
        }
    }

    #[test]
    fn rejects_malformed_frames() {
        let bloom = Bloom::build(keys(10).iter().map(Vec::as_slice), 8);
        let bytes = bloom.to_bytes();
        assert!(Bloom::from_bytes(&bytes[..bytes.len() - 1]).is_none(), "truncated body");
        assert!(Bloom::from_bytes(&bytes[..8]).is_none(), "truncated header");
        let mut zero_k = bytes.clone();
        zero_k[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(Bloom::from_bytes(&zero_k).is_none(), "zero probes");
        assert!(Bloom::from_bytes(&[]).is_none());
    }

    #[test]
    fn empty_key_set_rejects_everything() {
        let bloom = Bloom::build(std::iter::empty(), 10);
        assert!(!bloom.contains(b"anything"));
        assert!(!bloom.contains(b""));
    }

    #[test]
    fn hash_pair_is_deterministic_and_spread() {
        assert_eq!(hash_pair(b"key"), hash_pair(b"key"));
        assert_ne!(hash_pair(b"key").0, hash_pair(b"kez").0);
        assert_ne!(hash_pair(b"a"), hash_pair(b"aa"), "length must matter");
        assert_eq!(hash_pair(b"x").1 % 2, 1, "stride must be odd");
    }
}

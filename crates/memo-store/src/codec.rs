//! Typed payloads over the raw byte store.
//!
//! Two blob families get persisted: rendered `(experiment, config)`
//! result blobs and operand-trace archives. Both are wrapped in a small
//! versioned envelope — `magic | version | payload` — so a format bump
//! *invalidates* old blobs (decode fails, caller recomputes) instead of
//! misdecoding them. The store's own integrity is byte-level (WAL CRC,
//! segment CRC); this layer is about meaning, not corruption.

use std::fmt;

/// Envelope version for [`ResultBlob`]. Bump on any layout change.
pub const RESULT_VERSION: u16 = 1;
/// Envelope version for trace archives. Bump on any layout change.
pub const TRACE_ARCHIVE_VERSION: u16 = 1;

const RESULT_MAGIC: &[u8; 4] = b"MRES";
const TRACE_MAGIC: &[u8; 4] = b"MTRC";

/// Why a blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The magic bytes do not match — not this blob family at all.
    WrongMagic,
    /// The version is not the one this build encodes. Treat as a cache
    /// miss: recompute and overwrite.
    WrongVersion {
        /// Version found in the envelope.
        found: u16,
        /// Version this build reads.
        expected: u16,
    },
    /// The payload is shorter than its own length fields claim.
    Truncated,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::WrongMagic => write!(f, "blob magic mismatch"),
            CodecError::WrongVersion { found, expected } => {
                write!(f, "blob version {found} (this build reads {expected})")
            }
            CodecError::Truncated => write!(f, "blob truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A rendered experiment artifact: the HTTP-ish status it rendered with
/// and the response body bytes. Exactly what the serving layer needs to
/// replay a response without rerunning the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultBlob {
    /// Status code the render produced (only 200s are worth caching, but
    /// the codec does not enforce policy).
    pub status: u16,
    /// The rendered body.
    pub body: Vec<u8>,
}

impl ResultBlob {
    /// Encode into the versioned envelope.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.body.len());
        out.extend_from_slice(RESULT_MAGIC);
        out.extend_from_slice(&RESULT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.status.to_le_bytes());
        out.extend_from_slice(
            &(u32::try_from(self.body.len()).expect("body fits u32")).to_le_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Decode from the versioned envelope.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on magic/version/length mismatch — callers treat
    /// any error as a miss and recompute.
    pub fn from_bytes(bytes: &[u8]) -> Result<ResultBlob, CodecError> {
        let payload = open_envelope(bytes, RESULT_MAGIC, RESULT_VERSION)?;
        if payload.len() < 6 {
            return Err(CodecError::Truncated);
        }
        let status = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes"));
        let blen = u32::from_le_bytes(payload[2..6].try_into().expect("4 bytes")) as usize;
        let body = payload.get(6..6 + blen).ok_or(CodecError::Truncated)?.to_vec();
        if payload.len() != 6 + blen {
            return Err(CodecError::Truncated); // trailing garbage is not ours
        }
        Ok(ResultBlob { status, body })
    }
}

/// Encode an archive of opaque parts (one per recorded kernel trace —
/// the parts themselves are `OpTrace::to_bytes` output, which carries
/// its own version tag).
#[must_use]
pub fn encode_trace_archive(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(10 + total);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&TRACE_ARCHIVE_VERSION.to_le_bytes());
    out.extend_from_slice(&(u32::try_from(parts.len()).expect("parts fit u32")).to_le_bytes());
    for part in parts {
        out.extend_from_slice(&(u32::try_from(part.len()).expect("part fits u32")).to_le_bytes());
        out.extend_from_slice(part);
    }
    out
}

/// Decode a trace archive back into its opaque parts.
///
/// # Errors
///
/// [`CodecError`] on magic/version/length mismatch.
pub fn decode_trace_archive(bytes: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
    let payload = open_envelope(bytes, TRACE_MAGIC, TRACE_ARCHIVE_VERSION)?;
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let count = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let mut parts = Vec::with_capacity(count.min(1024));
    let mut at = 4usize;
    for _ in 0..count {
        let plen = payload
            .get(at..at + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
            .ok_or(CodecError::Truncated)?;
        let part = payload.get(at + 4..at + 4 + plen).ok_or(CodecError::Truncated)?.to_vec();
        parts.push(part);
        at += 4 + plen;
    }
    if at != payload.len() {
        return Err(CodecError::Truncated);
    }
    Ok(parts)
}

fn open_envelope<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    version: u16,
) -> Result<&'a [u8], CodecError> {
    if bytes.len() < 6 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..4] != magic {
        return Err(CodecError::WrongMagic);
    }
    let found = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if found != version {
        return Err(CodecError::WrongVersion { found, expected: version });
    }
    Ok(&bytes[6..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_blob_roundtrips() {
        let blob = ResultBlob { status: 200, body: b"| config | speedup |\n".to_vec() };
        let bytes = blob.to_bytes();
        assert_eq!(ResultBlob::from_bytes(&bytes).unwrap(), blob);
        let empty = ResultBlob { status: 404, body: Vec::new() };
        assert_eq!(ResultBlob::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn result_blob_rejects_damage_and_foreign_versions() {
        let bytes = ResultBlob { status: 200, body: vec![7u8; 32] }.to_bytes();
        assert_eq!(ResultBlob::from_bytes(&bytes[..10]), Err(CodecError::Truncated));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(ResultBlob::from_bytes(&wrong_magic), Err(CodecError::WrongMagic));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            ResultBlob::from_bytes(&wrong_version),
            Err(CodecError::WrongVersion { found: 99, expected: RESULT_VERSION })
        );
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(ResultBlob::from_bytes(&trailing), Err(CodecError::Truncated));
    }

    #[test]
    fn trace_archive_roundtrips() {
        let parts = vec![b"trace-one".to_vec(), Vec::new(), vec![0xAB; 100]];
        let bytes = encode_trace_archive(&parts);
        assert_eq!(decode_trace_archive(&bytes).unwrap(), parts);
        assert_eq!(decode_trace_archive(&encode_trace_archive(&[])).unwrap(), Vec::<Vec<u8>>::new());
        assert_eq!(decode_trace_archive(&bytes[..8]), Err(CodecError::Truncated));
        assert_eq!(decode_trace_archive(b"MRESxx"), Err(CodecError::WrongMagic));
    }
}

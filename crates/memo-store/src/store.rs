//! The store proper: WAL + memtable + segments + compaction behind one
//! thread-safe handle.
//!
//! Read path (the paper's probe protocol, one level up): memtable first
//! (newest), then segments newest → oldest; the first tier that knows the
//! key answers, with tombstones shadowing older live values. Write path:
//! WAL append (durability point), then memtable; when the memtable
//! passes its byte threshold it is flushed to a new immutable segment
//! and the WAL is reset. Crash ordering is segment-then-WAL-reset, so
//! the log is always at least as new as every segment and replaying it
//! after a crash between the two steps is idempotent.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::memtable::MemTable;
use crate::segment::{self, Segment};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{Wal, WalOp};
use crate::StoreError;

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Flush the memtable to a segment once it holds this many bytes.
    pub memtable_max_bytes: usize,
    /// `fsync` after every WAL append and segment write. Turn off only in
    /// tests and benchmarks where the OS page cache is durability enough.
    pub fsync: bool,
    /// Run a full compaction automatically once this many segments exist.
    pub compact_at_segments: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { memtable_max_bytes: 4 << 20, fsync: true, compact_at_segments: 8 }
    }
}

impl StoreConfig {
    /// A config suited to tests: tiny memtable, no fsync.
    #[must_use]
    pub fn small_for_tests() -> Self {
        StoreConfig { memtable_max_bytes: 256, fsync: false, compact_at_segments: 4 }
    }
}

/// Operation counters, all monotonic since open.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls answered from the memtable.
    pub memtable_hits: u64,
    /// `get` calls answered from a segment file.
    pub segment_hits: u64,
    /// `get` calls that found nothing (or a tombstone).
    pub misses: u64,
    /// `put`/`delete` calls accepted.
    pub writes: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Bytes read from segment files while serving gets.
    pub bytes_read: u64,
    /// Bytes appended to the WAL.
    pub bytes_written: u64,
    /// Live segment files right now.
    pub segments: u64,
    /// Total bytes across live segment files.
    pub segment_bytes: u64,
    /// Entries currently buffered in the memtable.
    pub memtable_entries: u64,
    /// Approximate bytes currently buffered in the memtable.
    pub memtable_bytes: u64,
    /// Operations replayed from the WAL at open.
    pub recovered_ops: u64,
    /// `true` when open found (and truncated) a torn or corrupt WAL tail.
    pub recovered_torn_tail: bool,
}

#[derive(Default)]
struct Counters {
    memtable_hits: AtomicU64,
    segment_hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

struct Inner {
    wal: Wal,
    memtable: MemTable,
    /// Newest first — lookup order.
    segments: Vec<Segment>,
    /// Sequence number for the next segment file name.
    next_seq: u64,
}

/// A log-structured, crash-safe KV store rooted at one directory.
/// All methods take `&self`; a single `Mutex` serializes mutation (the
/// workload is coarse blobs, not hot small keys).
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<Inner>,
    counters: Counters,
    recovered_ops: u64,
    recovered_torn_tail: bool,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.dir).finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.seg"))
}

impl Store {
    /// Open (creating if needed) the store rooted at `dir`: load and
    /// validate every segment, recover the WAL into a fresh memtable,
    /// truncate any damaged log tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::CorruptSegment`] when a segment fails validation —
    /// segments are written atomically, so corruption means bit rot, and
    /// refusing to open beats silently serving damage.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        Self::open_with_vfs(dir, config, Arc::new(RealVfs))
    }

    /// [`open`](Self::open) on an explicit [`Vfs`] — the chaos-testing
    /// entry point: hand in a `FaultVfs` and every byte of store I/O
    /// runs through the injector.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with_vfs(
        dir: &Path,
        config: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Store, StoreError> {
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("create store dir {}", dir.display()), e))?;

        // Collect `seg-*.seg` files; ignore stray `.tmp` leftovers from a
        // crash mid-flush (their rename never happened, so they are dead).
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = vfs
            .list_dir(dir)
            .map_err(|e| StoreError::io(format!("list store dir {}", dir.display()), e))?;
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.ends_with(".tmp") {
                let _ = vfs.remove_file(&path);
                continue;
            }
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seg_files.push((seq, path));
            }
        }
        // Newest (highest seq) first: lookup order.
        seg_files.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        let next_seq = seg_files.first().map_or(0, |(seq, _)| seq + 1);
        let mut segments = Vec::with_capacity(seg_files.len());
        for (_, path) in &seg_files {
            segments.push(Segment::open(vfs.as_ref(), path)?);
        }

        let (wal, recovery) = Wal::open(vfs.as_ref(), &dir.join("wal.log"), config.fsync)?;
        let mut memtable = MemTable::new();
        for op in &recovery.ops {
            match op {
                WalOp::Put { key, value } => memtable.put(key.clone(), value.clone()),
                WalOp::Delete { key } => memtable.delete(key.clone()),
            }
        }

        Ok(Store {
            dir: dir.to_path_buf(),
            config,
            vfs,
            inner: Mutex::new(Inner { wal, memtable, segments, next_seq }),
            counters: Counters::default(),
            recovered_ops: recovery.ops.len() as u64,
            recovered_torn_tail: recovery.tail_damaged,
        })
    }

    /// Look up `key` across all tiers. `Ok(None)` covers both "never
    /// written" and "deleted".
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::CorruptSegment`] from the
    /// segment read path.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let inner = self.inner.lock().expect("store poisoned");
        if let Some(hit) = inner.memtable.get(key) {
            return match hit {
                Some(v) => {
                    self.counters.memtable_hits.fetch_add(1, Ordering::Relaxed);
                    Ok(Some(v.to_vec()))
                }
                None => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    Ok(None) // tombstone shadows older segments
                }
            };
        }
        for seg in &inner.segments {
            let (found, bytes) = seg.get(key)?;
            self.counters.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            match found {
                Some(Some(v)) => {
                    self.counters.segment_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(v));
                }
                Some(None) => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return Ok(None); // tombstone
                }
                None => {} // keep probing older segments
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        Ok(None)
    }

    /// Write `key` → `value` durably (WAL first, then memtable); flushes
    /// and compacts automatically when thresholds are crossed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — on error the write must be treated as not
    /// committed.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.write(WalOp::Put { key: key.to_vec(), value: value.to_vec() })
    }

    /// Record a tombstone for `key`.
    ///
    /// # Errors
    ///
    /// As [`put`](Self::put).
    pub fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.write(WalOp::Delete { key: key.to_vec() })
    }

    fn write(&self, op: WalOp) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let written = inner.wal.append(&op)?;
        self.counters.bytes_written.fetch_add(written as u64, Ordering::Relaxed);
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        match op {
            WalOp::Put { key, value } => inner.memtable.put(key, value),
            WalOp::Delete { key } => inner.memtable.delete(key),
        }
        if inner.memtable.approx_bytes() >= self.config.memtable_max_bytes {
            self.flush_locked(&mut inner)?;
            if inner.segments.len() >= self.config.compact_at_segments {
                self.compact_locked(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Flush the memtable to a new segment and reset the WAL. No-op when
    /// the memtable is empty.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let seq = inner.next_seq;
        let path = segment_path(&self.dir, seq);
        segment::write(self.vfs.as_ref(), &path, inner.memtable.iter(), self.config.fsync)?;
        let seg = Segment::open(self.vfs.as_ref(), &path)?;
        inner.segments.insert(0, seg); // newest first
        inner.next_seq = seq + 1;
        inner.memtable.clear();
        // Only now is the WAL superseded. A crash before this reset
        // replays the same ops into the memtable — idempotent, since the
        // flushed segment is older than the replayed memtable in lookup
        // order... and identical in content anyway.
        inner.wal.reset()?;
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Merge every segment into one, keeping only the newest version of
    /// each key and dropping tombstones (safe in a full merge: nothing
    /// older survives for a tombstone to shadow). Flushes the memtable
    /// first so the result is the complete state.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::CorruptSegment`].
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        self.flush_locked(&mut inner)?;
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.segments.len() <= 1 {
            return Ok(());
        }
        // Newest-wins merge: scan oldest → newest into a map so later
        // (newer) versions overwrite earlier ones.
        let mut merged: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
        for seg in inner.segments.iter().rev() {
            for (key, value) in seg.scan_all()? {
                merged.insert(key, value);
            }
        }
        let mut live: Vec<(Vec<u8>, Vec<u8>)> =
            merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect();
        live.sort_by(|a, b| a.0.cmp(&b.0));

        let seq = inner.next_seq;
        let path = segment_path(&self.dir, seq);
        segment::write(
            self.vfs.as_ref(),
            &path,
            live.iter().map(|(k, v)| (k.as_slice(), Some(v.as_slice()))),
            self.config.fsync,
        )?;
        let seg = Segment::open(self.vfs.as_ref(), &path)?;
        // The new segment is durable under a newer sequence number than
        // everything it replaces; a crash while deleting the old files
        // leaves shadowed-but-consistent duplicates that the next
        // compaction reclaims.
        let old = std::mem::replace(&mut inner.segments, vec![seg]);
        inner.next_seq = seq + 1;
        for seg in old {
            let _ = self.vfs.remove_file(seg.path());
        }
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Delete every key and segment — the format-bump invalidation path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn clear(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        inner.memtable.clear();
        inner.wal.reset()?;
        let old = std::mem::take(&mut inner.segments);
        for seg in old {
            self.vfs
                .remove_file(seg.path())
                .map_err(|e| StoreError::io("remove segment on clear", e))?;
        }
        Ok(())
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of all counters and gauges.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store poisoned");
        let c = &self.counters;
        StoreStats {
            memtable_hits: c.memtable_hits.load(Ordering::Relaxed),
            segment_hits: c.segment_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            flushes: c.flushes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            segments: inner.segments.len() as u64,
            segment_bytes: inner.segments.iter().map(Segment::file_len).sum(),
            memtable_entries: inner.memtable.len() as u64,
            memtable_bytes: inner.memtable.approx_bytes() as u64,
            recovered_ops: self.recovered_ops,
            recovered_torn_tail: self.recovered_torn_tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("memo-store-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn survives_reopen_through_wal_and_segments() {
        let dir = tmp_dir("reopen");
        {
            let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
            for i in 0..40u32 {
                store.put(format!("k{i:03}").as_bytes(), &[i as u8; 40]).unwrap();
            }
            store.delete(b"k005").unwrap();
            // No explicit flush: some state is in segments (auto-flush at
            // 256 bytes), the rest only in the WAL.
        }
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"k003").unwrap(), Some(vec![3u8; 40]));
        assert_eq!(store.get(b"k039").unwrap(), Some(vec![39u8; 40]));
        assert_eq!(store.get(b"k005").unwrap(), None, "tombstone survives reopen");
        assert_eq!(store.get(b"absent").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_version_wins_across_tiers() {
        let dir = tmp_dir("versions");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"k", b"old").unwrap();
        store.flush().unwrap(); // "old" now lives in a segment
        store.put(b"k", b"new").unwrap(); // memtable shadows it
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        store.flush().unwrap(); // both versions in segments, newest first
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_superseded_keys_and_tombstones() {
        let dir = tmp_dir("compact");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        for round in 0..3 {
            for i in 0..10u32 {
                store.put(format!("k{i}").as_bytes(), &[round; 64]).unwrap();
            }
            store.flush().unwrap();
        }
        store.delete(b"k9").unwrap();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.segments, 1, "full compaction leaves one segment");
        for i in 0..9u32 {
            assert_eq!(store.get(format!("k{i}").as_bytes()).unwrap(), Some(vec![2u8; 64]));
        }
        assert_eq!(store.get(b"k9").unwrap(), None, "tombstone dropped, key gone");
        // Reopen sees the compacted state.
        drop(store);
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"k0").unwrap(), Some(vec![2u8; 64]));
        assert_eq!(store.get(b"k9").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_tiers_and_bytes() {
        let dir = tmp_dir("stats");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"mem", b"v").unwrap();
        assert_eq!(store.get(b"mem").unwrap(), Some(b"v".to_vec()));
        store.flush().unwrap();
        assert_eq!(store.get(b"mem").unwrap(), Some(b"v".to_vec()));
        assert_eq!(store.get(b"gone").unwrap(), None);
        let stats = store.stats();
        assert_eq!(stats.memtable_hits, 1);
        assert_eq!(stats.segment_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.flushes, 1);
        assert!(stats.bytes_written > 0);
        assert!(stats.segment_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_wipes_everything() {
        let dir = tmp_dir("clear");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"a", b"1").unwrap();
        store.flush().unwrap();
        store.put(b"b", b"2").unwrap();
        store.clear().unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        assert_eq!(store.get(b"b").unwrap(), None);
        drop(store);
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

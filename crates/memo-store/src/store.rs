//! The store proper: WAL + memtable + frozen memtables + segments +
//! compaction behind one thread-safe handle, with flush and compaction
//! on a dedicated background thread.
//!
//! Read path (the paper's probe protocol, one level up): active memtable
//! first (newest), then frozen memtables newest → oldest, then segments
//! newest → oldest; the first tier that knows the key answers, with
//! tombstones shadowing older live values. Segment probes are screened
//! by per-segment bloom filters and served through an optional
//! checksummed block cache.
//!
//! Write path: WAL append (durability point), then active memtable; when
//! the memtable passes its byte threshold it is *frozen* — the active
//! WAL is renamed to `wal-{gen}.log`, a fresh one opened, and the full
//! table pushed onto a bounded queue for the flush thread. Writers never
//! wait for segment I/O; they wait only when the queue is full
//! (backpressure). Crash ordering is segment-then-WAL-delete, so every
//! committed write lives in either a frozen log or its segment at all
//! times, and recovery turns leftover frozen logs back into segments.
//!
//! [`Store::flush`] and [`Store::compact`] remain synchronous barriers
//! (freeze, then wait for the background thread to drain), and dropping
//! the store drains the queue — one attempt per pending table, with
//! failures leaving their frozen logs for the next open.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::block_cache::BlockCache;
use crate::memtable::MemTable;
use crate::segment::{self, Segment};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{self, Wal, WalOp};
use crate::StoreError;

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Freeze the memtable for background flush once it holds this many
    /// bytes.
    pub memtable_max_bytes: usize,
    /// `fsync` after every WAL append and segment write (including the
    /// directory fsync that makes a segment's rename durable). Turn off
    /// only in tests and benchmarks where the OS page cache is
    /// durability enough.
    pub fsync: bool,
    /// Request a full compaction automatically once this many segments
    /// exist.
    pub compact_at_segments: usize,
    /// Backpressure bound: a write that needs to freeze the memtable
    /// blocks while this many frozen tables already await flushing.
    pub max_immutables: usize,
    /// Bloom-filter budget per segment entry, in bits (0 disables the
    /// filter for newly written segments). 10 bits/key ≈ 1% false
    /// positives.
    pub bloom_bits_per_key: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memtable_max_bytes: 4 << 20,
            fsync: true,
            compact_at_segments: 8,
            max_immutables: 4,
            bloom_bits_per_key: 10,
        }
    }
}

impl StoreConfig {
    /// A config suited to tests: tiny memtable, no fsync, short queue.
    #[must_use]
    pub fn small_for_tests() -> Self {
        StoreConfig {
            memtable_max_bytes: 256,
            fsync: false,
            compact_at_segments: 4,
            max_immutables: 2,
            bloom_bits_per_key: 10,
        }
    }

}

/// Operation counters, all monotonic since open (except the queue-depth
/// gauge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls answered from the active or a frozen memtable.
    pub memtable_hits: u64,
    /// `get` calls answered from a segment file.
    pub segment_hits: u64,
    /// `get` calls that found nothing (or a tombstone).
    pub misses: u64,
    /// `put`/`delete` calls accepted.
    pub writes: u64,
    /// Memtable flushes completed by the background thread.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Bytes read from segment files while serving gets.
    pub bytes_read: u64,
    /// Bytes appended to the WAL.
    pub bytes_written: u64,
    /// Live segment files right now.
    pub segments: u64,
    /// Total bytes across live segment files.
    pub segment_bytes: u64,
    /// Entries currently buffered in the active memtable.
    pub memtable_entries: u64,
    /// Approximate bytes currently buffered in the active memtable.
    pub memtable_bytes: u64,
    /// Operations replayed from WALs (active and frozen) at open.
    pub recovered_ops: u64,
    /// `true` when open found (and truncated) a torn or corrupt WAL tail.
    pub recovered_torn_tail: bool,
    /// Frozen memtables awaiting background flush right now (gauge).
    pub flush_queue_depth: u64,
    /// Deepest the flush queue has been since open.
    pub flush_queue_peak: u64,
    /// Background flush/compaction attempts that failed (each retry
    /// counts — the breaker wants every disk grievance).
    pub flush_failures: u64,
    /// Segment probes skipped because the bloom filter ruled the key out.
    pub bloom_negatives: u64,
    /// Segment probes the bloom filter allowed that found nothing — the
    /// filter's false positives.
    pub bloom_false_positives: u64,
    /// Segment spans served from the block cache (checksum verified).
    pub block_cache_hits: u64,
    /// Segment spans the block cache was asked for but could not serve.
    pub block_cache_misses: u64,
}

#[derive(Default)]
struct Counters {
    memtable_hits: AtomicU64,
    segment_hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    flush_failures: AtomicU64,
    bloom_negatives: AtomicU64,
    bloom_false_positives: AtomicU64,
    block_cache_hits: AtomicU64,
    block_cache_misses: AtomicU64,
    flush_queue_peak: AtomicU64,
}

/// A memtable frozen for background flush, still serving reads. Its
/// contents are durable in `wal_path`; `gen` doubles as the sequence
/// number of the segment it will become.
struct Frozen {
    table: Arc<MemTable>,
    wal_path: PathBuf,
    gen: u64,
}

struct Inner {
    wal: Wal,
    memtable: MemTable,
    /// Oldest first — flush order. Lookups scan newest → oldest.
    immutables: VecDeque<Frozen>,
    /// Newest first — lookup order. `Arc` so reads snapshot the set and
    /// probe outside the lock.
    segments: Vec<Arc<Segment>>,
    /// Sequence number for the next segment file name / freeze gen.
    next_seq: u64,
    /// Set by drop: the flusher drains and exits, barriers stop waiting.
    shutdown: bool,
    /// A full compaction is queued for the flusher (stays set while one
    /// runs, so barriers can wait on it).
    compact_requested: bool,
    /// Last background failure, for the error barriers surface.
    last_flush_error: Option<String>,
    /// Bumped on every background failure; barriers compare against a
    /// baseline to detect failures that happened on their watch.
    failures_seen: u64,
}

struct Shared {
    dir: PathBuf,
    config: StoreConfig,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<Inner>,
    /// Signals the flusher: new frozen table, compaction request, shutdown.
    work: Condvar,
    /// Signals writers/barriers: queue drained a slot, compaction done,
    /// failure recorded.
    space: Condvar,
    counters: Counters,
    block_cache: OnceLock<Arc<dyn BlockCache>>,
    flush_observer: OnceLock<Box<dyn Fn(bool) + Send + Sync>>,
}

/// A log-structured, crash-safe KV store rooted at one directory.
/// All methods take `&self`; a single `Mutex` serializes mutation (the
/// workload is coarse blobs, not hot small keys), and segment I/O runs
/// on a background flush thread.
pub struct Store {
    shared: Arc<Shared>,
    flusher: Option<std::thread::JoinHandle<()>>,
    recovered_ops: u64,
    recovered_torn_tail: bool,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.shared.dir).finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.seg"))
}

fn frozen_wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:08}.log"))
}

impl Store {
    /// Open (creating if needed) the store rooted at `dir`: load and
    /// validate every segment, turn frozen WALs left by a crash back
    /// into segments, recover the active WAL into a fresh memtable,
    /// truncate any damaged log tail, and start the background flush
    /// thread.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::CorruptSegment`] when a segment fails validation —
    /// segments are written atomically, so corruption means bit rot, and
    /// refusing to open beats silently serving damage.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        Self::open_with_vfs(dir, config, Arc::new(RealVfs))
    }

    /// [`open`](Self::open) on an explicit [`Vfs`] — the chaos-testing
    /// entry point: hand in a `FaultVfs` and every byte of store I/O
    /// runs through the injector.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with_vfs(
        dir: &Path,
        config: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Store, StoreError> {
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("create store dir {}", dir.display()), e))?;

        // Collect `seg-*.seg` segments and `wal-*.log` frozen logs;
        // ignore stray `.tmp` leftovers from a crash mid-flush (their
        // rename never happened, so they are dead).
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut frozen_wals: Vec<(u64, PathBuf)> = Vec::new();
        let entries = vfs
            .list_dir(dir)
            .map_err(|e| StoreError::io(format!("list store dir {}", dir.display()), e))?;
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.ends_with(".tmp") {
                let _ = vfs.remove_file(&path);
                continue;
            }
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seg_files.push((seq, path));
            } else if let Some(gen) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                frozen_wals.push((gen, path));
            }
        }

        // A frozen WAL is a flush that never finished (or whose log
        // deletion was lost). Replay each into the segment it was headed
        // for — oldest first, so sequence order matches write order.
        frozen_wals.sort_by_key(|(gen, _)| *gen);
        let mut recovered_ops = 0u64;
        let mut recovered_torn_tail = false;
        for (gen, wal_path) in &frozen_wals {
            if seg_files.iter().any(|(seq, _)| seq == gen) {
                // The segment landed; only the log deletion was lost.
                let _ = vfs.remove_file(wal_path);
                continue;
            }
            let bytes = vfs
                .open_read(wal_path)
                .and_then(|mut f| f.read_all())
                .map_err(|e| {
                    StoreError::io(format!("read frozen wal {}", wal_path.display()), e)
                })?;
            let recovery = wal::scan(&bytes);
            recovered_ops += recovery.ops.len() as u64;
            recovered_torn_tail |= recovery.tail_damaged;
            if !recovery.ops.is_empty() {
                let mut table = MemTable::new();
                for op in recovery.ops {
                    match op {
                        WalOp::Put { key, value } => table.put(key, value),
                        WalOp::Delete { key } => table.delete(key),
                    }
                }
                let seg_path = segment_path(dir, *gen);
                segment::write(
                    vfs.as_ref(),
                    &seg_path,
                    table.iter(),
                    config.fsync,
                    config.bloom_bits_per_key,
                )?;
                seg_files.push((*gen, seg_path));
            }
            let _ = vfs.remove_file(wal_path);
        }

        // Newest (highest seq) first: lookup order.
        seg_files.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        let next_seq = seg_files
            .first()
            .map_or(0, |(seq, _)| seq + 1)
            .max(frozen_wals.last().map_or(0, |(gen, _)| gen + 1));
        let mut segments = Vec::with_capacity(seg_files.len());
        for (_, path) in &seg_files {
            segments.push(Arc::new(Segment::open(vfs.as_ref(), path)?));
        }

        let (active_wal, recovery) = Wal::open(vfs.as_ref(), &dir.join("wal.log"), config.fsync)?;
        let mut memtable = MemTable::new();
        for op in &recovery.ops {
            match op {
                WalOp::Put { key, value } => memtable.put(key.clone(), value.clone()),
                WalOp::Delete { key } => memtable.delete(key.clone()),
            }
        }
        recovered_ops += recovery.ops.len() as u64;
        recovered_torn_tail |= recovery.tail_damaged;

        let shared = Arc::new(Shared {
            dir: dir.to_path_buf(),
            config,
            vfs,
            inner: Mutex::new(Inner {
                wal: active_wal,
                memtable,
                immutables: VecDeque::new(),
                segments,
                next_seq,
                shutdown: false,
                compact_requested: false,
                last_flush_error: None,
                failures_seen: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            counters: Counters::default(),
            block_cache: OnceLock::new(),
            flush_observer: OnceLock::new(),
        });
        let flusher = std::thread::Builder::new()
            .name("memo-store-flush".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || Self::flusher_loop(&shared)
            })
            .map_err(|e| StoreError::io("spawn flush thread", e))?;

        Ok(Store { shared, flusher: Some(flusher), recovered_ops, recovered_torn_tail })
    }

    /// Plug a checksummed block cache under every segment read. First
    /// call wins; later calls are ignored (the cache is process wiring,
    /// set once at startup).
    pub fn attach_block_cache(&self, cache: Arc<dyn BlockCache>) {
        let _ = self.shared.block_cache.set(cache);
    }

    /// Register an observer called with `true` after every successful
    /// background flush/compaction and `false` after a failure — the
    /// serving layer points this at its disk-tier circuit breaker so
    /// background disk trouble trips the same protections as foreground
    /// loads. Called outside the store lock. First call wins.
    pub fn set_flush_observer(&self, observer: Box<dyn Fn(bool) + Send + Sync>) {
        let _ = self.shared.flush_observer.set(observer);
    }

    fn notify_observer(shared: &Shared, ok: bool) {
        if let Some(observer) = shared.flush_observer.get() {
            observer(ok);
        }
    }

    fn record_flush_failure_locked(shared: &Shared, inner: &mut Inner, e: &StoreError) {
        shared.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
        inner.last_flush_error = Some(e.to_string());
        inner.failures_seen += 1;
    }

    fn background_error(inner: &Inner) -> StoreError {
        let detail = inner.last_flush_error.clone().unwrap_or_else(|| "unknown failure".into());
        StoreError::io("background flush", io::Error::other(detail))
    }

    /// Look up `key` across all tiers. `Ok(None)` covers both "never
    /// written" and "deleted".
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::CorruptSegment`] from the
    /// segment read path.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let shared = &self.shared;
        let c = &shared.counters;
        // Memory tiers and the segment snapshot under one lock hold:
        // the flusher installs a segment and pops its frozen table
        // atomically, so nothing committed can fall between tiers.
        let segments: Vec<Arc<Segment>> = {
            let inner = shared.inner.lock().expect("store poisoned");
            if let Some(hit) = inner.memtable.get(key) {
                return match hit {
                    Some(v) => {
                        c.memtable_hits.fetch_add(1, Ordering::Relaxed);
                        Ok(Some(v.to_vec()))
                    }
                    None => {
                        c.misses.fetch_add(1, Ordering::Relaxed);
                        Ok(None) // tombstone shadows older tiers
                    }
                };
            }
            let mut frozen_hit = None;
            for frozen in inner.immutables.iter().rev() {
                if let Some(hit) = frozen.table.get(key) {
                    frozen_hit = Some(hit.map(<[u8]>::to_vec));
                    break;
                }
            }
            if let Some(hit) = frozen_hit {
                return match hit {
                    Some(v) => {
                        c.memtable_hits.fetch_add(1, Ordering::Relaxed);
                        Ok(Some(v))
                    }
                    None => {
                        c.misses.fetch_add(1, Ordering::Relaxed);
                        Ok(None)
                    }
                };
            }
            inner.segments.clone()
        };
        let cache = shared.block_cache.get().map(|c| c.as_ref() as &dyn BlockCache);
        for seg in &segments {
            if !seg.maybe_contains(key) {
                c.bloom_negatives.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let (found, acct) = seg.get_with_cache(key, cache)?;
            c.bytes_read.fetch_add(acct.disk_bytes, Ordering::Relaxed);
            if acct.cache_hit {
                c.block_cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            if acct.cache_miss {
                c.block_cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            match found {
                Some(Some(v)) => {
                    c.segment_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(v));
                }
                Some(None) => {
                    c.misses.fetch_add(1, Ordering::Relaxed);
                    return Ok(None); // tombstone
                }
                None => {
                    if seg.has_bloom() {
                        c.bloom_false_positives.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        c.misses.fetch_add(1, Ordering::Relaxed);
        Ok(None)
    }

    /// Write `key` → `value` durably (WAL first, then memtable). Freezes
    /// the memtable for background flushing when the watermark is
    /// crossed; blocks only when the flush queue is full.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — on error the write must be treated as not
    /// committed.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.write(WalOp::Put { key: key.to_vec(), value: value.to_vec() })
    }

    /// Record a tombstone for `key`.
    ///
    /// # Errors
    ///
    /// As [`put`](Self::put).
    pub fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.write(WalOp::Delete { key: key.to_vec() })
    }

    fn write(&self, op: WalOp) -> Result<(), StoreError> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("store poisoned");
        let written = inner.wal.append(&op)?;
        shared.counters.bytes_written.fetch_add(written as u64, Ordering::Relaxed);
        shared.counters.writes.fetch_add(1, Ordering::Relaxed);
        match op {
            WalOp::Put { key, value } => inner.memtable.put(key, value),
            WalOp::Delete { key } => inner.memtable.delete(key),
        }
        let mut freeze_failed = false;
        if inner.memtable.approx_bytes() >= shared.config.memtable_max_bytes {
            // Backpressure: hold the writer (not the flusher) while the
            // queue is full.
            while inner.immutables.len() >= shared.config.max_immutables && !inner.shutdown {
                inner = shared.space.wait(inner).expect("store poisoned");
            }
            if inner.memtable.approx_bytes() >= shared.config.memtable_max_bytes
                && !inner.shutdown
            {
                if let Err(e) = Self::freeze_locked(shared, &mut inner) {
                    // The write itself is durable in the WAL; the freeze
                    // can be retried at the next watermark crossing.
                    Self::record_flush_failure_locked(shared, &mut inner, &e);
                    freeze_failed = true;
                }
            }
        }
        drop(inner);
        if freeze_failed {
            Self::notify_observer(shared, false);
        }
        Ok(())
    }

    /// Freeze the active memtable: rename its WAL to `wal-{gen}.log`,
    /// open a fresh active WAL, and queue the table for the flusher.
    /// `gen` is one `next_seq` draw, reused as the segment's sequence
    /// number so the log and the segment it becomes share a name.
    fn freeze_locked(shared: &Shared, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let gen = inner.next_seq;
        let frozen_path = frozen_wal_path(&shared.dir, gen);
        let active_path = shared.dir.join("wal.log");
        shared
            .vfs
            .rename(&active_path, &frozen_path)
            .map_err(|e| StoreError::io("freeze wal", e))?;
        let fresh = match Wal::open(shared.vfs.as_ref(), &active_path, shared.config.fsync) {
            Ok((wal, _)) => wal,
            Err(e) => {
                // Put the log back so the active memtable stays durable.
                let _ = shared.vfs.rename(&frozen_path, &active_path);
                return Err(e);
            }
        };
        inner.wal = fresh;
        inner.next_seq = gen + 1;
        let table = Arc::new(std::mem::replace(&mut inner.memtable, MemTable::new()));
        inner.immutables.push_back(Frozen { table, wal_path: frozen_path, gen });
        shared
            .counters
            .flush_queue_peak
            .fetch_max(inner.immutables.len() as u64, Ordering::Relaxed);
        shared.work.notify_one();
        Ok(())
    }

    /// The background thread: flush frozen tables oldest-first, run
    /// requested compactions, retry failures with backoff, drain on
    /// shutdown.
    fn flusher_loop(shared: &Arc<Shared>) {
        const BACKOFF_FLOOR: Duration = Duration::from_millis(2);
        const BACKOFF_CAP: Duration = Duration::from_millis(250);
        let mut backoff = BACKOFF_FLOOR;
        loop {
            let mut inner = shared.inner.lock().expect("store poisoned");
            while inner.immutables.is_empty() && !inner.compact_requested && !inner.shutdown {
                inner = shared.work.wait(inner).expect("store poisoned");
            }
            // Compaction runs BEFORE the next flush: under sustained
            // write load the queue is never empty, and a queue-first
            // policy would starve compaction forever — the segment
            // count (and with it every read) then grows without bound.
            // Draining on shutdown still wins: a skipped compaction
            // re-requests itself, a dropped flush loses a WAL.
            if inner.compact_requested {
                if inner.shutdown {
                    inner.compact_requested = false;
                } else {
                    Self::compact_step(shared, inner);
                    shared.space.notify_all();
                    continue;
                }
            }
            if let Some(front) = inner.immutables.front() {
                let table = Arc::clone(&front.table);
                let wal_path = front.wal_path.clone();
                let gen = front.gen;
                let shutting_down = inner.shutdown;
                drop(inner);

                let path = segment_path(&shared.dir, gen);
                let result = segment::write(
                    shared.vfs.as_ref(),
                    &path,
                    table.iter(),
                    shared.config.fsync,
                    shared.config.bloom_bits_per_key,
                )
                .and_then(|_| Segment::open(shared.vfs.as_ref(), &path));

                match result {
                    Ok(seg) => {
                        let mut inner = shared.inner.lock().expect("store poisoned");
                        let still_queued = inner
                            .immutables
                            .front()
                            .is_some_and(|f| Arc::ptr_eq(&f.table, &table));
                        if still_queued {
                            // Install and pop under one lock hold: a
                            // reader's snapshot always sees the data in
                            // exactly one tier.
                            inner.segments.insert(0, Arc::new(seg));
                            inner.immutables.pop_front();
                            if inner.segments.len() >= shared.config.compact_at_segments {
                                inner.compact_requested = true;
                            }
                            shared.counters.flushes.fetch_add(1, Ordering::Relaxed);
                            drop(inner);
                            // The segment is durable; its log is now
                            // redundant (recovery tolerates a lost delete).
                            let _ = shared.vfs.remove_file(&wal_path);
                            Self::notify_observer(shared, true);
                        } else {
                            // clear() won the race: the table is gone, so
                            // the segment must not become visible either.
                            drop(inner);
                            let _ = shared.vfs.remove_file(&path);
                        }
                        shared.space.notify_all();
                        backoff = BACKOFF_FLOOR;
                    }
                    Err(e) => {
                        let mut inner = shared.inner.lock().expect("store poisoned");
                        let still_queued = inner
                            .immutables
                            .front()
                            .is_some_and(|f| Arc::ptr_eq(&f.table, &table));
                        if still_queued {
                            Self::record_flush_failure_locked(shared, &mut inner, &e);
                            if shutting_down {
                                // Give up on this table: its frozen WAL
                                // stays on disk and the next open turns
                                // it into the segment we could not write.
                                inner.immutables.pop_front();
                            }
                        }
                        drop(inner);
                        shared.space.notify_all();
                        if still_queued {
                            Self::notify_observer(shared, false);
                            if !shutting_down {
                                let guard = shared.inner.lock().expect("store poisoned");
                                if !guard.shutdown {
                                    // Wake early on new work or shutdown.
                                    let _ = shared
                                        .work
                                        .wait_timeout(guard, backoff)
                                        .expect("store poisoned");
                                }
                                backoff = (backoff * 2).min(BACKOFF_CAP);
                            }
                        }
                    }
                }
                continue;
            }
            // Shutdown with an empty queue: drained (any compaction
            // request was cleared above; barriers observe `shutdown`).
            drop(inner);
            shared.space.notify_all();
            return;
        }
    }

    /// One full compaction on the flusher thread: snapshot the segment
    /// set, merge outside the lock, install only if the set is unchanged
    /// (only [`Store::clear`] can race — this thread is the sole
    /// installer). `compact_requested` stays set until the merge lands
    /// so barriers can wait on it.
    fn compact_step(shared: &Arc<Shared>, mut inner: MutexGuard<'_, Inner>) {
        if inner.segments.len() <= 1 {
            inner.compact_requested = false;
            return;
        }
        let snapshot: Vec<Arc<Segment>> = inner.segments.clone();
        let seq = inner.next_seq;
        inner.next_seq = seq + 1;
        drop(inner);

        let merge = || -> Result<Segment, StoreError> {
            // Newest-wins merge: scan oldest → newest into a map so
            // later (newer) versions overwrite earlier ones; tombstones
            // drop out (safe in a full merge — nothing older survives
            // for them to shadow).
            let mut merged: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
            for seg in snapshot.iter().rev() {
                for (key, value) in seg.scan_all()? {
                    merged.insert(key, value);
                }
            }
            let mut live: Vec<(Vec<u8>, Vec<u8>)> =
                merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect();
            live.sort_by(|a, b| a.0.cmp(&b.0));
            let path = segment_path(&shared.dir, seq);
            segment::write(
                shared.vfs.as_ref(),
                &path,
                live.iter().map(|(k, v)| (k.as_slice(), Some(v.as_slice()))),
                shared.config.fsync,
                shared.config.bloom_bits_per_key,
            )?;
            Segment::open(shared.vfs.as_ref(), &path)
        };

        match merge() {
            Ok(seg) => {
                let mut inner = shared.inner.lock().expect("store poisoned");
                inner.compact_requested = false;
                let unchanged = inner.segments.len() == snapshot.len()
                    && inner.segments.iter().zip(&snapshot).all(|(a, b)| Arc::ptr_eq(a, b));
                if unchanged {
                    let old = std::mem::replace(&mut inner.segments, vec![Arc::new(seg)]);
                    shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
                    drop(inner);
                    // The merge is durable under a newer sequence number;
                    // a crash while deleting old files leaves
                    // shadowed-but-consistent duplicates for the next
                    // compaction.
                    for seg in old {
                        let _ = shared.vfs.remove_file(seg.path());
                    }
                    Self::notify_observer(shared, true);
                } else {
                    drop(inner);
                    let _ = shared.vfs.remove_file(seg.path());
                }
            }
            Err(e) => {
                let mut inner = shared.inner.lock().expect("store poisoned");
                // Do not retry in a hot loop; the next flush re-requests
                // compaction, and explicit callers get the error below.
                inner.compact_requested = false;
                Self::record_flush_failure_locked(shared, &mut inner, &e);
                drop(inner);
                Self::notify_observer(shared, false);
            }
        }
    }

    /// Freeze the memtable and wait for the background thread to flush
    /// everything queued — a synchronous barrier. No-op when nothing is
    /// buffered.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on freeze failures or any background flush
    /// failure that happened while waiting (the write data stays durable
    /// in its frozen WAL and the flusher keeps retrying).
    pub fn flush(&self) -> Result<(), StoreError> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("store poisoned");
        Self::freeze_locked(shared, &mut inner)?;
        let baseline = inner.failures_seen;
        while !inner.immutables.is_empty() && !inner.shutdown {
            if inner.failures_seen > baseline {
                return Err(Self::background_error(&inner));
            }
            inner = shared.space.wait(inner).expect("store poisoned");
        }
        if inner.failures_seen > baseline {
            return Err(Self::background_error(&inner));
        }
        Ok(())
    }

    /// Merge every segment into one, keeping only the newest version of
    /// each key and dropping tombstones. Freezes the memtable first so
    /// the result is the complete state, then waits for the background
    /// thread to finish — a synchronous barrier.
    ///
    /// # Errors
    ///
    /// As [`flush`](Self::flush), plus compaction-merge failures.
    pub fn compact(&self) -> Result<(), StoreError> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("store poisoned");
        Self::freeze_locked(shared, &mut inner)?;
        let baseline = inner.failures_seen;
        // Drain queued flushes before requesting the merge: the flusher
        // services compactions ahead of flushes (so sustained writes
        // can't starve them), which means a request posted now would
        // merge only the segments already on disk and leave the tables
        // frozen above as fresh segments — not the "complete state"
        // this barrier promises.
        while !inner.immutables.is_empty() && !inner.shutdown {
            if inner.failures_seen > baseline {
                return Err(Self::background_error(&inner));
            }
            inner = shared.space.wait(inner).expect("store poisoned");
        }
        inner.compact_requested = true;
        shared.work.notify_one();
        while (!inner.immutables.is_empty() || inner.compact_requested) && !inner.shutdown {
            if inner.failures_seen > baseline {
                return Err(Self::background_error(&inner));
            }
            inner = shared.space.wait(inner).expect("store poisoned");
        }
        if inner.failures_seen > baseline {
            return Err(Self::background_error(&inner));
        }
        Ok(())
    }

    /// Delete every key, frozen table, and segment — the format-bump
    /// invalidation path. An in-flight background flush of a dropped
    /// table notices (the queue entry it took is gone) and withdraws its
    /// segment instead of installing it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn clear(&self) -> Result<(), StoreError> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("store poisoned");
        inner.memtable.clear();
        inner.wal.reset()?;
        while let Some(frozen) = inner.immutables.pop_front() {
            let _ = shared.vfs.remove_file(&frozen.wal_path);
        }
        let old = std::mem::take(&mut inner.segments);
        for seg in &old {
            shared
                .vfs
                .remove_file(seg.path())
                .map_err(|e| StoreError::io("remove segment on clear", e))?;
        }
        drop(inner);
        shared.space.notify_all();
        Ok(())
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// A snapshot of all counters and gauges.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.shared.inner.lock().expect("store poisoned");
        let c = &self.shared.counters;
        StoreStats {
            memtable_hits: c.memtable_hits.load(Ordering::Relaxed),
            segment_hits: c.segment_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            flushes: c.flushes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            segments: inner.segments.len() as u64,
            segment_bytes: inner.segments.iter().map(|s| s.file_len()).sum(),
            memtable_entries: inner.memtable.len() as u64,
            memtable_bytes: inner.memtable.approx_bytes() as u64,
            recovered_ops: self.recovered_ops,
            recovered_torn_tail: self.recovered_torn_tail,
            flush_queue_depth: inner.immutables.len() as u64,
            flush_queue_peak: c.flush_queue_peak.load(Ordering::Relaxed),
            flush_failures: c.flush_failures.load(Ordering::Relaxed),
            bloom_negatives: c.bloom_negatives.load(Ordering::Relaxed),
            bloom_false_positives: c.bloom_false_positives.load(Ordering::Relaxed),
            block_cache_hits: c.block_cache_hits.load(Ordering::Relaxed),
            block_cache_misses: c.block_cache_misses.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("store poisoned");
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("memo-store-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn survives_reopen_through_wal_and_segments() {
        let dir = tmp_dir("reopen");
        {
            let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
            for i in 0..40u32 {
                store.put(format!("k{i:03}").as_bytes(), &[i as u8; 40]).unwrap();
            }
            store.delete(b"k005").unwrap();
            // No explicit flush: some state is in segments (auto-freeze
            // at 256 bytes), the rest only in the WAL.
        }
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"k003").unwrap(), Some(vec![3u8; 40]));
        assert_eq!(store.get(b"k039").unwrap(), Some(vec![39u8; 40]));
        assert_eq!(store.get(b"k005").unwrap(), None, "tombstone survives reopen");
        assert_eq!(store.get(b"absent").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_version_wins_across_tiers() {
        let dir = tmp_dir("versions");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"k", b"old").unwrap();
        store.flush().unwrap(); // "old" now lives in a segment
        store.put(b"k", b"new").unwrap(); // memtable shadows it
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        store.flush().unwrap(); // both versions in segments, newest first
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_superseded_keys_and_tombstones() {
        let dir = tmp_dir("compact");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        for round in 0..3 {
            for i in 0..10u32 {
                store.put(format!("k{i}").as_bytes(), &[round; 64]).unwrap();
            }
            store.flush().unwrap();
        }
        store.delete(b"k9").unwrap();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.segments, 1, "full compaction leaves one segment");
        for i in 0..9u32 {
            assert_eq!(store.get(format!("k{i}").as_bytes()).unwrap(), Some(vec![2u8; 64]));
        }
        assert_eq!(store.get(b"k9").unwrap(), None, "tombstone dropped, key gone");
        // Reopen sees the compacted state.
        drop(store);
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"k0").unwrap(), Some(vec![2u8; 64]));
        assert_eq!(store.get(b"k9").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_tiers_and_bytes() {
        let dir = tmp_dir("stats");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"mem", b"v").unwrap();
        assert_eq!(store.get(b"mem").unwrap(), Some(b"v".to_vec()));
        store.flush().unwrap();
        assert_eq!(store.get(b"mem").unwrap(), Some(b"v".to_vec()));
        assert_eq!(store.get(b"gone").unwrap(), None);
        let stats = store.stats();
        assert_eq!(stats.memtable_hits, 1);
        assert_eq!(stats.segment_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.flushes, 1);
        assert!(stats.bytes_written > 0);
        assert!(stats.segment_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_wipes_everything() {
        let dir = tmp_dir("clear");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"a", b"1").unwrap();
        store.flush().unwrap();
        store.put(b"b", b"2").unwrap();
        store.clear().unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        assert_eq!(store.get(b"b").unwrap(), None);
        drop(store);
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_put_stays_readable_through_async_flushes() {
        let dir = tmp_dir("async-read");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        for i in 0..200u32 {
            let key = format!("k{i:04}");
            store.put(key.as_bytes(), &[i as u8; 48]).unwrap();
            // An acked write must be visible no matter which tier —
            // active, frozen, or mid-flush — currently holds it.
            assert_eq!(store.get(key.as_bytes()).unwrap(), Some(vec![i as u8; 48]));
        }
        for i in 0..200u32 {
            let key = format!("k{i:04}");
            assert_eq!(store.get(key.as_bytes()).unwrap(), Some(vec![i as u8; 48]));
        }
        assert!(store.stats().flushes > 0, "watermark crossings flushed in the background");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_caps_the_flush_queue() {
        let dir = tmp_dir("backpressure");
        let config = StoreConfig { max_immutables: 2, ..StoreConfig::small_for_tests() };
        let store = Store::open(&dir, config).unwrap();
        for i in 0..300u32 {
            store.put(format!("k{i:04}").as_bytes(), &[7u8; 64]).unwrap();
        }
        let stats = store.stats();
        assert!(stats.flush_queue_peak >= 1, "freezes went through the queue: {stats:?}");
        assert!(stats.flush_queue_peak <= 2, "bounded queue held its cap: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_drains_pending_flushes() {
        let dir = tmp_dir("drain");
        {
            let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
            for i in 0..100u32 {
                store.put(format!("k{i:04}").as_bytes(), &[i as u8; 64]).unwrap();
            }
        } // drop: shutdown drains every queued freeze
        let leftover: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("wal-"))
            .collect();
        assert!(leftover.is_empty(), "drained queue leaves no frozen logs: {leftover:?}");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        for i in 0..100u32 {
            assert_eq!(
                store.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(vec![i as u8; 64])
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_frozen_wals_into_segments() {
        let dir = tmp_dir("frozen-wal");
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate a crash after a freeze but before its flush landed:
        // one frozen log, one active log, no segments.
        let frozen =
            wal::encode_record(&WalOp::Put { key: b"frozen".to_vec(), value: b"f".to_vec() });
        std::fs::write(dir.join("wal-00000000.log"), &frozen).unwrap();
        let active =
            wal::encode_record(&WalOp::Put { key: b"active".to_vec(), value: b"a".to_vec() });
        std::fs::write(dir.join("wal.log"), &active).unwrap();

        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"frozen").unwrap(), Some(b"f".to_vec()));
        assert_eq!(store.get(b"active").unwrap(), Some(b"a".to_vec()));
        assert_eq!(store.stats().recovered_ops, 2);
        assert!(
            dir.join("seg-00000000.seg").exists(),
            "the frozen log became the segment it was headed for"
        );
        assert!(!dir.join("wal-00000000.log").exists(), "consumed frozen log is gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bloom_screens_absent_keys_from_segment_probes() {
        let dir = tmp_dir("bloom-neg");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        for i in 0..32u32 {
            store.put(format!("present-{i:04}").as_bytes(), &[1u8; 32]).unwrap();
        }
        store.flush().unwrap();
        for i in 0..64u32 {
            assert_eq!(store.get(format!("absent-{i:04}").as_bytes()).unwrap(), None);
        }
        let stats = store.stats();
        assert_eq!(stats.misses, 64);
        assert!(stats.bloom_negatives > 0, "absent keys were screened: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_reads_see_acked_writes_during_flushes() {
        let dir = tmp_dir("concurrent");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..150u32 {
                    store.put(format!("c{i:04}").as_bytes(), &[i as u8; 40]).unwrap();
                }
            });
            for _ in 0..4 {
                s.spawn(|| {
                    for i in (0..150u32).rev() {
                        // Any key may or may not be written yet; what is
                        // forbidden is an error or a wrong value.
                        if let Some(v) = store.get(format!("c{i:04}").as_bytes()).unwrap() {
                            assert_eq!(v, vec![i as u8; 40]);
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        for i in 0..150u32 {
            assert_eq!(store.get(format!("c{i:04}").as_bytes()).unwrap(), Some(vec![i as u8; 40]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_observer_hears_background_outcomes() {
        let dir = tmp_dir("observer");
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        let oks = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&oks);
        store.set_flush_observer(Box::new(move |ok| {
            if ok {
                sink.fetch_add(1, Ordering::Relaxed);
            }
        }));
        store.put(b"k", b"v").unwrap();
        store.flush().unwrap();
        assert!(oks.load(Ordering::Relaxed) >= 1, "observer saw the background flush");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

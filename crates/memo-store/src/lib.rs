//! # memo-store
//!
//! A log-structured, crash-safe key-value store — the persistent tier
//! under the reproduction's in-memory memo caches.
//!
//! The paper's argument is that recomputation is waste: a memo table
//! turns a multi-cycle multiply into a one-cycle lookup. The in-memory
//! caches (`ShardedLru`, the per-process trace caches) apply that idea
//! within one process; this crate applies it *across* processes, so a
//! server restart or a fresh experiment run serves previously computed
//! artifacts from disk instead of replaying kernels.
//!
//! The shape is the classic LSM triad, deliberately mirroring the
//! paper's hit/miss/insert protocol one level up:
//!
//! * [`wal`] — a checksummed append-only write-ahead log. Every write is
//!   durable before it is acknowledged; recovery replays the committed
//!   prefix and detects torn or corrupt tails by length framing + CRC-32.
//! * [`memtable`] — the mutable in-memory tier (a sorted map with byte
//!   accounting), populated by writes and by WAL recovery.
//! * [`segment`] — immutable sorted segment files flushed from the
//!   memtable, each carrying a sparse in-memory index and whole-region
//!   checksums. Lookups consult the memtable first, then segments newest
//!   to oldest (the same "probe the table before the unit" protocol).
//! * compaction (explicit [`Store::compact`] or automatic once the
//!   segment count passes a threshold) merges all segments into one,
//!   reclaiming superseded keys and dropping tombstones.
//! * [`vfs`] — the virtual filesystem every byte of store I/O goes
//!   through: [`RealVfs`] in production, [`FaultVfs`] (deterministic
//!   seeded fault injection — errors, ENOSPC, short writes, latency)
//!   in chaos tests.
//! * [`retry`] — bounded retry-with-backoff for transient I/O errors,
//!   used by callers that sit between a flaky disk and a deadline.
//! * [`codec`] — the typed payload layer for the two blob families the
//!   reproduction persists: rendered `(experiment, config)` result blobs
//!   and RLE operand-trace archives, both behind a versioned envelope so
//!   a format bump invalidates cleanly instead of misdecoding.
//!
//! Everything is `std`-only. The store assumes a single writing process
//! per directory (the serving deployment shape); concurrent readers in
//! the same process are fine — [`Store`] is `Sync`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod memtable;
pub mod retry;
pub mod segment;
pub mod store;
pub mod vfs;
pub mod wal;

pub use codec::{CodecError, ResultBlob};
pub use retry::RetryPolicy;
pub use store::{Store, StoreConfig, StoreStats};
pub use vfs::{FaultConfig, FaultKind, FaultOp, FaultStats, FaultVfs, RealVfs, ScheduledFault, Vfs};

use std::fmt;
use std::io;
use std::path::PathBuf;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// guarding WAL records and segment regions. Table-driven, no deps.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Everything that can go wrong opening or operating a [`Store`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The OS error.
        source: io::Error,
    },
    /// A segment file failed validation (bad magic, version, or checksum).
    /// Segments are written to a temp file and renamed, so this indicates
    /// bit rot or external tampering — never a crash mid-write.
    CorruptSegment {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// The directory carries a store format marker from an incompatible
    /// version of this crate.
    FormatMismatch {
        /// The marker found on disk.
        found: String,
        /// The marker this build writes.
        expected: String,
    },
}

impl StoreError {
    /// An [`StoreError::Io`] with its context in one call — used
    /// throughout this crate and by layers wrapping store operations.
    #[must_use]
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io { context: context.into(), source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::CorruptSegment { path, detail } => {
                write!(f, "corrupt segment {}: {detail}", path.display())
            }
            StoreError::FormatMismatch { found, expected } => {
                write!(f, "store format {found:?} is not this build's {expected:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = StoreError::FormatMismatch { found: "v0".into(), expected: "v1".into() };
        assert!(e.to_string().contains("v0") && e.to_string().contains("v1"));
        let e = StoreError::CorruptSegment { path: "/x/seg".into(), detail: "bad crc".into() };
        assert!(e.to_string().contains("bad crc"));
    }
}

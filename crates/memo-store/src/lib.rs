//! # memo-store
//!
//! A log-structured, crash-safe key-value store — the persistent tier
//! under the reproduction's in-memory memo caches.
//!
//! The paper's argument is that recomputation is waste: a memo table
//! turns a multi-cycle multiply into a one-cycle lookup. The in-memory
//! caches (`ShardedLru`, the per-process trace caches) apply that idea
//! within one process; this crate applies it *across* processes, so a
//! server restart or a fresh experiment run serves previously computed
//! artifacts from disk instead of replaying kernels.
//!
//! The shape is the classic LSM triad, deliberately mirroring the
//! paper's hit/miss/insert protocol one level up:
//!
//! * [`wal`] — a checksummed append-only write-ahead log. Every write is
//!   durable before it is acknowledged; recovery replays the committed
//!   prefix and detects torn or corrupt tails by length framing + CRC-32.
//! * [`memtable`] — the mutable in-memory tier (a sorted map with byte
//!   accounting), populated by writes and by WAL recovery.
//! * [`segment`] — immutable sorted segment files flushed from the
//!   memtable, each carrying a sparse in-memory index, whole-region
//!   checksums, and a persisted [`bloom`] filter so lookups skip files
//!   that definitely lack the key. Lookups consult the active memtable
//!   first, then frozen (flushing) memtables, then segments newest to
//!   oldest (the same "probe the table before the unit" protocol).
//! * flush and compaction run on a dedicated background thread: a full
//!   memtable is frozen and handed over a bounded queue (backpressure
//!   when too many freezes are pending), so puts never wait for segment
//!   I/O; [`Store::flush`]/[`Store::compact`] remain synchronous
//!   barriers, and dropping the store drains the queue.
//! * compaction (explicit [`Store::compact`] or automatic once the
//!   segment count passes a threshold) merges all segments into one,
//!   reclaiming superseded keys and dropping tombstones.
//! * [`block_cache`] — the seam through which callers plug a checksummed
//!   in-memory cache of segment spans under the read path.
//! * [`vfs`] — the virtual filesystem every byte of store I/O goes
//!   through: [`RealVfs`] in production, [`FaultVfs`] (deterministic
//!   seeded fault injection — errors, ENOSPC, short writes, latency)
//!   in chaos tests.
//! * [`retry`] — bounded retry-with-backoff for transient I/O errors,
//!   used by callers that sit between a flaky disk and a deadline.
//! * [`codec`] — the typed payload layer for the two blob families the
//!   reproduction persists: rendered `(experiment, config)` result blobs
//!   and RLE operand-trace archives, both behind a versioned envelope so
//!   a format bump invalidates cleanly instead of misdecoding.
//!
//! Everything is `std`-only. The store assumes a single writing process
//! per directory (the serving deployment shape); concurrent readers in
//! the same process are fine — [`Store`] is `Sync`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block_cache;
pub mod bloom;
pub mod codec;
pub mod memtable;
pub mod retry;
pub mod segment;
pub mod store;
pub mod vfs;
pub mod wal;

pub use block_cache::{BlockCache, CachedBlock};
pub use bloom::Bloom;
pub use codec::{CodecError, ResultBlob};
pub use retry::RetryPolicy;
pub use store::{Store, StoreConfig, StoreStats};
pub use vfs::{FaultConfig, FaultKind, FaultOp, FaultStats, FaultVfs, RealVfs, ScheduledFault, Vfs};

use std::fmt;
use std::io;
use std::path::PathBuf;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// guarding WAL records and segment regions. Slicing-by-8: eight lookup
/// tables consume the input a u64 at a time, which matters because this
/// runs on every WAL append, every segment span read, and every block
/// cache fill (hits trust the stored CRC until a parse fails). No deps.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        // tables[k][b] = the CRC of byte b followed by k zero bytes, so
        // eight table hits fold eight input bytes at once.
        #[allow(clippy::needless_range_loop)]
        for i in 0..256 {
            let mut crc = tables[0][i];
            for k in 1..8 {
                crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
                tables[k][i] = crc;
            }
        }
        tables
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Everything that can go wrong opening or operating a [`Store`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The OS error.
        source: io::Error,
    },
    /// A segment file failed validation (bad magic, version, or checksum).
    /// Segments are written to a temp file and renamed, so this indicates
    /// bit rot or external tampering — never a crash mid-write.
    CorruptSegment {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// The directory carries a store format marker from an incompatible
    /// version of this crate.
    FormatMismatch {
        /// The marker found on disk.
        found: String,
        /// The marker this build writes.
        expected: String,
    },
}

impl StoreError {
    /// An [`StoreError::Io`] with its context in one call — used
    /// throughout this crate and by layers wrapping store operations.
    #[must_use]
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io { context: context.into(), source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::CorruptSegment { path, detail } => {
                write!(f, "corrupt segment {}: {detail}", path.display())
            }
            StoreError::FormatMismatch { found, expected } => {
                write!(f, "store format {found:?} is not this build's {expected:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_sliced_path_matches_the_bytewise_definition() {
        // Lengths straddling the 8-byte fold boundary, bytes that
        // exercise every table row over enough input.
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        let bytewise = |bytes: &[u8]| -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                }
            }
            !crc
        };
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 100, 4096] {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = StoreError::FormatMismatch { found: "v0".into(), expected: "v1".into() };
        assert!(e.to_string().contains("v0") && e.to_string().contains("v1"));
        let e = StoreError::CorruptSegment { path: "/x/seg".into(), detail: "bad crc".into() };
        assert!(e.to_string().contains("bad crc"));
    }
}

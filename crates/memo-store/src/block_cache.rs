//! The block-cache seam between segment files and their callers.
//!
//! A "block" is one sparse-index span of a segment — the unit
//! [`crate::segment::Segment::get_with_cache`] reads from disk. The
//! store itself ships no cache policy (this crate is dependency-free and
//! policy-light); memo-experiments plugs its `ShardedLru` in through
//! this trait, so hot disk spans are served from memory without the
//! store knowing how eviction works.
//!
//! Entries carry their own CRC32, computed over the block bytes at
//! insert time. Hits parse the cached span directly — paying a checksum
//! pass on every hit would hand back much of the win the cache exists
//! for — and the stored CRC is consulted only when parsing fails, to
//! tell in-memory rot (downgrade to a miss, refill from disk) from
//! corruption that was already on disk (surface it). The disk copy was
//! checksummed at segment open; this extends the same distrust to RAM
//! at the moment it matters.

use std::sync::Arc;

/// One cached span: the CRC32 recorded at insert time and the bytes.
pub type CachedBlock = Arc<(u32, Vec<u8>)>;

/// A shared, checksummed cache of segment spans, keyed by
/// `(segment id, span start offset)`.
///
/// Implementations must be cheap to call on the read path and safe to
/// call from many threads at once; `put` is advisory (an implementation
/// may drop the entry immediately).
pub trait BlockCache: Send + Sync + std::fmt::Debug {
    /// Fetch the cached block at `(segment_id, offset)`: the stored CRC32
    /// and the span bytes. `None` on a miss.
    fn get(&self, segment_id: u64, offset: u64) -> Option<CachedBlock>;

    /// Insert the span read from disk, with `checksum = crc32(block)`.
    fn put(&self, segment_id: u64, offset: u64, checksum: u32, block: Vec<u8>);
}

//! Bounded retry with exponential backoff for transient store errors.
//!
//! Only [`StoreError::Io`] is retried — a flaky disk often answers on
//! the second try, and the fault-injection suite proves the loop
//! converges. Corruption and format errors are deterministic: retrying
//! them would re-read the same damage, so they surface immediately.

use std::time::Duration;

use crate::StoreError;

/// Backoff doubles per retry but never exceeds this, so a tight
/// policy cannot stall a request for longer than its deadline budget.
const MAX_BACKOFF: Duration = Duration::from_millis(250);

/// A bounded retry policy: at most `attempts` tries total, sleeping
/// `base_backoff * 2^n` between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries (1 = no retries).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each subsequent retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, base_backoff: Duration::from_millis(5) }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, base_backoff: Duration::ZERO }
    }

    /// Run `op` under this policy. Returns the final outcome plus how
    /// many retries were spent (0 when the first try settled it), so
    /// callers can feed a retry counter.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, StoreError>,
    ) -> (Result<T, StoreError>, u32) {
        let attempts = self.attempts.max(1);
        let mut retries = 0u32;
        let mut backoff = self.base_backoff;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if retries + 1 < attempts && e.is_transient() => {
                    retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff.min(MAX_BACKOFF));
                        backoff = backoff.saturating_mul(2);
                    }
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

impl StoreError {
    /// Is a retry worth anything? Only I/O errors are — corruption and
    /// format mismatches are deterministic.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_err() -> StoreError {
        StoreError::io("test", std::io::Error::other("flaky"))
    }

    #[test]
    fn succeeds_without_retries_on_a_healthy_op() {
        let (result, retries) = RetryPolicy::default().run(|| Ok::<_, StoreError>(7));
        assert_eq!(result.unwrap(), 7);
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_up_to_the_budget() {
        let mut calls = 0;
        let policy = RetryPolicy { attempts: 3, base_backoff: Duration::ZERO };
        let (result, retries) = policy.run(|| {
            calls += 1;
            if calls < 3 { Err(io_err()) } else { Ok(calls) }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, 2);

        let mut calls = 0;
        let (result, retries) = policy.run(|| -> Result<(), _> {
            calls += 1;
            Err(io_err())
        });
        assert!(result.is_err());
        assert_eq!(calls, 3, "the budget bounds the tries");
        assert_eq!(retries, 2);
    }

    #[test]
    fn deterministic_errors_are_not_retried() {
        let mut calls = 0;
        let (result, retries) = RetryPolicy::default().run(|| -> Result<(), _> {
            calls += 1;
            Err(StoreError::CorruptSegment { path: "/x".into(), detail: "bad crc".into() })
        });
        assert!(result.is_err());
        assert_eq!(calls, 1, "corruption is deterministic; retrying re-reads the damage");
        assert_eq!(retries, 0);
    }

    #[test]
    fn none_policy_is_a_single_try() {
        let mut calls = 0;
        let (result, retries) = RetryPolicy::none().run(|| -> Result<(), _> {
            calls += 1;
            Err(io_err())
        });
        assert!(result.is_err());
        assert_eq!((calls, retries), (1, 0));
    }
}

//! Crash-recovery property tests: kill the write at *every* byte offset.
//!
//! The external-dependency policy rules out proptest, so these are
//! exhaustive instead of sampled — for a synthetic multi-record WAL we
//! try every truncation point and every single-byte corruption, and
//! assert the invariant the WAL promises: reopen recovers exactly the
//! longest committed record prefix, never a partial or damaged record.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use memo_store::wal::{self, encode_record, WalOp};
use memo_store::{FaultConfig, FaultKind, FaultOp, FaultVfs, ScheduledFault, Store, StoreConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("memo-crash-{tag}-{}-{n}", std::process::id()))
}

/// A synthetic log: varied ops, varied sizes, including an empty value
/// and a delete, so record boundaries land at irregular offsets.
fn synthetic_ops() -> Vec<WalOp> {
    vec![
        WalOp::Put { key: b"mm/rgb-blend".to_vec(), value: vec![0x11; 57] },
        WalOp::Delete { key: b"stale/result".to_vec() },
        WalOp::Put { key: b"k".to_vec(), value: Vec::new() },
        WalOp::Put { key: b"sci/nbody".to_vec(), value: (0..=255u8).collect() },
        WalOp::Put { key: b"meta/format".to_vec(), value: b"v1".to_vec() },
    ]
}

/// Record boundaries: offsets[i] = start of record i; last = total len.
fn boundaries(ops: &[WalOp]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut bounds = vec![0usize];
    for op in ops {
        log.extend_from_slice(&encode_record(op));
        bounds.push(log.len());
    }
    (log, bounds)
}

/// How many whole records fit in a prefix of `len` bytes.
fn committed_prefix(bounds: &[usize], len: usize) -> usize {
    bounds.iter().filter(|&&b| b != 0 && b <= len).count()
}

#[test]
fn truncation_at_every_byte_recovers_exactly_the_committed_prefix() {
    let ops = synthetic_ops();
    let (log, bounds) = boundaries(&ops);
    for cut in 0..=log.len() {
        let rec = wal::scan(&log[..cut]);
        let expect = committed_prefix(&bounds, cut);
        assert_eq!(
            rec.ops,
            ops[..expect],
            "truncation at byte {cut}: expected the first {expect} records"
        );
        assert_eq!(rec.committed_bytes as usize, bounds[expect], "truncation at byte {cut}");
        // The tail is damaged exactly when the cut is not a record boundary.
        assert_eq!(rec.tail_damaged, cut != bounds[expect], "truncation at byte {cut}");
    }
}

#[test]
fn corrupting_any_single_byte_never_yields_a_damaged_record() {
    let ops = synthetic_ops();
    let (log, bounds) = boundaries(&ops);
    for at in 0..log.len() {
        let mut bad = log.clone();
        bad[at] ^= 0xFF;
        let rec = wal::scan(&bad);
        // The record containing the flipped byte must not survive; every
        // record before it must.
        let victim = bounds.iter().filter(|&&b| b != 0 && b <= at).count();
        assert!(
            rec.ops.len() <= victim,
            "corruption at byte {at}: recovered {} records, the damaged one is #{victim}",
            rec.ops.len()
        );
        assert_eq!(rec.ops, ops[..rec.ops.len()], "corruption at byte {at}: prefix must be clean");
        assert!(rec.tail_damaged, "corruption at byte {at} must be reported");
        // Whatever survives must end on a record boundary.
        assert_eq!(rec.committed_bytes as usize, bounds[rec.ops.len()]);
    }
}

#[test]
fn store_reopen_after_on_disk_truncation_serves_the_committed_prefix() {
    let ops = synthetic_ops();
    let (log, bounds) = boundaries(&ops);
    let dir = tmp_dir("truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    // A spread of cuts through the full file-level open path (every byte
    // is already covered by the pure-scan test above).
    let cuts: Vec<usize> =
        bounds.iter().copied().chain(bounds.iter().map(|b| b + 1)).filter(|&c| c <= log.len()).collect();
    for cut in cuts {
        std::fs::write(&wal_path, &log[..cut]).unwrap();
        let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
        let expect = committed_prefix(&bounds, cut);
        let stats = store.stats();
        assert_eq!(stats.recovered_ops as usize, expect, "cut at {cut}");
        assert_eq!(stats.recovered_torn_tail, cut != bounds[expect], "cut at {cut}");
        // Spot-check visibility of the last committed op.
        if expect >= 1 {
            assert_eq!(store.get(b"mm/rgb-blend").unwrap(), Some(vec![0x11; 57]));
        }
        if expect >= 4 {
            assert_eq!(store.get(b"sci/nbody").unwrap(), Some((0..=255u8).collect::<Vec<_>>()));
        }
        drop(store);
        // Reopen truncated the damaged tail: the file now scans clean.
        let on_disk = std::fs::read(&wal_path).unwrap();
        assert!(!wal::scan(&on_disk).tail_damaged, "cut at {cut} left damage on disk");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_reopen_after_corruption_rejects_via_checksum_and_truncates() {
    let ops = synthetic_ops();
    let (log, bounds) = boundaries(&ops);
    let dir = tmp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    // Corrupt one byte inside each record (header and payload) in turn.
    for rec_idx in 0..ops.len() {
        for offset in [0usize, 4, 8] {
            let at = bounds[rec_idx] + offset;
            let mut bad = log.clone();
            bad[at] ^= 0x01;
            std::fs::write(&wal_path, &bad).unwrap();
            let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
            let stats = store.stats();
            assert!(
                (stats.recovered_ops as usize) <= rec_idx,
                "byte {at}: record {rec_idx} carried the damage and must not be recovered"
            );
            assert!(stats.recovered_torn_tail, "byte {at}: damage must be reported");
            drop(store);
            let on_disk = std::fs::read(&wal_path).unwrap();
            assert_eq!(on_disk.len(), bounds[stats.recovered_ops as usize]);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The every-byte truncation suite, re-run with every store I/O routed
/// through `FaultVfs` (quiet — a counting passthrough). The recovery
/// invariant must be bit-identical to the direct-filesystem run, and the
/// injector must actually have seen the traffic.
#[test]
fn every_byte_truncation_recovers_identically_through_fault_vfs() {
    let ops = synthetic_ops();
    let (log, bounds) = boundaries(&ops);
    let dir = tmp_dir("vfs-truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    let vfs = Arc::new(FaultVfs::new(FaultConfig::quiet(1998)));
    for cut in 0..=log.len() {
        std::fs::write(&wal_path, &log[..cut]).unwrap();
        let store =
            Store::open_with_vfs(&dir, StoreConfig::small_for_tests(), vfs.clone()).unwrap();
        let expect = committed_prefix(&bounds, cut);
        let stats = store.stats();
        assert_eq!(stats.recovered_ops as usize, expect, "cut at {cut}");
        assert_eq!(stats.recovered_torn_tail, cut != bounds[expect], "cut at {cut}");
        drop(store);
        let on_disk = std::fs::read(&wal_path).unwrap();
        assert!(!wal::scan(&on_disk).tail_damaged, "cut at {cut} left damage on disk");
    }
    let stats = vfs.stats();
    assert!(stats.ops[0] > 0, "the injector must have carried the reads");
    assert_eq!(stats.injected, [0; 4], "a quiet config must inject nothing");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected short write at every possible append: the k-th operation
/// tears mid-record, the put fails, and a crash+reopen recovers exactly
/// the k acknowledged operations — never the torn one.
#[test]
fn short_write_at_every_append_recovers_the_acknowledged_prefix() {
    let ops = synthetic_ops();
    // Large memtable + no fsync: the only Write-class ops are WAL appends.
    let config = StoreConfig {
        memtable_max_bytes: usize::MAX,
        fsync: false,
        compact_at_segments: 100,
        ..StoreConfig::default()
    };
    for k in 0..ops.len() {
        let dir = tmp_dir("short-write");
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = Arc::new(FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault {
                op: FaultOp::Write,
                nth: k as u64 + 1,
                kind: FaultKind::ShortWrite,
            }],
            ..FaultConfig::quiet(k as u64)
        }));
        let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let outcome = match op {
                WalOp::Put { key, value } => store.put(key, value),
                WalOp::Delete { key } => store.delete(key),
            };
            if i == k {
                assert!(outcome.is_err(), "append {k} tears and must fail");
                break;
            }
            outcome.unwrap();
        }
        drop(store); // crash

        let store = Store::open(&dir, config.clone()).unwrap();
        assert_eq!(
            store.stats().recovered_ops as usize,
            k,
            "short write at append {k}: only acknowledged ops recover"
        );
        // The torn op's key reflects only operations before it.
        let mut expect: Option<Vec<u8>> = None;
        for op in &ops[..k] {
            if op.key() == ops[k].key() {
                expect = match op {
                    WalOp::Put { value, .. } => Some(value.clone()),
                    WalOp::Delete { .. } => None,
                };
            }
        }
        assert_eq!(store.get(ops[k].key()).unwrap(), expect, "torn op {k} must not be visible");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Fsync-failure-then-crash ordering: a put whose fsync fails is
/// unacknowledged; after a flush and a crash it must not resurrect —
/// the flush carries only acknowledged state and the WAL reset discards
/// the failed record's bytes.
#[test]
fn fsync_failure_then_crash_never_resurrects_the_unacknowledged_put() {
    let keys: Vec<String> = (0..5).map(|i| format!("key-{i}")).collect();
    let config = StoreConfig {
        memtable_max_bytes: usize::MAX,
        fsync: true,
        compact_at_segments: 100,
        ..StoreConfig::default()
    };
    for k in 0..keys.len() {
        let dir = tmp_dir("fsync-crash");
        std::fs::create_dir_all(&dir).unwrap();
        // Each put is one Write then one Fsync; a clean baseline put goes
        // first (so the flush below always has state to carry), then the
        // (k+2)-th fsync — put k of the loop — fails.
        let vfs = Arc::new(FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault {
                op: FaultOp::Fsync,
                nth: k as u64 + 2,
                kind: FaultKind::Error,
            }],
            ..FaultConfig::quiet(7)
        }));
        let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
        store.put(b"base", b"acknowledged").unwrap();
        for (i, key) in keys.iter().enumerate() {
            let outcome = store.put(key.as_bytes(), format!("val-{i}").as_bytes());
            if i == k {
                assert!(outcome.is_err(), "put {k}: the failed fsync must surface");
                break;
            }
            outcome.unwrap();
        }
        // The store keeps serving: flush the acknowledged state to a
        // segment (later fsyncs are clean), then crash.
        store.flush().unwrap();
        drop(store);

        let store = Store::open(&dir, config.clone()).unwrap();
        let stats = store.stats();
        assert_eq!(stats.recovered_ops, 0, "put {k}: the flush reset the WAL");
        assert_eq!(store.get(b"base").unwrap(), Some(b"acknowledged".to_vec()));
        for (i, key) in keys.iter().enumerate() {
            let expect = (i < k).then(|| format!("val-{i}").into_bytes());
            assert_eq!(
                store.get(key.as_bytes()).unwrap(),
                expect,
                "put {k}: key {i} — unacknowledged writes must stay dead"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An injected `ENOSPC` or short write during the *background* flush
/// must leave the store readable (the frozen tier still serves),
/// retryable (the flusher's next attempt succeeds), and eventually
/// consistent after a crash — no lost committed writes, no visible
/// half-segment.
#[test]
fn background_flush_fault_leaves_the_store_readable_and_retryable() {
    for kind in [FaultKind::Enospc, FaultKind::ShortWrite] {
        let dir = tmp_dir("bg-flush-fault");
        std::fs::create_dir_all(&dir).unwrap();
        let n = 20u32;
        // fsync off + huge watermark: the only Write-class ops before the
        // explicit flush are the n WAL appends, so the (n+1)-th write is
        // the background segment append.
        let config = StoreConfig {
            memtable_max_bytes: usize::MAX,
            fsync: false,
            compact_at_segments: 100,
            ..StoreConfig::default()
        };
        let vfs = Arc::new(FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault { op: FaultOp::Write, nth: u64::from(n) + 1, kind }],
            ..FaultConfig::quiet(42)
        }));
        let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
        for i in 0..n {
            store.put(format!("k{i:02}").as_bytes(), &[i as u8; 32]).unwrap();
        }
        // The barrier surfaces the first background failure...
        assert!(store.flush().is_err(), "{kind:?}: the faulted flush must surface");
        // ...but everything committed stays readable from the frozen tier...
        for i in 0..n {
            assert_eq!(
                store.get(format!("k{i:02}").as_bytes()).unwrap(),
                Some(vec![i as u8; 32]),
                "{kind:?}: reads must not notice the failed flush"
            );
        }
        // ...and the flusher's retry (nothing else scheduled) drains it.
        store.flush().unwrap();
        let stats = store.stats();
        assert_eq!(stats.flush_queue_depth, 0, "{kind:?}: queue drained after retry");
        assert!(stats.flush_failures >= 1, "{kind:?}: the failure was counted");
        drop(store);
        let store = Store::open(&dir, config).unwrap();
        for i in 0..n {
            assert_eq!(
                store.get(format!("k{i:02}").as_bytes()).unwrap(),
                Some(vec![i as u8; 32]),
                "{kind:?}: consistent after reopen"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// When the queue cannot drain at all (every segment write fails) and
/// the process dies, the frozen WAL is the durability anchor: the next
/// open turns it into the segment the flusher could not write.
#[test]
fn crash_with_unflushable_queue_recovers_from_the_frozen_wal() {
    let dir = tmp_dir("bg-flush-crash");
    std::fs::create_dir_all(&dir).unwrap();
    let n = 10u32;
    let config = StoreConfig {
        memtable_max_bytes: usize::MAX,
        fsync: false,
        compact_at_segments: 100,
        ..StoreConfig::default()
    };
    // Fail every segment-append attempt, retries and the drop-time drain
    // included, so the frozen log must survive the crash.
    let scheduled: Vec<ScheduledFault> = (0..50)
        .map(|i| ScheduledFault {
            op: FaultOp::Write,
            nth: u64::from(n) + 1 + i,
            kind: FaultKind::Error,
        })
        .collect();
    let vfs =
        Arc::new(FaultVfs::new(FaultConfig { scheduled, ..FaultConfig::quiet(7) }));
    let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
    for i in 0..n {
        store.put(format!("k{i:02}").as_bytes(), &[i as u8; 32]).unwrap();
    }
    assert!(store.flush().is_err(), "an undrainable queue must surface at the barrier");
    for i in 0..n {
        assert_eq!(
            store.get(format!("k{i:02}").as_bytes()).unwrap(),
            Some(vec![i as u8; 32]),
            "reads keep working while the flusher retries"
        );
    }
    drop(store); // crash: the drain attempt fails too
    assert!(
        dir.join("wal-00000000.log").exists(),
        "the frozen log must survive an unflushable crash"
    );
    let store = Store::open(&dir, config).unwrap();
    assert_eq!(store.stats().recovered_ops, u64::from(n), "every committed op recovers");
    assert!(dir.join("seg-00000000.seg").exists(), "recovery finished the flush");
    for i in 0..n {
        assert_eq!(store.get(format!("k{i:02}").as_bytes()).unwrap(), Some(vec![i as u8; 32]));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The publish ordering satellite: the segment's rename lands but the
/// *directory* fsync fails, so the dir entry is not durable. The publish
/// must be withdrawn (no half-published segment) and the retry must
/// succeed.
#[test]
fn directory_fsync_failure_during_publish_withdraws_and_retries() {
    let dir = tmp_dir("dirsync");
    std::fs::create_dir_all(&dir).unwrap();
    let n = 8u32;
    let config = StoreConfig {
        memtable_max_bytes: usize::MAX,
        fsync: true,
        compact_at_segments: 100,
        ..StoreConfig::default()
    };
    // Fsync ordinals: 1..=n are WAL appends, n+1 is the segment file,
    // n+2 is the directory sync that makes the rename durable.
    let vfs = Arc::new(FaultVfs::new(FaultConfig {
        scheduled: vec![ScheduledFault {
            op: FaultOp::Fsync,
            nth: u64::from(n) + 2,
            kind: FaultKind::Error,
        }],
        ..FaultConfig::quiet(1998)
    }));
    let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
    for i in 0..n {
        store.put(format!("k{i:02}").as_bytes(), &[i as u8; 32]).unwrap();
    }
    assert!(store.flush().is_err(), "the dir-fsync failure must surface at the barrier");
    for i in 0..n {
        assert_eq!(store.get(format!("k{i:02}").as_bytes()).unwrap(), Some(vec![i as u8; 32]));
    }
    store.flush().unwrap(); // retry publishes cleanly
    drop(store);
    let store = Store::open(&dir, config).unwrap();
    assert_eq!(store.stats().recovered_ops, 0, "the retried publish superseded the frozen log");
    for i in 0..n {
        assert_eq!(store.get(format!("k{i:02}").as_bytes()).unwrap(), Some(vec![i as u8; 32]));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The concurrent-orderings sweep: with the flush thread racing the
/// writer, inject one Write-class fault at *every* ordinal in turn and
/// crash. Whichever operation it lands on — a WAL append, a background
/// segment append, a compaction merge — the invariant holds: every
/// acknowledged put is present after reopen.
#[test]
fn every_write_ordinal_fault_under_concurrent_flushes_keeps_acked_puts() {
    for nth in 1..=40u64 {
        let dir = tmp_dir("ordinal-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let config = StoreConfig {
            memtable_max_bytes: 192,
            fsync: false,
            compact_at_segments: 3,
            max_immutables: 2,
            bloom_bits_per_key: 10,
        };
        let vfs = Arc::new(FaultVfs::new(FaultConfig {
            scheduled: vec![ScheduledFault {
                op: FaultOp::Write,
                nth,
                kind: FaultKind::ShortWrite,
            }],
            ..FaultConfig::quiet(nth)
        }));
        let store = Store::open_with_vfs(&dir, config.clone(), vfs).unwrap();
        let mut acked: Vec<u32> = Vec::new();
        for i in 0..30u32 {
            if store.put(format!("k{i:02}").as_bytes(), &[i as u8; 24]).is_ok() {
                acked.push(i);
            }
        }
        drop(store); // crash (drains what it can)
        let store = Store::open(&dir, config).unwrap();
        for i in acked {
            assert_eq!(
                store.get(format!("k{i:02}").as_bytes()).unwrap(),
                Some(vec![i as u8; 24]),
                "fault at write #{nth}: acked put k{i:02} must survive the crash"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn writes_after_recovery_extend_the_clean_prefix() {
    let ops = synthetic_ops();
    let (log, _) = boundaries(&ops);
    let dir = tmp_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();
    // Torn mid-final-record.
    std::fs::write(dir.join("wal.log"), &log[..log.len() - 3]).unwrap();
    let store = Store::open(&dir, StoreConfig { fsync: false, ..StoreConfig::default() }).unwrap();
    assert_eq!(store.stats().recovered_ops, 4);
    store.put(b"fresh", b"after-crash").unwrap();
    drop(store);
    let store = Store::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.get(b"fresh").unwrap(), Some(b"after-crash".to_vec()));
    assert_eq!(store.get(b"sci/nbody").unwrap(), Some((0..=255u8).collect::<Vec<_>>()));
    assert_eq!(store.get(b"meta/format").unwrap(), None, "the torn record must stay lost");
    let _ = std::fs::remove_dir_all(&dir);
}

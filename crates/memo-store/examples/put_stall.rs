//! Stress the async flush path the way a busy server does: several
//! writer threads, render-sized values, a small watermark, fsync on.
//! Prints per-second progress so a stall is visible immediately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use memo_store::{Store, StoreConfig};

fn main() {
    let dir = std::env::temp_dir().join("stall-test");
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig { memtable_max_bytes: 16384, ..StoreConfig::default() };
    let store = Arc::new(Store::open(&dir, config).expect("open"));
    let value = vec![7u8; 4096];
    let done = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let store = Arc::clone(&store);
        let value = value.clone();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while t0.elapsed() < Duration::from_secs(20) {
                store
                    .put(format!("results/table/{t}-{i}").as_bytes(), &value)
                    .expect("put");
                i += 1;
                done.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    let reporter = {
        let done = Arc::clone(&done);
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut last = 0;
            for s in 1..=25 {
                std::thread::sleep(Duration::from_secs(1));
                let now = done.load(Ordering::Relaxed);
                let st = store.stats();
                println!(
                    "t={s:2}s puts={now} (+{}) queue={} flushes={} compactions={} segments={}",
                    now - last,
                    st.flush_queue_depth,
                    st.flushes,
                    st.compactions,
                    st.segments
                );
                last = now;
            }
        })
    };
    for h in handles {
        h.join().expect("writer");
    }
    println!("writers joined at {:?}", t0.elapsed());
    let _ = reporter.join();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    println!("done");
}

//! Related-work baselines (§1.1) — the schemes the paper positions
//! MEMO-TABLEs against, implemented so experiments can compare them on
//! identical operand streams.
//!
//! * [`ReciprocalCache`] — Oberman & Flynn, *"Reducing Division Latency
//!   with Reciprocal Caches"*: cache `1/b` keyed by the **divisor only**;
//!   on a hit the division becomes a multiplication (`a × 1/b`), paying
//!   the multiplier's latency rather than a single cycle.
//! * [`ReuseBuffer`] — Sodani & Sohi, *"Dynamic Instruction Reuse"*: a
//!   table indexed by **instruction address**, hitting only when the same
//!   *static instruction* recurs with the same operands. The paper's
//!   §1.1 argument: a value-keyed MEMO-TABLE also catches reuse across
//!   different instructions — e.g. the copies produced by loop unrolling.

use std::collections::HashMap;

use crate::config::{Assoc, MemoConfig};
use crate::key::set_index;
use crate::op::{Op, OpKind, Value};
use crate::stats::MemoStats;
use crate::table::{MemoTable, Outcome, Probe};
use crate::Memoizer;

/// How a reciprocal-cache access resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReciprocalOutcome {
    /// Divisor found: the division completes as `a × 1/b` at multiplier
    /// latency. The value is what the *hardware* would produce — one
    /// rounding from the cached reciprocal, which may differ from `a / b`
    /// in the last bit (the scheme's documented accuracy trade-off).
    Hit(f64),
    /// Divisor not cached: full division, reciprocal inserted.
    Miss(f64),
}

impl ReciprocalOutcome {
    /// The numeric result, however it was produced.
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            ReciprocalOutcome::Hit(v) | ReciprocalOutcome::Miss(v) => v,
        }
    }

    /// `true` on a hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, ReciprocalOutcome::Hit(_))
    }
}

/// An Oberman–Flynn reciprocal cache: set-associative over divisors.
///
/// # Examples
///
/// ```
/// use memo_table::baselines::ReciprocalCache;
///
/// let mut cache = ReciprocalCache::new(32, 4);
/// assert!(!cache.divide(10.0, 3.0).is_hit());
/// // Any dividend reuses the cached reciprocal of 3.0:
/// assert!(cache.divide(99.0, 3.0).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct ReciprocalCache {
    // (divisor bits, reciprocal, last_use) per way.
    sets: usize,
    ways: usize,
    entries: Vec<Option<(u64, f64, u64)>>,
    clock: u64,
    stats: MemoStats,
}

impl ReciprocalCache {
    /// A cache with `entries` total entries in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two divisible into whole
    /// power-of-two sets.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        let cfg = MemoConfig::builder(entries)
            .assoc(Assoc::Ways(ways))
            .build()
            .expect("valid reciprocal-cache geometry");
        ReciprocalCache {
            sets: cfg.sets(),
            ways,
            entries: vec![None; entries],
            clock: 0,
            stats: MemoStats::new(),
        }
    }

    fn index(&self, divisor: f64) -> usize {
        // Reuse the paper's mantissa-MSB XOR scheme on a single operand.
        set_index(&Op::FpSqrt(divisor), self.sets, crate::HashScheme::PaperXor)
    }

    /// Perform `a / b` through the cache.
    pub fn divide(&mut self, a: f64, b: f64) -> ReciprocalOutcome {
        self.clock += 1;
        self.stats.ops_seen += 1;
        self.stats.table_lookups += 1;
        let bits = b.to_bits();
        let set = self.index(b);
        let base = set * self.ways;

        for (tag, recip, last) in self.entries[base..base + self.ways].iter_mut().flatten() {
            if *tag == bits {
                *last = self.clock;
                self.stats.table_hits += 1;
                return ReciprocalOutcome::Hit(a * *recip);
            }
        }

        // Miss: full division, insert the reciprocal.
        let victim = (0..self.ways)
            .min_by_key(|&w| self.entries[base + w].map_or(0, |(_, _, last)| last))
            .expect("ways >= 1");
        if self.entries[base + victim].is_some() {
            self.stats.evictions += 1;
        }
        self.entries[base + victim] = Some((bits, 1.0 / b, self.clock));
        self.stats.insertions += 1;
        ReciprocalOutcome::Miss(a / b)
    }

    /// Accumulated statistics (`table_hits` / `table_lookups` is the
    /// divisor hit ratio).
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Worst-case relative error a hit can introduce (one extra rounding).
    #[must_use]
    pub fn max_relative_error() -> f64 {
        // Two roundings (reciprocal, multiply) instead of one: 2 ulp.
        2.0 * f64::EPSILON
    }
}

/// A Sodani–Sohi style reuse buffer: entries are tagged by *instruction
/// address* and operand values; only the same static instruction can
/// reuse its own previous results.
///
/// Capacity-managed as fully associative LRU over `entries` slots (the
/// RB in the paper is also a small associative structure).
#[derive(Debug, Clone)]
pub struct ReuseBuffer {
    capacity: usize,
    // (pc, operand bits) -> (result bits, last_use)
    entries: HashMap<(u64, u128), (u64, u64)>,
    clock: u64,
    stats: MemoStats,
}

impl ReuseBuffer {
    /// A reuse buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reuse buffer needs at least one entry");
        ReuseBuffer { capacity, entries: HashMap::new(), clock: 0, stats: MemoStats::new() }
    }

    /// Execute `op` issued from instruction address `pc`.
    pub fn execute(&mut self, pc: u64, op: Op) -> Outcome {
        self.clock += 1;
        self.stats.ops_seen += 1;
        self.stats.table_lookups += 1;
        let (a, b) = op.operand_bits();
        let key = (pc, ((a as u128) << 64) | b as u128);

        if let Some((_, last)) = self.entries.get_mut(&key) {
            *last = self.clock;
            self.stats.table_hits += 1;
            return Outcome::Hit;
        }

        if self.entries.len() >= self.capacity {
            // Evict the LRU entry.
            if let Some((&victim, _)) =
                self.entries.iter().min_by_key(|(_, &(_, last))| last)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, (op.compute().to_bits(), self.clock));
        self.stats.insertions += 1;
        Outcome::Miss
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

/// Convenience: drive a value-keyed [`MemoTable`] with the same `(pc, op)`
/// stream a [`ReuseBuffer`] consumes (the PC is simply ignored), so the
/// two schemes can be compared call-for-call.
pub fn memo_execute(table: &mut MemoTable, _pc: u64, op: Op) -> Outcome {
    match table.probe(op) {
        Probe::Hit(_) => Outcome::Hit,
        Probe::Trivial(_) => Outcome::Trivial,
        Probe::Filtered => Outcome::Filtered,
        Probe::Miss => {
            table.update(op, op.compute());
            Outcome::Miss
        }
    }
}

/// The kinds a reuse buffer records in these experiments (multi-cycle
/// operations only, matching what the MEMO-TABLE sees).
pub const REUSE_KINDS: [OpKind; 4] =
    [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv, OpKind::FpSqrt];

/// Compute `a / b` both directly and via a reciprocal hit, returning the
/// ulp-level discrepancy — used by tests documenting the accuracy
/// trade-off.
#[must_use]
pub fn reciprocal_discrepancy(a: f64, b: f64) -> f64 {
    let direct = a / b;
    let via_recip = a * (1.0 / b);
    let diff = (Value::Fp(direct), Value::Fp(via_recip));
    match diff {
        (Value::Fp(x), Value::Fp(y)) => (x - y).abs(),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_cache_hits_on_divisor_reuse() {
        let mut cache = ReciprocalCache::new(32, 4);
        assert!(!cache.divide(10.0, 7.0).is_hit());
        // Different dividends, same divisor: all hits.
        for i in 0..20 {
            assert!(cache.divide(f64::from(i), 7.0).is_hit(), "dividend {i}");
        }
        assert_eq!(cache.stats().table_hits, 20);
    }

    #[test]
    fn reciprocal_hit_value_is_close_but_not_exact() {
        let mut cache = ReciprocalCache::new(32, 4);
        let _ = cache.divide(1.0, 3.0);
        let hit = cache.divide(10.0, 3.0);
        assert!(hit.is_hit());
        let direct = 10.0 / 3.0;
        let err = (hit.value() - direct).abs() / direct;
        assert!(err <= ReciprocalCache::max_relative_error(), "error {err}");
    }

    #[test]
    fn reciprocal_cache_evicts_lru_divisor() {
        let mut cache = ReciprocalCache::new(2, 2);
        let _ = cache.divide(1.0, 3.0);
        let _ = cache.divide(1.0, 5.0);
        let _ = cache.divide(1.0, 3.0); // refresh 3.0
        let _ = cache.divide(1.0, 7.0); // evicts 5.0
        assert!(cache.divide(2.0, 3.0).is_hit());
        assert!(!cache.divide(2.0, 5.0).is_hit());
    }

    #[test]
    fn reuse_buffer_is_pc_sensitive() {
        let mut rb = ReuseBuffer::new(64);
        let op = Op::FpDiv(9.0, 3.0);
        assert_eq!(rb.execute(0x100, op), Outcome::Miss);
        assert_eq!(rb.execute(0x100, op), Outcome::Hit, "same pc, same operands");
        // The same computation from a different instruction misses — this
        // is exactly where the MEMO-TABLE wins (§1.1, loop unrolling).
        assert_eq!(rb.execute(0x200, op), Outcome::Miss);
    }

    #[test]
    fn reuse_buffer_respects_capacity() {
        let mut rb = ReuseBuffer::new(4);
        for i in 0..10 {
            rb.execute(0x100 + i, Op::IntMul(i as i64, 3));
        }
        assert_eq!(rb.stats().insertions, 10);
        assert_eq!(rb.stats().evictions, 6);
    }

    #[test]
    fn memo_table_beats_reuse_buffer_under_unrolling() {
        // A loop body with one division, unrolled 8×: eight static PCs
        // issue the same operand pairs round-robin.
        let ops: Vec<(u64, Op)> = (0..400)
            .map(|i| {
                let pc = 0x1000 + (i % 8) * 4; // 8 unrolled copies
                let op = Op::FpDiv((i % 4 + 2) as f64, 3.0); // 4 distinct pairs
                (pc, op)
            })
            .collect();

        let mut rb = ReuseBuffer::new(32);
        let mut memo = MemoTable::new(MemoConfig::paper_default());
        let mut rb_hits = 0u64;
        let mut memo_hits = 0u64;
        for &(pc, op) in &ops {
            if rb.execute(pc, op) == Outcome::Hit {
                rb_hits += 1;
            }
            if memo_execute(&mut memo, pc, op) == Outcome::Hit {
                memo_hits += 1;
            }
        }
        assert!(
            memo_hits > rb_hits,
            "value-keyed {memo_hits} must beat pc-keyed {rb_hits} on unrolled code"
        );
        // The memo table misses only the 4 cold pairs.
        assert_eq!(memo_hits, 400 - 4);
    }

    #[test]
    fn discrepancy_is_at_most_ulps() {
        for (a, b) in [(10.0, 3.0), (1.0, 7.0), (355.0, 113.0), (2.5, 0.3)] {
            let d = reciprocal_discrepancy(a, b);
            assert!(d <= (a / b).abs() * 4.0 * f64::EPSILON, "{a}/{b}: {d}");
        }
    }
}

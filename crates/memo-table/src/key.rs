//! Operand → (set index, tag, stored value) encodings.
//!
//! The paper's indexing scheme (§3.1):
//!
//! * **integer** operands — XOR of the *n* least-significant bits of the two
//!   operands, where 2ⁿ is the number of sets;
//! * **floating-point** operands — XOR of the *n* most-significant bits of
//!   the two mantissas.
//!
//! Tags are either the full operand bit patterns ([`TagPolicy::FullValue`])
//! or only the mantissas ([`TagPolicy::MantissaOnly`], §2.1). In mantissa
//! mode the entry stores the result's mantissa plus a tiny exponent
//! adjustment, and the sign/exponent data path recomputes the rest — so a
//! pair of operands that differs from a cached pair only in sign or
//! exponent still hits.

use crate::config::{HashScheme, TagPolicy};
use crate::op::{Op, OpKind, Value};

/// Number of explicit fraction bits in an IEEE-754 double.
const FRAC_BITS: u32 = 52;
/// Mask of the fraction field.
const FRAC_MASK: u64 = (1u64 << FRAC_BITS) - 1;
/// Exponent bias.
const BIAS: i32 = 1023;

/// A tag ready for comparison against table entries.
///
/// `kind` is compared alongside the packed operand bits so that tables
/// shared between different operation types never alias entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Operation kind this key belongs to.
    pub kind: OpKind,
    /// Packed operand bits (full values or mantissas, per the tag policy).
    pub tag: u128,
}

/// Decompose a **normal** double into `(sign, unbiased exponent, fraction)`.
///
/// # Panics
///
/// Panics in debug builds if `x` is not normal; callers must check
/// [`f64::is_normal`] first.
#[must_use]
pub fn fp_parts(x: f64) -> (bool, i32, u64) {
    debug_assert!(x.is_normal(), "fp_parts requires a normal double, got {x}");
    let bits = x.to_bits();
    let sign = (bits >> 63) != 0;
    let exp = ((bits >> FRAC_BITS) & 0x7ff) as i32 - BIAS;
    (sign, exp, bits & FRAC_MASK)
}

/// Rebuild a double from `(sign, unbiased exponent, fraction)` when the
/// exponent is within the normal range; `None` otherwise.
#[must_use]
fn fp_build(sign: bool, exp: i32, frac: u64) -> Option<f64> {
    if !(-1022..=1023).contains(&exp) {
        return None;
    }
    let bits = ((sign as u64) << 63) | (((exp + BIAS) as u64) << FRAC_BITS) | (frac & FRAC_MASK);
    Some(f64::from_bits(bits))
}

/// `true` if `x` is normal or zero — the only values the mantissa-only
/// data path can process without a slow-path fallback.
#[must_use]
pub fn is_normal_or_zero(x: f64) -> bool {
    x.is_normal() || x == 0.0
}

/// `true` if every floating-point operand of `op` is normal (mantissa-mode
/// tables bypass anything else).
fn operands_normal(op: &Op) -> bool {
    match *op {
        Op::IntMul(..) => true,
        Op::FpMul(a, b) | Op::FpDiv(a, b) => a.is_normal() && b.is_normal(),
        // Square root of a negative is NaN; the mantissa path also cannot
        // represent it, so only positive normals qualify.
        Op::FpSqrt(a) => a.is_normal() && a > 0.0,
    }
}

/// Encode the comparison tag for `op`, or `None` if the operands cannot be
/// represented under `policy` and the access must bypass the table.
#[must_use]
pub fn encode_tag(op: &Op, policy: TagPolicy) -> Option<Key> {
    let kind = op.kind();
    match policy {
        TagPolicy::FullValue => {
            let (a, b) = op.operand_bits();
            Some(Key { kind, tag: ((a as u128) << 64) | b as u128 })
        }
        TagPolicy::MantissaOnly => match *op {
            // Integer multiplies keep full tags; mantissas are an fp notion.
            Op::IntMul(a, b) => {
                Some(Key { kind, tag: ((a as u128) << 64) | (b as u64) as u128 })
            }
            Op::FpMul(a, b) | Op::FpDiv(a, b) => {
                if !operands_normal(op) {
                    return None;
                }
                let (_, _, fa) = fp_parts(a);
                let (_, _, fb) = fp_parts(b);
                Some(Key { kind, tag: ((fa as u128) << FRAC_BITS) | fb as u128 })
            }
            Op::FpSqrt(a) => {
                if !operands_normal(op) {
                    return None;
                }
                let (_, ea, fa) = fp_parts(a);
                // The result mantissa depends on the exponent's parity:
                // sqrt(m·2^e) = sqrt(m·2^(e mod 2)) · 2^⌊e/2⌋.
                let parity = ea.rem_euclid(2) as u128;
                Some(Key { kind, tag: ((fa as u128) << 1) | parity })
            }
        },
    }
}

/// The set index for `op` in a table with `sets` sets.
///
/// `sets` must be a power of two (guaranteed by [`crate::MemoConfig`]).
#[must_use]
pub fn set_index(op: &Op, sets: usize, scheme: HashScheme) -> usize {
    debug_assert!(sets.is_power_of_two());
    if sets == 1 {
        return 0;
    }
    let n = sets.trailing_zeros();
    let mask = (sets - 1) as u64;
    match scheme {
        HashScheme::PaperXor => match *op {
            Op::IntMul(a, b) => ((a as u64 ^ b as u64) & mask) as usize,
            Op::FpMul(a, b) | Op::FpDiv(a, b) => {
                let fa = a.to_bits() & FRAC_MASK;
                let fb = b.to_bits() & FRAC_MASK;
                (((fa >> (FRAC_BITS - n)) ^ (fb >> (FRAC_BITS - n))) & mask) as usize
            }
            Op::FpSqrt(a) => {
                let fa = a.to_bits() & FRAC_MASK;
                ((fa >> (FRAC_BITS - n)) & mask) as usize
            }
        },
        HashScheme::FoldMix => {
            let (a, b) = op.operand_bits();
            let h = (a ^ b.rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> (64 - n)) as usize
        }
    }
}

/// Encode the 64-bit payload stored in an entry for `op`'s `result`.
///
/// Under full-value tags this is simply the raw result bits. Under
/// mantissa-only tags it is the result's fraction plus a 2-bit exponent
/// delta; `None` means the result is not a normal double and cannot be
/// stored by the mantissa data path.
#[must_use]
pub fn encode_value(op: &Op, result: Value, policy: TagPolicy) -> Option<u64> {
    match policy {
        TagPolicy::FullValue => Some(result.to_bits()),
        TagPolicy::MantissaOnly => match *op {
            Op::IntMul(..) => Some(result.to_bits()),
            Op::FpMul(..) | Op::FpDiv(..) | Op::FpSqrt(..) => {
                let r = result.as_f64();
                if !r.is_normal() {
                    return None;
                }
                let (_, er, fr) = fp_parts(r);
                let base = expected_exponent(op)?;
                let delta = er - base;
                debug_assert!((-1..=1).contains(&delta), "exponent delta {delta} out of range");
                // Encode delta ∈ {-1, 0, 1} as 0, 1, 2 above the fraction.
                Some(fr | (((delta + 1) as u64) << FRAC_BITS))
            }
        },
    }
}

/// Reconstruct the result of `op` from a stored payload.
///
/// Under mantissa-only tags the sign and exponent are recomputed from the
/// *current* operands; `None` means the reconstructed exponent falls
/// outside the normal range (the hardware would fall back to the
/// conventional unit, i.e. the probe is treated as a miss).
#[must_use]
pub fn decode_value(op: &Op, stored: u64, policy: TagPolicy) -> Option<Value> {
    match policy {
        TagPolicy::FullValue => Some(Value::from_bits(op.kind(), stored)),
        TagPolicy::MantissaOnly => match *op {
            Op::IntMul(..) => Some(Value::Int(stored as i64)),
            Op::FpMul(a, b) => {
                let (sa, ..) = fp_parts(a);
                let (sb, ..) = fp_parts(b);
                rebuild(op, stored, sa ^ sb)
            }
            Op::FpDiv(a, b) => {
                let (sa, ..) = fp_parts(a);
                let (sb, ..) = fp_parts(b);
                rebuild(op, stored, sa ^ sb)
            }
            Op::FpSqrt(_) => rebuild(op, stored, false),
        },
    }
}

/// The result exponent before normalization adjustment, from the current
/// operands. `None` if the operands are unsuitable (never happens after a
/// tag hit, which already filtered non-normals).
fn expected_exponent(op: &Op) -> Option<i32> {
    match *op {
        Op::IntMul(..) => None,
        Op::FpMul(a, b) => {
            let (_, ea, _) = fp_parts(a);
            let (_, eb, _) = fp_parts(b);
            Some(ea + eb)
        }
        Op::FpDiv(a, b) => {
            let (_, ea, _) = fp_parts(a);
            let (_, eb, _) = fp_parts(b);
            Some(ea - eb)
        }
        Op::FpSqrt(a) => {
            let (_, ea, _) = fp_parts(a);
            Some(ea.div_euclid(2))
        }
    }
}

fn rebuild(op: &Op, stored: u64, sign: bool) -> Option<Value> {
    let frac = stored & FRAC_MASK;
    let delta = ((stored >> FRAC_BITS) & 0b11) as i32 - 1;
    let exp = expected_exponent(op)? + delta;
    fp_build(sign, exp, frac).map(Value::Fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_parts_roundtrip() {
        for x in [1.0, -2.5, 1.5e300, -3.7e-200, std::f64::consts::PI] {
            let (s, e, f) = fp_parts(x);
            assert_eq!(fp_build(s, e, f), Some(x));
        }
    }

    #[test]
    fn fp_build_rejects_out_of_range() {
        assert_eq!(fp_build(false, 1024, 0), None);
        assert_eq!(fp_build(false, -1023, 0), None);
    }

    #[test]
    fn full_tags_pack_both_operands() {
        let op = Op::FpMul(2.0, 3.0);
        let key = encode_tag(&op, TagPolicy::FullValue).unwrap();
        assert_eq!(key.tag >> 64, 2.0f64.to_bits() as u128);
        assert_eq!(key.tag & u128::from(u64::MAX), 3.0f64.to_bits() as u128);
    }

    #[test]
    fn full_tags_accept_any_bit_pattern() {
        for op in [
            Op::FpMul(f64::NAN, 1.0),
            Op::FpDiv(f64::INFINITY, 0.0),
            Op::FpSqrt(-1.0),
            Op::FpMul(f64::MIN_POSITIVE / 2.0, 1.0), // subnormal
        ] {
            assert!(encode_tag(&op, TagPolicy::FullValue).is_some());
        }
    }

    #[test]
    fn mantissa_tags_ignore_sign_and_exponent() {
        let k1 = encode_tag(&Op::FpMul(1.5, 2.5), TagPolicy::MantissaOnly).unwrap();
        let k2 = encode_tag(&Op::FpMul(-1.5 * 8.0, 2.5 * 0.25), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(k1, k2, "same mantissas must share a tag");
        let k3 = encode_tag(&Op::FpMul(1.25, 2.5), TagPolicy::MantissaOnly).unwrap();
        assert_ne!(k1, k3);
    }

    #[test]
    fn mantissa_tags_bypass_non_normals() {
        for op in [
            Op::FpMul(0.0, 1.0),
            Op::FpDiv(1.0, f64::NAN),
            Op::FpSqrt(-4.0),
            Op::FpSqrt(0.0),
            Op::FpMul(f64::MIN_POSITIVE / 4.0, 2.0),
        ] {
            assert_eq!(encode_tag(&op, TagPolicy::MantissaOnly), None, "{op}");
        }
    }

    #[test]
    fn sqrt_tag_distinguishes_exponent_parity() {
        // 2.0 = 1.0·2^1 (odd), 4.0 = 1.0·2^2 (even): same mantissa, different
        // parity — must not share an entry, since sqrt(2)≠sqrt(4)/2 mantissa.
        let k1 = encode_tag(&Op::FpSqrt(2.0), TagPolicy::MantissaOnly).unwrap();
        let k2 = encode_tag(&Op::FpSqrt(4.0), TagPolicy::MantissaOnly).unwrap();
        assert_ne!(k1, k2);
        // 4.0 and 16.0 are both even-exponent with mantissa 1.0: shared.
        let k3 = encode_tag(&Op::FpSqrt(16.0), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(k2, k3);
    }

    #[test]
    fn paper_index_xors_int_lsbs() {
        let sets = 8;
        let idx = set_index(&Op::IntMul(0b1011, 0b0110), sets, HashScheme::PaperXor);
        assert_eq!(idx, (0b1011 ^ 0b0110) & 0b111);
    }

    #[test]
    fn paper_index_xors_fp_mantissa_msbs() {
        let sets = 8;
        // 1.5 has fraction 0b100…, 1.25 has 0b010…; top-3 bits 100 ^ 010 = 110.
        let idx = set_index(&Op::FpMul(1.5, 1.25), sets, HashScheme::PaperXor);
        assert_eq!(idx, 0b110);
    }

    #[test]
    fn index_is_in_range_for_all_schemes() {
        for sets in [1usize, 2, 8, 1024] {
            for scheme in [HashScheme::PaperXor, HashScheme::FoldMix] {
                for op in [
                    Op::IntMul(-7, 13),
                    Op::FpMul(3.25, -0.125),
                    Op::FpDiv(9.5, 3.0),
                    Op::FpSqrt(7.0),
                ] {
                    assert!(set_index(&op, sets, scheme) < sets);
                }
            }
        }
    }

    #[test]
    fn mantissa_value_roundtrip_mul() {
        let op = Op::FpMul(1.7, 3.3);
        let truth = op.compute();
        let stored = encode_value(&op, truth, TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&op, stored, TagPolicy::MantissaOnly), Some(truth));

        // Same mantissas at different exponents reconstruct exactly.
        let op2 = Op::FpMul(1.7 * 1024.0, 3.3 / 65536.0);
        let truth2 = op2.compute();
        assert_eq!(decode_value(&op2, stored, TagPolicy::MantissaOnly), Some(truth2));
    }

    #[test]
    fn mantissa_value_roundtrip_div_and_sqrt() {
        let d = Op::FpDiv(10.0, 3.0);
        let s = encode_value(&d, d.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&d, s, TagPolicy::MantissaOnly), Some(d.compute()));

        let q = Op::FpSqrt(7.0);
        let s = encode_value(&q, q.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&q, s, TagPolicy::MantissaOnly), Some(q.compute()));
        // Even/odd exponent variants of the same mantissa reconstruct too.
        let q2 = Op::FpSqrt(7.0 * 4.0);
        let s2 = encode_value(&q2, q2.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&q2, s2, TagPolicy::MantissaOnly), Some(q2.compute()));
    }

    #[test]
    fn mantissa_decode_rejects_overflowing_exponent() {
        let op = Op::FpMul(1.5, 1.5);
        let stored = encode_value(&op, op.compute(), TagPolicy::MantissaOnly).unwrap();
        // Same mantissas, enormous exponents: the true product overflows, so
        // the reconstruction must refuse (treated as a miss upstream).
        let huge = Op::FpMul(1.5e300, 1.5e300);
        assert_eq!(decode_value(&huge, stored, TagPolicy::MantissaOnly), None);
    }

    #[test]
    fn mantissa_encode_rejects_non_normal_results() {
        // Product underflows to subnormal: cannot be stored.
        let op = Op::FpMul(1.5e-200, 1.5e-200);
        assert_eq!(encode_value(&op, op.compute(), TagPolicy::MantissaOnly), None);
    }
}

//! Operand → (set index, tag, stored value) encodings.
//!
//! The paper's indexing scheme (§3.1):
//!
//! * **integer** operands — XOR of the *n* least-significant bits of the two
//!   operands, where 2ⁿ is the number of sets;
//! * **floating-point** operands — XOR of the *n* most-significant bits of
//!   the two mantissas.
//!
//! Tags are either the full operand bit patterns ([`TagPolicy::FullValue`])
//! or only the mantissas ([`TagPolicy::MantissaOnly`], §2.1). In mantissa
//! mode the entry stores the result's mantissa plus a tiny exponent
//! adjustment, and the sign/exponent data path recomputes the rest — so a
//! pair of operands that differs from a cached pair only in sign or
//! exponent still hits.

use crate::config::{HashScheme, TagPolicy};
use crate::op::{Op, OpKind, Value};

/// Number of explicit fraction bits in an IEEE-754 double.
const FRAC_BITS: u32 = 52;
/// Mask of the fraction field.
const FRAC_MASK: u64 = (1u64 << FRAC_BITS) - 1;
/// Exponent bias.
const BIAS: i32 = 1023;

/// A tag ready for comparison against table entries.
///
/// `kind` is compared alongside the packed operand bits so that tables
/// shared between different operation types never alias entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Operation kind this key belongs to.
    pub kind: OpKind,
    /// Packed operand bits (full values or mantissas, per the tag policy).
    pub tag: u128,
}

/// Decompose a **normal** double into `(sign, unbiased exponent, fraction)`.
///
/// # Panics
///
/// Panics in debug builds if `x` is not normal; callers must check
/// [`f64::is_normal`] first.
#[must_use]
pub fn fp_parts(x: f64) -> (bool, i32, u64) {
    debug_assert!(x.is_normal(), "fp_parts requires a normal double, got {x}");
    let bits = x.to_bits();
    let sign = (bits >> 63) != 0;
    let exp = ((bits >> FRAC_BITS) & 0x7ff) as i32 - BIAS;
    (sign, exp, bits & FRAC_MASK)
}

/// Rebuild a double from `(sign, unbiased exponent, fraction)` when the
/// exponent is within the normal range; `None` otherwise.
#[must_use]
fn fp_build(sign: bool, exp: i32, frac: u64) -> Option<f64> {
    if !(-1022..=1023).contains(&exp) {
        return None;
    }
    let bits = ((sign as u64) << 63) | (((exp + BIAS) as u64) << FRAC_BITS) | (frac & FRAC_MASK);
    Some(f64::from_bits(bits))
}

/// `true` if `x` is normal or zero — the only values the mantissa-only
/// data path can process without a slow-path fallback.
#[must_use]
pub fn is_normal_or_zero(x: f64) -> bool {
    x.is_normal() || x == 0.0
}

/// `true` if every floating-point operand of `op` is normal (mantissa-mode
/// tables bypass anything else).
fn operands_normal(op: &Op) -> bool {
    match *op {
        Op::IntMul(..) => true,
        Op::FpMul(a, b) | Op::FpDiv(a, b) => a.is_normal() && b.is_normal(),
        // Square root of a negative is NaN; the mantissa path also cannot
        // represent it, so only positive normals qualify.
        Op::FpSqrt(a) => a.is_normal() && a > 0.0,
    }
}

/// Encode the comparison tag for `op`, or `None` if the operands cannot be
/// represented under `policy` and the access must bypass the table.
#[must_use]
pub fn encode_tag(op: &Op, policy: TagPolicy) -> Option<Key> {
    let kind = op.kind();
    match policy {
        TagPolicy::FullValue => {
            let (a, b) = op.operand_bits();
            Some(Key { kind, tag: ((a as u128) << 64) | b as u128 })
        }
        TagPolicy::MantissaOnly => match *op {
            // Integer multiplies keep full tags; mantissas are an fp notion.
            Op::IntMul(a, b) => {
                Some(Key { kind, tag: ((a as u128) << 64) | (b as u64) as u128 })
            }
            Op::FpMul(a, b) | Op::FpDiv(a, b) => {
                if !operands_normal(op) {
                    return None;
                }
                let (_, _, fa) = fp_parts(a);
                let (_, _, fb) = fp_parts(b);
                Some(Key { kind, tag: ((fa as u128) << FRAC_BITS) | fb as u128 })
            }
            Op::FpSqrt(a) => {
                if !operands_normal(op) {
                    return None;
                }
                let (_, ea, fa) = fp_parts(a);
                // The result mantissa depends on the exponent's parity:
                // sqrt(m·2^e) = sqrt(m·2^(e mod 2)) · 2^⌊e/2⌋.
                let parity = ea.rem_euclid(2) as u128;
                Some(Key { kind, tag: ((fa as u128) << 1) | parity })
            }
        },
    }
}

/// The set index for `op` in a table with `sets` sets.
///
/// `sets` must be a power of two (guaranteed by [`crate::MemoConfig`]).
#[must_use]
pub fn set_index(op: &Op, sets: usize, scheme: HashScheme) -> usize {
    debug_assert!(sets.is_power_of_two());
    if sets == 1 {
        return 0;
    }
    let n = sets.trailing_zeros();
    let mask = (sets - 1) as u64;
    match scheme {
        HashScheme::PaperXor => match *op {
            Op::IntMul(a, b) => ((a as u64 ^ b as u64) & mask) as usize,
            Op::FpMul(a, b) | Op::FpDiv(a, b) => {
                let fa = a.to_bits() & FRAC_MASK;
                let fb = b.to_bits() & FRAC_MASK;
                (((fa >> (FRAC_BITS - n)) ^ (fb >> (FRAC_BITS - n))) & mask) as usize
            }
            Op::FpSqrt(a) => {
                let fa = a.to_bits() & FRAC_MASK;
                ((fa >> (FRAC_BITS - n)) & mask) as usize
            }
        },
        HashScheme::FoldMix => {
            let (a, b) = op.operand_bits();
            let h = (a ^ b.rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> (64 - n)) as usize
        }
    }
}

/// How a precomputed [`SetSel`] word maps to a set index for a given set
/// count: the paper's two XOR forms plus the multiplicative mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SetForm {
    /// Integer PaperXor: low-bit mask of the XORed operands.
    IntLow,
    /// Floating-point PaperXor: top fraction bits of the XORed mantissas.
    FpHigh,
    /// FoldMix: top bits of the multiplicative hash.
    Mix,
}

/// The mixing form [`set_index`] uses for `kind` under `scheme`.
pub(crate) fn set_form(kind: OpKind, scheme: HashScheme) -> SetForm {
    match scheme {
        HashScheme::PaperXor => {
            if kind == OpKind::IntMul {
                SetForm::IntLow
            } else {
                SetForm::FpHigh
            }
        }
        HashScheme::FoldMix => SetForm::Mix,
    }
}

/// A set selection with the operand mixing hoisted: [`set_index`] re-mixes
/// the operands for every distinct set count, but the XOR/multiply half is
/// independent of the count — only the final shift/mask depends on it. A
/// `SetSel` carries the mixed word so a multi-level consumer (the stack
/// sweep walks one level per distinct set count) pays the mixing once per
/// operation, and the batched front ends can fill the words lane-parallel
/// ([`fill_set_words`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetSel {
    pub(crate) word: u64,
    pub(crate) form: SetForm,
}

impl SetSel {
    /// Mix `op`'s operands once; [`SetSel::set`] then serves any set count.
    pub(crate) fn of(op: &Op, scheme: HashScheme) -> SetSel {
        let form = set_form(op.kind(), scheme);
        let word = match scheme {
            HashScheme::PaperXor => match *op {
                Op::IntMul(a, b) => a as u64 ^ b as u64,
                Op::FpMul(a, b) | Op::FpDiv(a, b) => (a.to_bits() ^ b.to_bits()) & FRAC_MASK,
                Op::FpSqrt(a) => a.to_bits() & FRAC_MASK,
            },
            HashScheme::FoldMix => {
                let (a, b) = op.operand_bits();
                (a ^ b.rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        };
        SetSel { word, form }
    }

    /// The set index for a table with `sets` sets — bit-identical to
    /// [`set_index`] on the originating operands.
    #[inline]
    #[must_use]
    pub(crate) fn set(self, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two());
        if sets == 1 {
            return 0;
        }
        let n = sets.trailing_zeros();
        let mask = (sets - 1) as u64;
        match self.form {
            SetForm::IntLow => (self.word & mask) as usize,
            SetForm::FpHigh => ((self.word >> (FRAC_BITS - n)) & mask) as usize,
            SetForm::Mix => (self.word >> (64 - n)) as usize,
        }
    }
}

/// Column form of [`SetSel::of`]: mix every lane's operands into `out`.
/// The per-lane form is uniform ([`set_form`]).
pub(crate) fn fill_set_words(
    kind: OpKind,
    scheme: HashScheme,
    a: &[u64],
    b: &[u64],
    out: &mut [u64],
) {
    let n = a.len();
    match scheme {
        HashScheme::PaperXor => match kind {
            OpKind::IntMul => {
                for i in 0..n {
                    out[i] = a[i] ^ b[i];
                }
            }
            OpKind::FpMul | OpKind::FpDiv => {
                for i in 0..n {
                    out[i] = (a[i] ^ b[i]) & FRAC_MASK;
                }
            }
            OpKind::FpSqrt => {
                for i in 0..n {
                    out[i] = a[i] & FRAC_MASK;
                }
            }
        },
        HashScheme::FoldMix => {
            if kind == OpKind::FpSqrt {
                for i in 0..n {
                    out[i] =
                        (a[i] ^ a[i].rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            } else {
                for i in 0..n {
                    out[i] =
                        (a[i] ^ b[i].rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
        }
    }
}

/// Encode the 64-bit payload stored in an entry for `op`'s `result`.
///
/// Under full-value tags this is simply the raw result bits. Under
/// mantissa-only tags it is the result's fraction plus a 2-bit exponent
/// delta; `None` means the result is not a normal double and cannot be
/// stored by the mantissa data path.
#[must_use]
pub fn encode_value(op: &Op, result: Value, policy: TagPolicy) -> Option<u64> {
    match policy {
        TagPolicy::FullValue => Some(result.to_bits()),
        TagPolicy::MantissaOnly => match *op {
            Op::IntMul(..) => Some(result.to_bits()),
            Op::FpMul(..) | Op::FpDiv(..) | Op::FpSqrt(..) => {
                let r = result.as_f64();
                if !r.is_normal() {
                    return None;
                }
                let (_, er, fr) = fp_parts(r);
                let base = expected_exponent(op)?;
                let delta = er - base;
                debug_assert!((-1..=1).contains(&delta), "exponent delta {delta} out of range");
                // Encode delta ∈ {-1, 0, 1} as 0, 1, 2 above the fraction.
                Some(fr | (((delta + 1) as u64) << FRAC_BITS))
            }
        },
    }
}

/// Reconstruct the result of `op` from a stored payload.
///
/// Under mantissa-only tags the sign and exponent are recomputed from the
/// *current* operands; `None` means the reconstructed exponent falls
/// outside the normal range (the hardware would fall back to the
/// conventional unit, i.e. the probe is treated as a miss).
#[must_use]
pub fn decode_value(op: &Op, stored: u64, policy: TagPolicy) -> Option<Value> {
    match policy {
        TagPolicy::FullValue => Some(Value::from_bits(op.kind(), stored)),
        TagPolicy::MantissaOnly => match *op {
            Op::IntMul(..) => Some(Value::Int(stored as i64)),
            Op::FpMul(a, b) => {
                let (sa, ..) = fp_parts(a);
                let (sb, ..) = fp_parts(b);
                rebuild(op, stored, sa ^ sb)
            }
            Op::FpDiv(a, b) => {
                let (sa, ..) = fp_parts(a);
                let (sb, ..) = fp_parts(b);
                rebuild(op, stored, sa ^ sb)
            }
            Op::FpSqrt(_) => rebuild(op, stored, false),
        },
    }
}

/// The result exponent before normalization adjustment, from the current
/// operands. `None` if the operands are unsuitable (never happens after a
/// tag hit, which already filtered non-normals).
fn expected_exponent(op: &Op) -> Option<i32> {
    match *op {
        Op::IntMul(..) => None,
        Op::FpMul(a, b) => {
            let (_, ea, _) = fp_parts(a);
            let (_, eb, _) = fp_parts(b);
            Some(ea + eb)
        }
        Op::FpDiv(a, b) => {
            let (_, ea, _) = fp_parts(a);
            let (_, eb, _) = fp_parts(b);
            Some(ea - eb)
        }
        Op::FpSqrt(a) => {
            let (_, ea, _) = fp_parts(a);
            Some(ea.div_euclid(2))
        }
    }
}

fn rebuild(op: &Op, stored: u64, sign: bool) -> Option<Value> {
    let frac = stored & FRAC_MASK;
    let delta = ((stored >> FRAC_BITS) & 0b11) as i32 - 1;
    let exp = expected_exponent(op)? + delta;
    fp_build(sign, exp, frac).map(Value::Fp)
}

// ---------------------------------------------------------------------------
// Lane-parallel variants over raw operand columns (the batched front end).
//
// Each `fill_*` function is the column form of the scalar function above it
// is named after: one kind/policy dispatch for the whole tile, then a plain
// loop over the lanes that the optimizer can vectorize. The outputs are
// bit-identical to calling the scalar function on `batch.op(i)` — asserted
// lane-for-lane by the tests at the bottom of this file.
// ---------------------------------------------------------------------------

/// Biased exponent field of a raw double.
#[inline]
fn exp_field(bits: u64) -> u64 {
    (bits >> FRAC_BITS) & 0x7ff
}

/// `f64::is_normal` on raw bits.
#[inline]
fn is_normal_bits(bits: u64) -> bool {
    let e = exp_field(bits);
    e != 0 && e != 0x7ff
}

/// Column form of [`encode_tag`]: packs each lane's tag into `tags` and
/// records in `valid` whether the lane is representable under `policy`
/// (`false` lanes hold garbage tags and must bypass the table).
///
/// `b` follows the [`crate::OpBatch`] convention: equal length for binary
/// kinds, empty for `FpSqrt`.
pub(crate) fn fill_tags(
    kind: OpKind,
    policy: TagPolicy,
    a: &[u64],
    b: &[u64],
    tags: &mut [u128],
    valid: &mut [bool],
) {
    let n = a.len();
    match (policy, kind) {
        (TagPolicy::FullValue, OpKind::FpSqrt) => {
            // `operand_bits` reports the unary operand twice.
            for i in 0..n {
                tags[i] = ((a[i] as u128) << 64) | a[i] as u128;
                valid[i] = true;
            }
        }
        (TagPolicy::FullValue, _) | (TagPolicy::MantissaOnly, OpKind::IntMul) => {
            for i in 0..n {
                tags[i] = ((a[i] as u128) << 64) | b[i] as u128;
                valid[i] = true;
            }
        }
        (TagPolicy::MantissaOnly, OpKind::FpMul | OpKind::FpDiv) => {
            for i in 0..n {
                let fa = a[i] & FRAC_MASK;
                let fb = b[i] & FRAC_MASK;
                tags[i] = ((fa as u128) << FRAC_BITS) | fb as u128;
                valid[i] = is_normal_bits(a[i]) && is_normal_bits(b[i]);
            }
        }
        (TagPolicy::MantissaOnly, OpKind::FpSqrt) => {
            for i in 0..n {
                let bits = a[i];
                // Unbiased exponent e = exp_field − 1023 (odd bias), so
                // e.rem_euclid(2) == (exp_field & 1) ^ 1.
                let parity = (exp_field(bits) & 1) ^ 1;
                tags[i] = (((bits & FRAC_MASK) as u128) << 1) | parity as u128;
                // Positive normals only: sqrt of a negative is NaN.
                valid[i] = is_normal_bits(bits) && (bits >> 63) == 0;
            }
        }
    }
}

/// Column form of [`encode_tag`] for the *swapped* operand order of a
/// commutative kind (`IntMul`/`FpMul` only). Validity is symmetric, so the
/// caller reuses the mask from [`fill_tags`].
pub(crate) fn fill_swapped_tags(
    kind: OpKind,
    policy: TagPolicy,
    a: &[u64],
    b: &[u64],
    tags: &mut [u128],
) {
    debug_assert!(kind.is_commutative());
    let n = a.len();
    match (policy, kind) {
        (TagPolicy::MantissaOnly, OpKind::FpMul) => {
            for i in 0..n {
                let fa = a[i] & FRAC_MASK;
                let fb = b[i] & FRAC_MASK;
                tags[i] = ((fb as u128) << FRAC_BITS) | fa as u128;
            }
        }
        _ => {
            for i in 0..n {
                tags[i] = ((b[i] as u128) << 64) | a[i] as u128;
            }
        }
    }
}

/// Column form of [`set_index`]. When `swapped` is set the indices are for
/// the swapped operand order (identical under the symmetric `PaperXor`
/// scheme; `FoldMix` mixes asymmetrically and genuinely differs).
pub(crate) fn fill_set_indices(
    kind: OpKind,
    scheme: HashScheme,
    sets: usize,
    a: &[u64],
    b: &[u64],
    swapped: bool,
    out: &mut [u32],
) {
    debug_assert!(sets.is_power_of_two());
    let n = a.len();
    if sets == 1 {
        out[..n].fill(0);
        return;
    }
    let bits = sets.trailing_zeros();
    let mask = (sets - 1) as u64;
    match scheme {
        HashScheme::PaperXor => match kind {
            // XOR is symmetric: the swapped order lands in the same set.
            OpKind::IntMul => {
                for i in 0..n {
                    out[i] = ((a[i] ^ b[i]) & mask) as u32;
                }
            }
            OpKind::FpMul | OpKind::FpDiv => {
                let shift = FRAC_BITS - bits;
                for i in 0..n {
                    let fa = a[i] & FRAC_MASK;
                    let fb = b[i] & FRAC_MASK;
                    out[i] = (((fa >> shift) ^ (fb >> shift)) & mask) as u32;
                }
            }
            OpKind::FpSqrt => {
                let shift = FRAC_BITS - bits;
                for i in 0..n {
                    out[i] = (((a[i] & FRAC_MASK) >> shift) & mask) as u32;
                }
            }
        },
        HashScheme::FoldMix => {
            let shift = 64 - bits;
            if kind == OpKind::FpSqrt {
                for i in 0..n {
                    let h = (a[i] ^ a[i].rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    out[i] = (h >> shift) as u32;
                }
            } else if swapped {
                for i in 0..n {
                    let h = (b[i] ^ a[i].rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    out[i] = (h >> shift) as u32;
                }
            } else {
                for i in 0..n {
                    let h = (a[i] ^ b[i].rotate_left(31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    out[i] = (h >> shift) as u32;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fast hashing for Key-keyed maps.
// ---------------------------------------------------------------------------

/// A multiply–xorshift hasher specialized for [`Key`]-keyed maps.
///
/// `SipHash` (the `std` default) dominates the profile of the unbounded
/// table and the stack-distance simulator's key store. Keys are fixed-size
/// values an adversary does not control — the operand streams come from our
/// own workloads — so HashDoS resistance buys nothing here. This hasher
/// folds each written word into a 64-bit state with the golden-ratio
/// multiplier and finishes with a SplitMix64-style avalanche. Only use it
/// with maps accessed by `get`/`insert`/`remove`; anything sensitive to
/// iteration order would become sensitive to this choice of mixer.
#[derive(Debug, Default, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl KeyHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`KeyHasher`]-backed maps.
pub type KeyHashBuilder = std::hash::BuildHasherDefault<KeyHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_parts_roundtrip() {
        for x in [1.0, -2.5, 1.5e300, -3.7e-200, std::f64::consts::PI] {
            let (s, e, f) = fp_parts(x);
            assert_eq!(fp_build(s, e, f), Some(x));
        }
    }

    #[test]
    fn fp_build_rejects_out_of_range() {
        assert_eq!(fp_build(false, 1024, 0), None);
        assert_eq!(fp_build(false, -1023, 0), None);
    }

    #[test]
    fn full_tags_pack_both_operands() {
        let op = Op::FpMul(2.0, 3.0);
        let key = encode_tag(&op, TagPolicy::FullValue).unwrap();
        assert_eq!(key.tag >> 64, 2.0f64.to_bits() as u128);
        assert_eq!(key.tag & u128::from(u64::MAX), 3.0f64.to_bits() as u128);
    }

    #[test]
    fn full_tags_accept_any_bit_pattern() {
        for op in [
            Op::FpMul(f64::NAN, 1.0),
            Op::FpDiv(f64::INFINITY, 0.0),
            Op::FpSqrt(-1.0),
            Op::FpMul(f64::MIN_POSITIVE / 2.0, 1.0), // subnormal
        ] {
            assert!(encode_tag(&op, TagPolicy::FullValue).is_some());
        }
    }

    #[test]
    fn mantissa_tags_ignore_sign_and_exponent() {
        let k1 = encode_tag(&Op::FpMul(1.5, 2.5), TagPolicy::MantissaOnly).unwrap();
        let k2 = encode_tag(&Op::FpMul(-1.5 * 8.0, 2.5 * 0.25), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(k1, k2, "same mantissas must share a tag");
        let k3 = encode_tag(&Op::FpMul(1.25, 2.5), TagPolicy::MantissaOnly).unwrap();
        assert_ne!(k1, k3);
    }

    #[test]
    fn mantissa_tags_bypass_non_normals() {
        for op in [
            Op::FpMul(0.0, 1.0),
            Op::FpDiv(1.0, f64::NAN),
            Op::FpSqrt(-4.0),
            Op::FpSqrt(0.0),
            Op::FpMul(f64::MIN_POSITIVE / 4.0, 2.0),
        ] {
            assert_eq!(encode_tag(&op, TagPolicy::MantissaOnly), None, "{op}");
        }
    }

    #[test]
    fn sqrt_tag_distinguishes_exponent_parity() {
        // 2.0 = 1.0·2^1 (odd), 4.0 = 1.0·2^2 (even): same mantissa, different
        // parity — must not share an entry, since sqrt(2)≠sqrt(4)/2 mantissa.
        let k1 = encode_tag(&Op::FpSqrt(2.0), TagPolicy::MantissaOnly).unwrap();
        let k2 = encode_tag(&Op::FpSqrt(4.0), TagPolicy::MantissaOnly).unwrap();
        assert_ne!(k1, k2);
        // 4.0 and 16.0 are both even-exponent with mantissa 1.0: shared.
        let k3 = encode_tag(&Op::FpSqrt(16.0), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(k2, k3);
    }

    #[test]
    fn paper_index_xors_int_lsbs() {
        let sets = 8;
        let idx = set_index(&Op::IntMul(0b1011, 0b0110), sets, HashScheme::PaperXor);
        assert_eq!(idx, (0b1011 ^ 0b0110) & 0b111);
    }

    #[test]
    fn paper_index_xors_fp_mantissa_msbs() {
        let sets = 8;
        // 1.5 has fraction 0b100…, 1.25 has 0b010…; top-3 bits 100 ^ 010 = 110.
        let idx = set_index(&Op::FpMul(1.5, 1.25), sets, HashScheme::PaperXor);
        assert_eq!(idx, 0b110);
    }

    #[test]
    fn index_is_in_range_for_all_schemes() {
        for sets in [1usize, 2, 8, 1024] {
            for scheme in [HashScheme::PaperXor, HashScheme::FoldMix] {
                for op in [
                    Op::IntMul(-7, 13),
                    Op::FpMul(3.25, -0.125),
                    Op::FpDiv(9.5, 3.0),
                    Op::FpSqrt(7.0),
                ] {
                    assert!(set_index(&op, sets, scheme) < sets);
                }
            }
        }
    }

    #[test]
    fn mantissa_value_roundtrip_mul() {
        let op = Op::FpMul(1.7, 3.3);
        let truth = op.compute();
        let stored = encode_value(&op, truth, TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&op, stored, TagPolicy::MantissaOnly), Some(truth));

        // Same mantissas at different exponents reconstruct exactly.
        let op2 = Op::FpMul(1.7 * 1024.0, 3.3 / 65536.0);
        let truth2 = op2.compute();
        assert_eq!(decode_value(&op2, stored, TagPolicy::MantissaOnly), Some(truth2));
    }

    #[test]
    fn mantissa_value_roundtrip_div_and_sqrt() {
        let d = Op::FpDiv(10.0, 3.0);
        let s = encode_value(&d, d.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&d, s, TagPolicy::MantissaOnly), Some(d.compute()));

        let q = Op::FpSqrt(7.0);
        let s = encode_value(&q, q.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&q, s, TagPolicy::MantissaOnly), Some(q.compute()));
        // Even/odd exponent variants of the same mantissa reconstruct too.
        let q2 = Op::FpSqrt(7.0 * 4.0);
        let s2 = encode_value(&q2, q2.compute(), TagPolicy::MantissaOnly).unwrap();
        assert_eq!(decode_value(&q2, s2, TagPolicy::MantissaOnly), Some(q2.compute()));
    }

    #[test]
    fn mantissa_decode_rejects_overflowing_exponent() {
        let op = Op::FpMul(1.5, 1.5);
        let stored = encode_value(&op, op.compute(), TagPolicy::MantissaOnly).unwrap();
        // Same mantissas, enormous exponents: the true product overflows, so
        // the reconstruction must refuse (treated as a miss upstream).
        let huge = Op::FpMul(1.5e300, 1.5e300);
        assert_eq!(decode_value(&huge, stored, TagPolicy::MantissaOnly), None);
    }

    #[test]
    fn mantissa_encode_rejects_non_normal_results() {
        // Product underflows to subnormal: cannot be stored.
        let op = Op::FpMul(1.5e-200, 1.5e-200);
        assert_eq!(encode_value(&op, op.compute(), TagPolicy::MantissaOnly), None);
    }

    /// An operand soup stressing every encode/hash edge: zeros of both
    /// signs, ones, subnormals, infinities, NaN, negatives, and ordinary
    /// normals at assorted exponents.
    fn fp_soup() -> Vec<u64> {
        [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            2.0,
            4.0,
            1.5,
            -3.7e-200,
            1.5e300,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            std::f64::consts::PI,
            -0.125,
        ]
        .iter()
        .map(|x| x.to_bits())
        .collect()
    }

    fn int_soup() -> Vec<u64> {
        [0i64, 1, -1, 2, 42, -42, i64::MAX, i64::MIN, 7, 1 << 40]
            .iter()
            .map(|&x| x as u64)
            .collect()
    }

    fn soup_columns(kind: OpKind) -> (Vec<u64>, Vec<u64>) {
        let pool = if kind == OpKind::IntMul { int_soup() } else { fp_soup() };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, &x) in pool.iter().enumerate() {
            for (j, &y) in pool.iter().enumerate() {
                a.push(x);
                b.push(if (i + j) % 3 == 0 { x } else { y });
            }
        }
        if kind == OpKind::FpSqrt {
            b.clear();
        }
        (a, b)
    }

    fn lane_op(kind: OpKind, a: u64, b: u64) -> Op {
        match kind {
            OpKind::IntMul => Op::IntMul(a as i64, b as i64),
            OpKind::FpMul => Op::FpMul(f64::from_bits(a), f64::from_bits(b)),
            OpKind::FpDiv => Op::FpDiv(f64::from_bits(a), f64::from_bits(b)),
            OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(a)),
        }
    }

    #[test]
    fn lane_tags_match_scalar_encode() {
        for kind in OpKind::ALL {
            let (a, b) = soup_columns(kind);
            let n = a.len();
            let mut tags = vec![0u128; n];
            let mut valid = vec![false; n];
            for policy in [TagPolicy::FullValue, TagPolicy::MantissaOnly] {
                fill_tags(kind, policy, &a, &b, &mut tags, &mut valid);
                for i in 0..n {
                    let op = lane_op(kind, a[i], *b.get(i).unwrap_or(&0));
                    let scalar = encode_tag(&op, policy);
                    assert_eq!(valid[i], scalar.is_some(), "{op} validity under {policy:?}");
                    if let Some(key) = scalar {
                        assert_eq!(tags[i], key.tag, "{op} tag under {policy:?}");
                        assert_eq!(key.kind, kind);
                    }
                }
            }
        }
    }

    #[test]
    fn lane_swapped_tags_match_scalar_encode() {
        for kind in [OpKind::IntMul, OpKind::FpMul] {
            let (a, b) = soup_columns(kind);
            let n = a.len();
            let mut tags = vec![0u128; n];
            for policy in [TagPolicy::FullValue, TagPolicy::MantissaOnly] {
                fill_swapped_tags(kind, policy, &a, &b, &mut tags);
                for i in 0..n {
                    let op = lane_op(kind, a[i], b[i]);
                    let swapped = op.swapped().expect("commutative kind");
                    if let Some(key) = encode_tag(&swapped, policy) {
                        assert_eq!(tags[i], key.tag, "swapped {op} tag under {policy:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_set_indices_match_scalar_hash() {
        for kind in OpKind::ALL {
            let (a, b) = soup_columns(kind);
            let n = a.len();
            let mut out = vec![0u32; n];
            for sets in [1usize, 2, 8, 1024] {
                for scheme in [HashScheme::PaperXor, HashScheme::FoldMix] {
                    fill_set_indices(kind, scheme, sets, &a, &b, false, &mut out);
                    for i in 0..n {
                        let op = lane_op(kind, a[i], *b.get(i).unwrap_or(&0));
                        assert_eq!(
                            out[i] as usize,
                            set_index(&op, sets, scheme),
                            "{op} set under {scheme:?}/{sets}"
                        );
                    }
                    if kind.is_commutative() {
                        fill_set_indices(kind, scheme, sets, &a, &b, true, &mut out);
                        for i in 0..n {
                            let op = lane_op(kind, a[i], b[i]);
                            let swapped = op.swapped().expect("commutative kind");
                            assert_eq!(
                                out[i] as usize,
                                set_index(&swapped, sets, scheme),
                                "swapped {op} set under {scheme:?}/{sets}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hoisted_set_selector_matches_scalar_hash() {
        for kind in OpKind::ALL {
            let (a, b) = soup_columns(kind);
            let n = a.len();
            let mut words = vec![0u64; n];
            for scheme in [HashScheme::PaperXor, HashScheme::FoldMix] {
                fill_set_words(kind, scheme, &a, &b, &mut words);
                let form = set_form(kind, scheme);
                for i in 0..n {
                    let op = lane_op(kind, a[i], *b.get(i).unwrap_or(&0));
                    let sel = SetSel::of(&op, scheme);
                    assert_eq!(sel.word, words[i], "{op} mix word under {scheme:?}");
                    assert_eq!(sel.form, form);
                    for sets in [1usize, 2, 8, 64, 1024] {
                        assert_eq!(
                            sel.set(sets),
                            set_index(&op, sets, scheme),
                            "{op} set under {scheme:?}/{sets}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn key_hasher_spreads_and_is_deterministic() {
        use std::hash::{BuildHasher, Hash, Hasher};
        let build = KeyHashBuilder::default();
        let mut seen = std::collections::HashSet::new();
        for kind in OpKind::ALL {
            for tag in 0u128..512 {
                let key = Key { kind, tag: tag.wrapping_mul(0x10001) };
                let mut h1 = build.build_hasher();
                key.hash(&mut h1);
                
                
                assert_eq!(h1.finish(), build.hash_one(key), "hashing must be deterministic");
                seen.insert(h1.finish());
            }
        }
        // 4 kinds × 512 tags: a usable hasher collides rarely on this set.
        assert!(seen.len() > 2000, "only {} distinct hashes", seen.len());
    }
}

//! The "infinitely large, fully associative" reference table (§3.1).
//!
//! The paper compares every finite configuration against an unbounded
//! table to separate *capacity/conflict* misses from genuinely cold
//! computations. [`InfiniteMemoTable`] is that upper bound: a hash map
//! keyed exactly like a [`crate::MemoTable`] (same tag policy, same
//! trivial policy, same commutative probing) but never evicting.

use std::collections::HashMap;

use crate::batch::{compute_bits, BatchOutcome, OpBatch, MAX_BATCH_WIDTH};
use crate::config::{TagPolicy, TrivialPolicy};
use crate::fault::{FaultInjector, Protection};
use crate::key::{decode_value, encode_tag, encode_value, fill_swapped_tags, fill_tags, Key};
use crate::key::KeyHashBuilder;
use crate::op::{Op, Value};
use crate::stats::MemoStats;
use crate::table::{Outcome, Probe};
use crate::trivial::{fill_trivial_lanes, trivial_result};
use crate::Memoizer;

#[derive(Debug, Clone, Copy)]
struct Stored {
    /// The payload as stored — may drift from `clean` under value faults.
    value: u64,
    /// The payload at insert time (the checker's reference).
    clean: u64,
}

/// An unbounded memo table: the hit-ratio upper bound for a tag/trivial
/// policy pair.
///
/// # Examples
///
/// ```
/// use memo_table::{InfiniteMemoTable, Memoizer, Op, Outcome};
///
/// let mut inf = InfiniteMemoTable::new();
/// for i in 0..10_000 {
///     inf.execute(Op::FpDiv(f64::from(i), 3.0));
/// }
/// // Nothing repeated yet…
/// assert_eq!(inf.stats().table_hits, 0);
/// // …but *everything* ever seen is retained.
/// assert_eq!(inf.execute(Op::FpDiv(0.0 + 2.0, 3.0)).outcome, Outcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct InfiniteMemoTable {
    tag: TagPolicy,
    trivial: TrivialPolicy,
    commutative: bool,
    protection: Protection,
    // Keys are fixed-size, non-adversarial values: the multiply–xorshift
    // KeyHasher replaces SipHash on this hot map (get/insert/remove only —
    // nothing observes iteration order).
    entries: HashMap<Key, Stored, KeyHashBuilder>,
    stats: MemoStats,
    injector: Option<FaultInjector>,
}

impl InfiniteMemoTable {
    /// Paper-default policies: full-value tags, trivial operations
    /// excluded, commutative probing enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::with_policies(TagPolicy::FullValue, TrivialPolicy::Exclude, true)
    }

    /// Choose the tag policy, trivial policy, and commutative probing.
    #[must_use]
    pub fn with_policies(tag: TagPolicy, trivial: TrivialPolicy, commutative: bool) -> Self {
        InfiniteMemoTable {
            tag,
            trivial,
            commutative,
            protection: Protection::None,
            entries: HashMap::default(),
            stats: MemoStats::new(),
            injector: None,
        }
    }

    /// Set the soft-error protection policy (default: none).
    #[must_use]
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// The protection policy in force.
    #[must_use]
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Attach a soft-error process striking stored values on each probe.
    ///
    /// Only value flips apply: the unbounded reference table has neither
    /// fixed slots (no stuck-at defect map) nor hardware tags to corrupt.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attach or detach the soft-error process in place.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Number of distinct operand pairs retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit ratio under this table's trivial policy.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio(self.trivial)
    }

    fn probe_order(&mut self, op: &Op) -> Option<Value> {
        let key = encode_tag(op, self.tag)?;
        if !self.entries.contains_key(&key) {
            return None;
        }
        // New soft errors strike the cell itself: persist them.
        if let Some(injector) = &mut self.injector {
            if let Some(mask) = injector.value_strike() {
                let entry = self.entries.get_mut(&key).expect("checked above");
                entry.value ^= mask;
                self.stats.faults_injected += 1;
            }
        }
        let Stored { value: read, clean } = *self.entries.get(&key).expect("checked above");

        let errs = (read ^ clean).count_ones();
        if errs == 0 {
            return match decode_value(op, read, self.tag) {
                Some(v) => Some(v),
                None => {
                    self.stats.bypasses += 1;
                    None
                }
            };
        }

        let truth = decode_value(op, clean, self.tag);
        let serve_corrupted = |table: &mut Self, value: u64| match decode_value(op, value, table.tag)
        {
            Some(seen) => {
                if Some(seen) != truth {
                    table.stats.faults_silent += 1;
                }
                Some(seen)
            }
            None => {
                table.stats.bypasses += 1;
                None
            }
        };

        match self.protection {
            Protection::None => serve_corrupted(self, read),
            Protection::ParityDetect => {
                if errs % 2 == 1 {
                    self.stats.faults_detected += 1;
                    self.entries.remove(&key);
                    None
                } else {
                    serve_corrupted(self, read)
                }
            }
            Protection::EccSecDed => match errs {
                1 => {
                    self.stats.faults_corrected += 1;
                    self.entries.get_mut(&key).expect("checked above").value = clean;
                    match decode_value(op, clean, self.tag) {
                        Some(v) => Some(v),
                        None => {
                            self.stats.bypasses += 1;
                            None
                        }
                    }
                }
                2 => {
                    self.stats.faults_detected += 1;
                    self.entries.remove(&key);
                    None
                }
                _ => serve_corrupted(self, read),
            },
            Protection::VerifyOnHit { .. } => {
                let seen = decode_value(op, read, self.tag);
                if seen.is_some() && seen == truth {
                    seen
                } else {
                    self.stats.faults_detected += 1;
                    self.entries.remove(&key);
                    None
                }
            }
        }
    }
}

impl Default for InfiniteMemoTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Memoizer for InfiniteMemoTable {
    fn probe(&mut self, op: Op) -> Probe {
        self.stats.ops_seen += 1;

        if let Some((_, value)) = trivial_result(&op) {
            self.stats.trivial_seen += 1;
            match self.trivial {
                TrivialPolicy::Exclude => return Probe::Filtered,
                TrivialPolicy::Integrate => return Probe::Trivial(value),
                TrivialPolicy::Memoize => {}
            }
        }

        self.stats.table_lookups += 1;

        if encode_tag(&op, self.tag).is_none() {
            self.stats.bypasses += 1;
            return Probe::Miss;
        }

        if let Some(v) = self.probe_order(&op) {
            self.stats.table_hits += 1;
            return Probe::Hit(v);
        }
        if self.commutative {
            if let Some(swapped) = op.swapped() {
                if let Some(v) = self.probe_order(&swapped) {
                    self.stats.table_hits += 1;
                    self.stats.commutative_hits += 1;
                    return Probe::Hit(v);
                }
            }
        }
        Probe::Miss
    }

    /// Batched execution: tags for the whole tile are packed in one
    /// lane-parallel pass, then each lane resolves against the hash map
    /// with exactly one lookup per operand order (the scalar path encodes
    /// the tag up to three times per op — existence check, probe, update).
    /// Fault-injected or protected tables keep the scalar path, which
    /// mutates per-probe strike state.
    fn execute_batch(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        if self.injector.is_some() || self.protection != Protection::None {
            let mut out = BatchOutcome::default();
            for i in 0..batch.len() {
                match self.execute(batch.op(i)).outcome {
                    Outcome::Hit => out.hits += 1,
                    Outcome::Trivial => out.trivials += 1,
                    Outcome::Filtered | Outcome::Miss => {}
                }
            }
            return out;
        }

        let kind = batch.kind();
        let policy = self.tag;
        let commutative = self.commutative && kind.is_commutative();
        let mut out = BatchOutcome::default();
        let mut start = 0usize;
        while start < batch.len() {
            let w = (batch.len() - start).min(MAX_BATCH_WIDTH);
            let tile = batch.slice(start, w);
            start += w;
            let (a, b) = (tile.a(), tile.b());

            let mut trivial = [false; MAX_BATCH_WIDTH];
            let mut valid = [false; MAX_BATCH_WIDTH];
            let mut tags = [0u128; MAX_BATCH_WIDTH];
            let mut swapped_tags = [0u128; MAX_BATCH_WIDTH];

            fill_trivial_lanes(kind, a, b, &mut trivial[..w]);
            fill_tags(kind, policy, a, b, &mut tags[..w], &mut valid[..w]);
            if commutative {
                fill_swapped_tags(kind, policy, a, b, &mut swapped_tags[..w]);
            }

            for i in 0..w {
                self.stats.ops_seen += 1;
                if trivial[i] {
                    self.stats.trivial_seen += 1;
                    match self.trivial {
                        TrivialPolicy::Exclude => continue,
                        TrivialPolicy::Integrate => {
                            out.trivials += 1;
                            continue;
                        }
                        TrivialPolicy::Memoize => {}
                    }
                }
                self.stats.table_lookups += 1;
                if !valid[i] {
                    self.stats.bypasses += 1;
                    continue;
                }
                let key = Key { kind, tag: tags[i] };

                if let Some(stored) = self.entries.get(&key) {
                    match policy {
                        TagPolicy::FullValue => {
                            self.stats.table_hits += 1;
                            out.hits += 1;
                            continue;
                        }
                        TagPolicy::MantissaOnly => {
                            if decode_value(&tile.op(i), stored.value, policy).is_some() {
                                self.stats.table_hits += 1;
                                out.hits += 1;
                                continue;
                            }
                            self.stats.bypasses += 1;
                        }
                    }
                }

                if commutative {
                    let skey = Key { kind, tag: swapped_tags[i] };
                    if let Some(stored) = self.entries.get(&skey) {
                        match policy {
                            TagPolicy::FullValue => {
                                self.stats.table_hits += 1;
                                self.stats.commutative_hits += 1;
                                out.hits += 1;
                                continue;
                            }
                            TagPolicy::MantissaOnly => {
                                let swapped = tile.op(i).swapped().expect("commutative kind");
                                if decode_value(&swapped, stored.value, policy).is_some() {
                                    self.stats.table_hits += 1;
                                    self.stats.commutative_hits += 1;
                                    out.hits += 1;
                                    continue;
                                }
                                self.stats.bypasses += 1;
                            }
                        }
                    }
                }

                // Miss: insert under the own-order key (update semantics —
                // overwriting a present key counts no insertion).
                let stored = match policy {
                    TagPolicy::FullValue => {
                        let b_lane = if b.is_empty() { a[i] } else { b[i] };
                        Some(compute_bits(kind, a[i], b_lane))
                    }
                    TagPolicy::MantissaOnly => {
                        let op = tile.op(i);
                        let encoded = encode_value(&op, op.compute(), policy);
                        if encoded.is_none() {
                            self.stats.bypasses += 1;
                        }
                        encoded
                    }
                };
                if let Some(value) = stored {
                    if self.entries.insert(key, Stored { value, clean: value }).is_none() {
                        self.stats.insertions += 1;
                    }
                }
            }
        }
        out
    }

    fn update(&mut self, op: Op, result: Value) {
        debug_assert_eq!(result, op.compute(), "update must receive the true result");
        if trivial_result(&op).is_some() && self.trivial != TrivialPolicy::Memoize {
            return;
        }
        let Some(key) = encode_tag(&op, self.tag) else { return };
        let Some(value) = encode_value(&op, result, self.tag) else {
            self.stats.bypasses += 1;
            return;
        };
        if self.entries.insert(key, Stored { value, clean: value }).is_none() {
            self.stats.insertions += 1;
        }
    }

    fn stats(&self) -> MemoStats {
        self.stats
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.stats = MemoStats::new();
        self.injector = self.injector.as_ref().map(|i| FaultInjector::new(i.config()));
    }

    fn hit_penalty(&self) -> u32 {
        self.protection.hit_penalty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Outcome;
    use crate::{MemoConfig, MemoTable};

    #[test]
    fn never_evicts() {
        let mut inf = InfiniteMemoTable::new();
        for i in 0..100_000u32 {
            inf.execute(Op::FpMul(f64::from(i) + 1.5, 3.7));
        }
        assert_eq!(inf.len(), 100_000);
        for i in (0..100_000u32).step_by(9973) {
            assert_eq!(
                inf.execute(Op::FpMul(f64::from(i) + 1.5, 3.7)).outcome,
                Outcome::Hit,
                "entry {i} must be retained"
            );
        }
    }

    #[test]
    fn dominates_finite_table() {
        // On any stream, the infinite table's hit count must be >= a finite
        // table's (same policies) — here checked on a looping stream.
        let mut inf = InfiniteMemoTable::new();
        let mut fin = MemoTable::new(MemoConfig::paper_default());
        for round in 0..4 {
            for i in 0..200 {
                let op = Op::FpDiv(f64::from(i) + 2.0, 3.0 + f64::from(round % 2));
                inf.execute(op);
                fin.execute(op);
            }
        }
        assert!(inf.stats().table_hits >= fin.stats().table_hits);
        assert!(inf.stats().table_hits > 0);
    }

    #[test]
    fn commutative_probe_applies() {
        let mut inf = InfiniteMemoTable::new();
        inf.execute(Op::IntMul(3, 9));
        assert_eq!(inf.execute(Op::IntMul(9, 3)).outcome, Outcome::Hit);
        assert_eq!(inf.stats().commutative_hits, 1);
    }

    #[test]
    fn trivial_policy_respected() {
        let mut inf = InfiniteMemoTable::with_policies(
            TagPolicy::FullValue,
            TrivialPolicy::Integrate,
            true,
        );
        assert_eq!(inf.execute(Op::FpMul(1.0, 5.0)).outcome, Outcome::Trivial);
        assert!(inf.is_empty());
    }

    #[test]
    fn mantissa_mode_works_unbounded() {
        let mut inf =
            InfiniteMemoTable::with_policies(TagPolicy::MantissaOnly, TrivialPolicy::Exclude, true);
        inf.execute(Op::FpDiv(1.7, 1.3));
        let op = Op::FpDiv(1.7 * 256.0, 1.3 * 0.5);
        let e = inf.execute(op);
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, op.compute());
    }

    #[test]
    fn reset_clears() {
        let mut inf = InfiniteMemoTable::new();
        inf.execute(Op::FpDiv(9.0, 2.0));
        inf.reset();
        assert!(inf.is_empty());
        assert_eq!(inf.stats().ops_seen, 0);
    }
}

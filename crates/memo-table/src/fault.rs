//! Soft-error fault injection and table protection policies.
//!
//! The MEMO-TABLE's core promise is *transparency*: a hit aborts the real
//! computation unit and substitutes a stored result. A single corrupted
//! SRAM entry — a soft-error bit flip or a stuck-at defect — therefore
//! silently corrupts program output unless the table protects its payload.
//! This module models both sides:
//!
//! * [`FaultInjector`] — a deterministic (SplitMix64-seeded) error process
//!   that flips bits in stored values and tags and models per-slot stuck-at
//!   defects, at configurable rates ([`FaultConfig`]);
//! * [`Protection`] — what the hardware does about it, from nothing at all
//!   to full recompute-and-compare, each with its own cycle charge.
//!
//! Error-detection codes are modelled *semantically* rather than at the
//! check-bit level: each entry remembers the payload it was inserted with
//! (the value its parity/ECC bits were computed over), and the number of
//! bit errors visible to the checker is the Hamming distance between the
//! stored payload as read and that reference. This reproduces exactly what
//! parity (odd error counts) and SEC-DED (single-correct, double-detect)
//! can and cannot see, without simulating the code words themselves.

use crate::rng::SplitMix64;

/// How a memo table protects its entries against soft errors.
///
/// Threaded through every table flavour via
/// [`MemoConfig`](crate::MemoConfig) (finite tables) or
/// [`InfiniteMemoTable::with_protection`](crate::InfiniteMemoTable::with_protection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// No protection: corrupted entries are served as-is (silent data
    /// corruption). The paper's implicit assumption.
    #[default]
    None,
    /// A parity bit per entry. Odd numbers of flipped bits are detected;
    /// the entry is invalidated and the hit downgraded to a miss (graceful
    /// degradation — the conventional unit recomputes). Even error counts
    /// escape detection. No extra cycles: the check overlaps the compare.
    ParityDetect,
    /// A SEC-DED code (single-error-correct, double-error-detect). Single
    /// flips are corrected in place and the hit survives; double flips
    /// invalidate the entry and downgrade to a miss. The correction network
    /// sits in the read path and costs one extra cycle per hit.
    EccSecDed,
    /// Every hit is verified by letting the conventional unit recompute and
    /// comparing. Detects *any* corruption (the mismatching entry is
    /// invalidated and the operation completes as a miss) but charges
    /// `verify_cycles` extra on every served hit.
    VerifyOnHit {
        /// Extra cycles added to each hit for the compare window.
        verify_cycles: u32,
    },
}

impl Protection {
    /// All policies, in increasing order of strength (the sweep order the
    /// experiments use). `VerifyOnHit` uses a representative 4-cycle charge.
    pub const ALL: [Protection; 4] = [
        Protection::None,
        Protection::ParityDetect,
        Protection::EccSecDed,
        Protection::VerifyOnHit { verify_cycles: 4 },
    ];

    /// Extra cycles this policy adds to every *served* hit.
    ///
    /// Parity overlaps the tag compare (0); the SEC-DED correction network
    /// adds a cycle; verification stalls for the compare window.
    #[must_use]
    pub fn hit_penalty(self) -> u32 {
        match self {
            Protection::None | Protection::ParityDetect => 0,
            Protection::EccSecDed => 1,
            Protection::VerifyOnHit { verify_cycles } => verify_cycles,
        }
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::ParityDetect => "parity",
            Protection::EccSecDed => "sec-ded",
            Protection::VerifyOnHit { .. } => "verify",
        }
    }
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protection::VerifyOnHit { verify_cycles } => write!(f, "verify({verify_cycles})"),
            other => f.write_str(other.label()),
        }
    }
}

/// Error-process rates for a [`FaultInjector`].
///
/// All rates are per *probe of a matching entry* (value flips, stuck-at
/// reads) or per *set probe* (tag flips), so the expected corruption count
/// scales with table traffic the way alpha-particle upsets scale with time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic error process.
    pub seed: u64,
    /// Probability that reading a matching entry's value suffers a new bit
    /// flip (persisted into the entry, as an SRAM upset would be).
    pub value_flip_rate: f64,
    /// Fraction of value flips that strike two bits at once (defeats
    /// parity, detected-not-corrected by SEC-DED).
    pub double_flip_fraction: f64,
    /// Probability per set probe that a random valid entry in the probed
    /// set has one tag bit flipped (the entry becomes unreachable — a
    /// false miss — until protection scrubs it).
    pub tag_flip_rate: f64,
    /// Probability that a given table slot has a manufacturing stuck-at
    /// defect on one value bit (a pure function of seed and slot index, so
    /// the defect map is stable for the table's lifetime).
    pub stuck_at_rate: f64,
}

impl FaultConfig {
    /// An error process that never fires (useful as a placeholder).
    #[must_use]
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            value_flip_rate: 0.0,
            double_flip_fraction: 0.0,
            tag_flip_rate: 0.0,
            stuck_at_rate: 0.0,
        }
    }

    /// Single-bit value flips only, at `rate` per matched probe — the
    /// canonical soft-error model.
    #[must_use]
    pub fn single_bit(seed: u64, rate: f64) -> Self {
        FaultConfig { value_flip_rate: rate, ..Self::disabled() }.with_seed(seed)
    }

    /// Replace the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the fraction of value strikes that flip two bits.
    #[must_use]
    pub fn with_double_fraction(mut self, fraction: f64) -> Self {
        self.double_flip_fraction = fraction;
        self
    }

    /// Set the per-probe tag-flip rate.
    #[must_use]
    pub fn with_tag_rate(mut self, rate: f64) -> Self {
        self.tag_flip_rate = rate;
        self
    }

    /// Set the per-slot stuck-at defect probability.
    #[must_use]
    pub fn with_stuck_rate(mut self, rate: f64) -> Self {
        self.stuck_at_rate = rate;
        self
    }

    /// `true` if no fault source can ever fire.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.value_flip_rate <= 0.0 && self.tag_flip_rate <= 0.0 && self.stuck_at_rate <= 0.0
    }
}

/// A single injected fault, as applied to a stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR mask applied to an entry's stored value (one or two bits set).
    ValueFlip(u64),
    /// Bit position (0..128) flipped in an entry's packed tag.
    TagFlip(u32),
}

/// A deterministic soft-error process.
///
/// Attach one to a table with
/// [`MemoTable::with_fault_injector`](crate::MemoTable::with_fault_injector);
/// the table consults it on every probe. Two tables given injectors with
/// the same [`FaultConfig`] see identical error sequences.
///
/// # Examples
///
/// ```
/// use memo_table::{FaultConfig, FaultInjector};
///
/// let mut a = FaultInjector::new(FaultConfig::single_bit(7, 1.0));
/// let mut b = FaultInjector::new(FaultConfig::single_bit(7, 1.0));
/// assert_eq!(a.value_strike(), b.value_strike()); // deterministic
/// assert!(a.value_strike().is_some()); // rate 1.0: every probe strikes
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
    value_rng: SplitMix64,
    tag_rng: SplitMix64,
}

impl FaultInjector {
    /// Create the error process for `cfg`.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        let root = SplitMix64::new(cfg.seed);
        FaultInjector {
            cfg,
            value_rng: root.split("value-flips"),
            tag_rng: root.split("tag-flips"),
        }
    }

    /// The configured rates.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Draw the value-flip process for one matched probe: `Some(mask)` with
    /// one or two bits set when a strike occurs.
    pub fn value_strike(&mut self) -> Option<u64> {
        if self.cfg.value_flip_rate <= 0.0 || self.value_rng.next_f64() >= self.cfg.value_flip_rate
        {
            return None;
        }
        let first = self.value_rng.next_below(64) as u32;
        let mut mask = 1u64 << first;
        if self.cfg.double_flip_fraction > 0.0
            && self.value_rng.next_f64() < self.cfg.double_flip_fraction
        {
            // Second, distinct bit.
            let second = (first + 1 + self.value_rng.next_below(63) as u32) % 64;
            mask |= 1u64 << second;
        }
        Some(mask)
    }

    /// Draw the tag-flip process for one set probe: `Some((way_draw, bit))`
    /// when a strike occurs. `way_draw` is a uniform u64 the caller reduces
    /// modulo the number of candidate entries; `bit` is the tag bit (0..128)
    /// to flip.
    pub fn tag_strike(&mut self) -> Option<(u64, u32)> {
        if self.cfg.tag_flip_rate <= 0.0 || self.tag_rng.next_f64() >= self.cfg.tag_flip_rate {
            return None;
        }
        let way = self.tag_rng.next_u64();
        let bit = self.tag_rng.next_below(128) as u32;
        Some((way, bit))
    }

    /// The stuck-at defect of table slot `slot`, if any: `(bit, level)`
    /// forces value bit `bit` to read as `level`. A pure function of the
    /// seed and the slot index — the defect map never changes.
    #[must_use]
    pub fn stuck_bit(&self, slot: usize) -> Option<(u32, bool)> {
        if self.cfg.stuck_at_rate <= 0.0 {
            return None;
        }
        let mut r = SplitMix64::new(self.cfg.seed)
            .split("stuck-at")
            .split(&format!("slot-{slot}"));
        if r.next_f64() >= self.cfg.stuck_at_rate {
            return None;
        }
        let bit = r.next_below(64) as u32;
        let level = r.next_u64() & 1 == 1;
        Some((bit, level))
    }

    /// Apply slot `slot`'s stuck-at defect (if any) to a value being read.
    #[must_use]
    pub fn apply_stuck(&self, slot: usize, value: u64) -> u64 {
        match self.stuck_bit(slot) {
            Some((bit, true)) => value | (1u64 << bit),
            Some((bit, false)) => value & !(1u64 << bit),
            None => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_penalties() {
        assert_eq!(Protection::None.hit_penalty(), 0);
        assert_eq!(Protection::ParityDetect.hit_penalty(), 0);
        assert_eq!(Protection::EccSecDed.hit_penalty(), 1);
        assert_eq!(Protection::VerifyOnHit { verify_cycles: 7 }.hit_penalty(), 7);
    }

    #[test]
    fn protection_display() {
        assert_eq!(Protection::None.to_string(), "none");
        assert_eq!(Protection::VerifyOnHit { verify_cycles: 4 }.to_string(), "verify(4)");
    }

    #[test]
    fn disabled_config_never_strikes() {
        let mut inj = FaultInjector::new(FaultConfig::disabled());
        for _ in 0..1000 {
            assert_eq!(inj.value_strike(), None);
            assert_eq!(inj.tag_strike(), None);
        }
        assert_eq!(inj.stuck_bit(5), None);
        assert!(FaultConfig::disabled().is_disabled());
    }

    #[test]
    fn single_bit_strikes_have_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig::single_bit(99, 1.0));
        for _ in 0..1000 {
            let mask = inj.value_strike().expect("rate 1.0 always strikes");
            assert_eq!(mask.count_ones(), 1);
        }
    }

    #[test]
    fn double_fraction_produces_two_bit_masks() {
        let cfg = FaultConfig::single_bit(3, 1.0).with_double_fraction(1.0);
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..1000 {
            let mask = inj.value_strike().expect("always strikes");
            assert_eq!(mask.count_ones(), 2, "double fraction 1.0: always two bits");
        }
    }

    #[test]
    fn strike_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultConfig::single_bit(11, 0.1));
        let hits = (0..10_000).filter(|_| inj.value_strike().is_some()).count();
        assert!((800..1200).contains(&hits), "≈10% of probes should strike, got {hits}");
    }

    #[test]
    fn stuck_map_is_stable_and_seed_dependent() {
        let inj = FaultInjector::new(FaultConfig::disabled().with_seed(5).with_stuck_rate(0.5));
        for slot in 0..64 {
            assert_eq!(inj.stuck_bit(slot), inj.stuck_bit(slot), "defect map is pure");
        }
        let defects = (0..256).filter(|&s| inj.stuck_bit(s).is_some()).count();
        assert!((64..192).contains(&defects), "≈half the slots defective, got {defects}");
    }

    #[test]
    fn apply_stuck_forces_level() {
        let inj = FaultInjector::new(FaultConfig::disabled().with_seed(5).with_stuck_rate(1.0));
        let slot = 3;
        let (bit, level) = inj.stuck_bit(slot).expect("rate 1.0: defective");
        let v = inj.apply_stuck(slot, 0);
        let w = inj.apply_stuck(slot, u64::MAX);
        assert_eq!((v >> bit) & 1 == 1, level);
        assert_eq!((w >> bit) & 1 == 1, level);
    }

    #[test]
    fn injectors_with_same_seed_agree() {
        let cfg = FaultConfig::single_bit(42, 0.5).with_tag_rate(0.5);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..100 {
            assert_eq!(a.value_strike(), b.value_strike());
            assert_eq!(a.tag_strike(), b.tag_strike());
        }
    }
}

//! Configuration of a MEMO-TABLE's geometry and policies.

use crate::fault::Protection;
use std::fmt;

/// Set associativity of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assoc {
    /// One way per set — every value competes for exactly one entry.
    DirectMapped,
    /// `n` ways per set; `n` must divide the entry count.
    Ways(usize),
    /// A single set containing every entry.
    Full,
}

impl Assoc {
    /// The number of ways given the total entry count.
    #[must_use]
    pub fn ways(self, entries: usize) -> usize {
        match self {
            Assoc::DirectMapped => 1,
            Assoc::Ways(n) => n,
            Assoc::Full => entries,
        }
    }

    /// Parse the textual forms used by query strings and CLI flags:
    /// `"direct"` or `"1"` is direct-mapped, `"full"` is fully
    /// associative, and a bare integer `n > 1` is `n`-way.
    #[must_use]
    pub fn parse(s: &str) -> Option<Assoc> {
        match s {
            "direct" | "1" => Some(Assoc::DirectMapped),
            "full" => Some(Assoc::Full),
            _ => match s.parse::<usize>() {
                Ok(n) if n > 1 => Some(Assoc::Ways(n)),
                _ => None,
            },
        }
    }

    /// Stable short form, the inverse of [`Assoc::parse`]: `direct`,
    /// `full`, or the way count.
    #[must_use]
    pub fn canonical(self) -> String {
        match self {
            Assoc::DirectMapped => "direct".to_string(),
            Assoc::Ways(n) => n.to_string(),
            Assoc::Full => "full".to_string(),
        }
    }
}

impl fmt::Display for Assoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assoc::DirectMapped => write!(f, "direct-mapped"),
            Assoc::Ways(n) => write!(f, "{n}-way"),
            Assoc::Full => write!(f, "fully-associative"),
        }
    }
}

/// What the tag of each entry stores (§2.1, Table 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TagPolicy {
    /// The full bit patterns of both operands (2 × 64 bits). Simple, and
    /// handles every input including NaN, infinities and subnormals.
    #[default]
    FullValue,
    /// Only the 52-bit mantissas of floating-point operands (the sign and
    /// exponent path is computed by dedicated logic). Raises the hit ratio
    /// slightly — operand pairs that differ only in exponent share an entry
    /// — at the cost of an exponent adder and normalization logic.
    ///
    /// Integer operations always use full tags; non-normal floating-point
    /// operands bypass the table (they would take the slow path in the
    /// proposed hardware too).
    MantissaOnly,
}

/// How trivial operations interact with the table (§3.2, Table 9).
///
/// Trivial operations (×0, ×1, 0÷x, x÷1, √0, √1) complete in a few cycles
/// on a conventional unit anyhow, so the paper studies three designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrivialPolicy {
    /// Trivial operations are looked up and inserted like all others
    /// (column "all" of Table 9).
    Memoize,
    /// Trivial operations never reach the table: the hit ratio is measured
    /// over non-trivial operations only (column "non"). This is the paper's
    /// default for every experiment outside Table 9.
    #[default]
    Exclude,
    /// A detector in front of the table recognises trivial operations and
    /// forwards their result immediately; they count as hits but do not
    /// occupy entries (column "intgr" — the best of both).
    Integrate,
}

/// Replacement policy within a set.
///
/// The paper only says "cache-like"; LRU is the natural reading for a
/// 4-way table and is the default. FIFO and random are provided for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict the least-recently *used* entry.
    #[default]
    Lru,
    /// Evict the oldest *inserted* entry.
    Fifo,
    /// Evict a pseudo-random entry (xorshift; deterministic per table).
    Random,
}

/// The function mapping operands to a set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashScheme {
    /// The paper's scheme (§3.1): XOR of the *n* least-significant bits of
    /// integer operands; XOR of the *n* most-significant mantissa bits of
    /// floating-point operands.
    #[default]
    PaperXor,
    /// A multiply-fold mixing hash over the full operand bits. Used to
    /// ablate how much of the conflict-miss behaviour (Figure 4's
    /// direct-mapped pathology) is due to the weak paper hash.
    FoldMix,
}

/// Errors produced when validating a [`MemoConfigBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoConfigError {
    /// The entry count must be a non-zero power of two.
    EntriesNotPowerOfTwo(usize),
    /// The way count must be non-zero and divide the entry count.
    BadAssociativity {
        /// Total entries requested.
        entries: usize,
        /// Ways requested.
        ways: usize,
    },
    /// A [`MemoConfig::from_stable_bytes`] blob failed to decode — wrong
    /// version, wrong length, or an unknown discriminant.
    BadEncoding(/* what failed */ String),
}

impl fmt::Display for MemoConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoConfigError::EntriesNotPowerOfTwo(n) => {
                write!(f, "entry count {n} is not a non-zero power of two")
            }
            MemoConfigError::BadAssociativity { entries, ways } => {
                write!(f, "{ways} ways do not evenly divide {entries} entries")
            }
            MemoConfigError::BadEncoding(detail) => {
                write!(f, "bad stable encoding: {detail}")
            }
        }
    }
}

impl std::error::Error for MemoConfigError {}

/// Version byte leading every [`MemoConfig::to_stable_bytes`] blob. Bump
/// on any layout change so persisted keys invalidate instead of aliasing.
pub const STABLE_ENCODING_VERSION: u8 = 1;

/// Fixed length of a [`MemoConfig::to_stable_bytes`] blob.
pub const STABLE_ENCODED_LEN: usize = 28;

/// A validated MEMO-TABLE configuration.
///
/// Construct via [`MemoConfig::builder`] or one of the presets
/// ([`MemoConfig::paper_default`]; the "infinite" reference configuration uses
/// [`crate::InfiniteMemoTable`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    entries: usize,
    assoc: Assoc,
    tag: TagPolicy,
    trivial: TrivialPolicy,
    replacement: Replacement,
    hash: HashScheme,
    commutative: bool,
    protection: Protection,
}

impl MemoConfig {
    /// Start building a configuration with `entries` total entries.
    #[must_use]
    pub fn builder(entries: usize) -> MemoConfigBuilder {
        MemoConfigBuilder {
            entries,
            assoc: Assoc::Ways(4),
            tag: TagPolicy::default(),
            trivial: TrivialPolicy::default(),
            replacement: Replacement::default(),
            hash: HashScheme::default(),
            commutative: true,
            protection: Protection::default(),
        }
    }

    /// The paper's basic configuration (§3.2): 32 entries in 8 sets of 4,
    /// full-value tags, trivial operations excluded, commutative probing.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::builder(32).build().expect("paper default is valid")
    }

    /// Total number of entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Associativity.
    #[must_use]
    pub fn assoc(&self) -> Assoc {
        self.assoc
    }

    /// Number of sets (`entries / ways`).
    #[must_use]
    pub fn sets(&self) -> usize {
        self.entries / self.assoc.ways(self.entries)
    }

    /// Number of ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.assoc.ways(self.entries)
    }

    /// Tag policy.
    #[must_use]
    pub fn tag(&self) -> TagPolicy {
        self.tag
    }

    /// Trivial-operation policy.
    #[must_use]
    pub fn trivial(&self) -> TrivialPolicy {
        self.trivial
    }

    /// Replacement policy.
    #[must_use]
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Index hash scheme.
    #[must_use]
    pub fn hash(&self) -> HashScheme {
        self.hash
    }

    /// Whether commutative operations probe both operand orders.
    #[must_use]
    pub fn commutative(&self) -> bool {
        self.commutative
    }

    /// Soft-error protection policy for stored entries.
    #[must_use]
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Encode every field into a fixed-width, platform-independent byte
    /// string, suitable as a persistent cache key: two configurations
    /// encode identically iff they are equal, and the layout is frozen
    /// behind [`STABLE_ENCODING_VERSION`] (unlike `Debug` or hash output,
    /// which may change between compiler or crate versions).
    ///
    /// Layout (all little-endian): version `u8`, entries `u64`, assoc tag
    /// `u8` + ways `u64`, tag/trivial/replacement/hash/commutative one
    /// `u8` each, protection tag `u8` + verify-cycles `u32`.
    #[must_use]
    pub fn to_stable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(STABLE_ENCODED_LEN);
        out.push(STABLE_ENCODING_VERSION);
        out.extend_from_slice(&(self.entries as u64).to_le_bytes());
        let (assoc_tag, ways) = match self.assoc {
            Assoc::DirectMapped => (0u8, 0u64),
            Assoc::Ways(n) => (1, n as u64),
            Assoc::Full => (2, 0),
        };
        out.push(assoc_tag);
        out.extend_from_slice(&ways.to_le_bytes());
        out.push(match self.tag {
            TagPolicy::FullValue => 0,
            TagPolicy::MantissaOnly => 1,
        });
        out.push(match self.trivial {
            TrivialPolicy::Memoize => 0,
            TrivialPolicy::Exclude => 1,
            TrivialPolicy::Integrate => 2,
        });
        out.push(match self.replacement {
            Replacement::Lru => 0,
            Replacement::Fifo => 1,
            Replacement::Random => 2,
        });
        out.push(match self.hash {
            HashScheme::PaperXor => 0,
            HashScheme::FoldMix => 1,
        });
        out.push(u8::from(self.commutative));
        let (prot_tag, verify) = match self.protection {
            Protection::None => (0u8, 0u32),
            Protection::ParityDetect => (1, 0),
            Protection::EccSecDed => (2, 0),
            Protection::VerifyOnHit { verify_cycles } => (3, verify_cycles),
        };
        out.push(prot_tag);
        out.extend_from_slice(&verify.to_le_bytes());
        debug_assert_eq!(out.len(), STABLE_ENCODED_LEN);
        out
    }

    /// Decode a [`to_stable_bytes`](Self::to_stable_bytes) blob, passing
    /// the result through the normal builder validation.
    ///
    /// # Errors
    ///
    /// [`MemoConfigError::BadEncoding`] on version/length/discriminant
    /// mismatch; the builder's own errors if the decoded geometry is
    /// invalid (a blob from a foreign writer, not this crate).
    pub fn from_stable_bytes(bytes: &[u8]) -> Result<MemoConfig, MemoConfigError> {
        let bad = |detail: &str| MemoConfigError::BadEncoding(detail.to_string());
        if bytes.len() != STABLE_ENCODED_LEN {
            return Err(bad("wrong length"));
        }
        if bytes[0] != STABLE_ENCODING_VERSION {
            return Err(bad("unknown version"));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let entries = usize::try_from(u64_at(1)).map_err(|_| bad("entries overflow"))?;
        let ways = usize::try_from(u64_at(10)).map_err(|_| bad("ways overflow"))?;
        let assoc = match bytes[9] {
            0 => Assoc::DirectMapped,
            1 => Assoc::Ways(ways),
            2 => Assoc::Full,
            _ => return Err(bad("unknown associativity")),
        };
        let tag = match bytes[18] {
            0 => TagPolicy::FullValue,
            1 => TagPolicy::MantissaOnly,
            _ => return Err(bad("unknown tag policy")),
        };
        let trivial = match bytes[19] {
            0 => TrivialPolicy::Memoize,
            1 => TrivialPolicy::Exclude,
            2 => TrivialPolicy::Integrate,
            _ => return Err(bad("unknown trivial policy")),
        };
        let replacement = match bytes[20] {
            0 => Replacement::Lru,
            1 => Replacement::Fifo,
            2 => Replacement::Random,
            _ => return Err(bad("unknown replacement policy")),
        };
        let hash = match bytes[21] {
            0 => HashScheme::PaperXor,
            1 => HashScheme::FoldMix,
            _ => return Err(bad("unknown hash scheme")),
        };
        let commutative = match bytes[22] {
            0 => false,
            1 => true,
            _ => return Err(bad("bad commutative flag")),
        };
        let verify_cycles =
            u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
        let protection = match bytes[23] {
            0 => Protection::None,
            1 => Protection::ParityDetect,
            2 => Protection::EccSecDed,
            3 => Protection::VerifyOnHit { verify_cycles },
            _ => return Err(bad("unknown protection policy")),
        };
        Self::builder(entries)
            .assoc(assoc)
            .tag(tag)
            .trivial(trivial)
            .replacement(replacement)
            .hash(hash)
            .commutative(commutative)
            .protection(protection)
            .build()
    }

    /// A stable, human-readable canonical form covering every field —
    /// two configurations render identically iff they are equal, so the
    /// string can serve as a cache or map key across processes.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "entries={};assoc={};tag={:?};trivial={:?};repl={:?};hash={:?};comm={};prot={:?}",
            self.entries,
            self.assoc.canonical(),
            self.tag,
            self.trivial,
            self.replacement,
            self.hash,
            self.commutative,
            self.protection,
        )
    }
}

impl Default for MemoConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for MemoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} entries, {}", self.entries, self.assoc)
    }
}

/// Builder for [`MemoConfig`]; see [`MemoConfig::builder`].
#[derive(Debug, Clone)]
pub struct MemoConfigBuilder {
    entries: usize,
    assoc: Assoc,
    tag: TagPolicy,
    trivial: TrivialPolicy,
    replacement: Replacement,
    hash: HashScheme,
    commutative: bool,
    protection: Protection,
}

impl MemoConfigBuilder {
    /// Set the associativity (default: 4-way).
    #[must_use]
    pub fn assoc(mut self, assoc: Assoc) -> Self {
        self.assoc = assoc;
        self
    }

    /// Set the tag policy (default: full value).
    #[must_use]
    pub fn tag(mut self, tag: TagPolicy) -> Self {
        self.tag = tag;
        self
    }

    /// Set the trivial-operation policy (default: exclude).
    #[must_use]
    pub fn trivial(mut self, trivial: TrivialPolicy) -> Self {
        self.trivial = trivial;
        self
    }

    /// Set the replacement policy (default: LRU).
    #[must_use]
    pub fn replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Set the index hash scheme (default: the paper's XOR).
    #[must_use]
    pub fn hash(mut self, hash: HashScheme) -> Self {
        self.hash = hash;
        self
    }

    /// Enable or disable dual-order probing of commutative operations
    /// (default: enabled, per §2.2).
    #[must_use]
    pub fn commutative(mut self, commutative: bool) -> Self {
        self.commutative = commutative;
        self
    }

    /// Set the soft-error protection policy (default: none, the paper's
    /// implicit assumption).
    #[must_use]
    pub fn protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemoConfigError`] if the entry count is not a non-zero
    /// power of two, or the way count does not evenly divide it.
    pub fn build(self) -> Result<MemoConfig, MemoConfigError> {
        if self.entries == 0 || !self.entries.is_power_of_two() {
            return Err(MemoConfigError::EntriesNotPowerOfTwo(self.entries));
        }
        let ways = self.assoc.ways(self.entries);
        if ways == 0 || !self.entries.is_multiple_of(ways) || !(self.entries / ways).is_power_of_two() {
            return Err(MemoConfigError::BadAssociativity { entries: self.entries, ways });
        }
        Ok(MemoConfig {
            entries: self.entries,
            assoc: self.assoc,
            tag: self.tag,
            trivial: self.trivial,
            replacement: self.replacement,
            hash: self.hash,
            commutative: self.commutative,
            protection: self.protection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let cfg = MemoConfig::paper_default();
        assert_eq!(cfg.entries(), 32);
        assert_eq!(cfg.ways(), 4);
        assert_eq!(cfg.sets(), 8);
        assert_eq!(cfg.tag(), TagPolicy::FullValue);
        assert_eq!(cfg.trivial(), TrivialPolicy::Exclude);
        assert!(cfg.commutative());
        assert_eq!(cfg.protection(), Protection::None);
    }

    #[test]
    fn protection_is_configurable() {
        let cfg = MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap();
        assert_eq!(cfg.protection(), Protection::EccSecDed);
    }

    #[test]
    fn rejects_non_power_of_two_entries() {
        assert_eq!(
            MemoConfig::builder(24).build().unwrap_err(),
            MemoConfigError::EntriesNotPowerOfTwo(24)
        );
        assert_eq!(
            MemoConfig::builder(0).build().unwrap_err(),
            MemoConfigError::EntriesNotPowerOfTwo(0)
        );
    }

    #[test]
    fn rejects_bad_associativity() {
        let err = MemoConfig::builder(32).assoc(Assoc::Ways(3)).build().unwrap_err();
        assert_eq!(err, MemoConfigError::BadAssociativity { entries: 32, ways: 3 });
        // 32 / 6 isn't integral.
        assert!(MemoConfig::builder(32).assoc(Assoc::Ways(6)).build().is_err());
    }

    #[test]
    fn assoc_parse_inverts_canonical() {
        for assoc in [Assoc::DirectMapped, Assoc::Ways(4), Assoc::Full] {
            assert_eq!(Assoc::parse(&assoc.canonical()), Some(assoc));
        }
        assert_eq!(Assoc::parse("1"), Some(Assoc::DirectMapped));
        assert_eq!(Assoc::parse("0"), None);
        assert_eq!(Assoc::parse("sideways"), None);
    }

    #[test]
    fn canonical_distinguishes_configurations() {
        let a = MemoConfig::paper_default();
        let b = MemoConfig::builder(32).assoc(Assoc::Full).build().unwrap();
        let c = MemoConfig::builder(32).commutative(false).build().unwrap();
        assert_eq!(a.canonical(), MemoConfig::paper_default().canonical());
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
        assert!(a.canonical().contains("entries=32"));
    }

    #[test]
    fn full_associativity_is_one_set() {
        let cfg = MemoConfig::builder(64).assoc(Assoc::Full).build().unwrap();
        assert_eq!(cfg.sets(), 1);
        assert_eq!(cfg.ways(), 64);
    }

    #[test]
    fn direct_mapped_is_one_way() {
        let cfg = MemoConfig::builder(32).assoc(Assoc::DirectMapped).build().unwrap();
        assert_eq!(cfg.sets(), 32);
        assert_eq!(cfg.ways(), 1);
    }

    #[test]
    fn stable_bytes_roundtrip_every_field_combination() {
        let configs = vec![
            MemoConfig::paper_default(),
            MemoConfig::builder(64)
                .assoc(Assoc::DirectMapped)
                .tag(TagPolicy::MantissaOnly)
                .trivial(TrivialPolicy::Integrate)
                .replacement(Replacement::Fifo)
                .hash(HashScheme::FoldMix)
                .commutative(false)
                .protection(Protection::ParityDetect)
                .build()
                .unwrap(),
            MemoConfig::builder(128)
                .assoc(Assoc::Full)
                .trivial(TrivialPolicy::Memoize)
                .replacement(Replacement::Random)
                .protection(Protection::VerifyOnHit { verify_cycles: 7 })
                .build()
                .unwrap(),
            MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap(),
        ];
        for cfg in configs {
            let bytes = cfg.to_stable_bytes();
            assert_eq!(bytes.len(), STABLE_ENCODED_LEN);
            assert_eq!(MemoConfig::from_stable_bytes(&bytes).unwrap(), cfg);
        }
    }

    #[test]
    fn stable_bytes_are_injective() {
        let a = MemoConfig::paper_default().to_stable_bytes();
        let b = MemoConfig::builder(32).commutative(false).build().unwrap().to_stable_bytes();
        let c = MemoConfig::builder(64).build().unwrap().to_stable_bytes();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn stable_bytes_reject_damage() {
        let bytes = MemoConfig::paper_default().to_stable_bytes();
        assert!(matches!(
            MemoConfig::from_stable_bytes(&bytes[..10]),
            Err(MemoConfigError::BadEncoding(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(matches!(
            MemoConfig::from_stable_bytes(&wrong_version),
            Err(MemoConfigError::BadEncoding(_))
        ));
        let mut bad_tag = bytes.clone();
        bad_tag[18] = 42;
        assert!(matches!(
            MemoConfig::from_stable_bytes(&bad_tag),
            Err(MemoConfigError::BadEncoding(_))
        ));
        // A structurally valid blob with invalid geometry goes through
        // builder validation.
        let mut bad_geometry = bytes;
        bad_geometry[1..9].copy_from_slice(&24u64.to_le_bytes());
        assert!(matches!(
            MemoConfig::from_stable_bytes(&bad_geometry),
            Err(MemoConfigError::EntriesNotPowerOfTwo(24))
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemoConfig::paper_default().to_string(), "32 entries, 4-way");
        assert_eq!(Assoc::DirectMapped.to_string(), "direct-mapped");
        assert_eq!(Assoc::Full.to_string(), "fully-associative");
    }

    #[test]
    fn error_display() {
        let e = MemoConfigError::EntriesNotPowerOfTwo(7);
        assert!(e.to_string().contains("7"));
        let e = MemoConfigError::BadAssociativity { entries: 32, ways: 5 };
        assert!(e.to_string().contains("32") && e.to_string().contains("5"));
    }
}

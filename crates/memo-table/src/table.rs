//! The finite, set-associative MEMO-TABLE (§2.1–§2.2).

use crate::batch::{compute_bits, BatchOutcome, OpBatch, MAX_BATCH_WIDTH};
use crate::config::{HashScheme, MemoConfig, Replacement, TagPolicy, TrivialPolicy};
use crate::fault::{FaultInjector, Protection};
use crate::key::{
    decode_value, encode_tag, encode_value, fill_set_indices, fill_swapped_tags, fill_tags,
    set_index, Key,
};
use crate::op::{Op, Value};
use crate::stats::MemoStats;
use crate::trivial::{fill_trivial_lanes, trivial_result};
use crate::Memoizer;

/// Result of presenting operands to a memo table (the lookup phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// The table holds the result: the computation unit can be aborted and
    /// the value forwarded to write-back after a single cycle.
    Hit(Value),
    /// The integrated trivial-operation detector produced the result
    /// (only under [`TrivialPolicy::Integrate`]).
    Trivial(Value),
    /// The operation is trivial and was filtered before the table (only
    /// under [`TrivialPolicy::Exclude`]); the conventional unit computes it
    /// and nothing is recorded.
    Filtered,
    /// No matching entry; the conventional computation proceeds and its
    /// result should be offered to [`Memoizer::update`].
    Miss,
}

/// How an operation was ultimately satisfied (the complete probe→compute→
/// update cycle of [`Memoizer::execute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfied by the table in a single cycle.
    Hit,
    /// Satisfied by the integrated trivial detector in a single cycle.
    Trivial,
    /// Trivial, filtered before the table, computed conventionally.
    Filtered,
    /// Computed conventionally at full latency; result inserted.
    Miss,
}

impl Outcome {
    /// `true` when the operation completed in a single cycle instead of the
    /// unit's full latency.
    #[must_use]
    pub fn avoided_computation(self) -> bool {
        matches!(self, Outcome::Hit | Outcome::Trivial)
    }
}

/// A fully executed operation: its (bit-exact) value and how it was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Executed {
    /// The operation's result — always identical to [`Op::compute`].
    pub value: Value,
    /// How the result was obtained.
    pub outcome: Outcome,
}

#[derive(Debug, Clone)]
struct Entry {
    /// The tag as stored — may drift from `clean_key` under tag faults.
    key: Key,
    /// The tag as written at insert time (the checker's reference).
    clean_key: Key,
    /// The payload as stored — may drift from `clean` under value faults.
    value: u64,
    /// The payload as written at insert time (what the entry's parity/ECC
    /// bits were computed over; the Hamming distance `value ^ clean` is
    /// exactly the error count a real checker would see).
    clean: u64,
    last_use: u64,
    inserted: u64,
}

/// A finite, set-associative memo table.
///
/// See the [crate docs](crate) for the big picture and [`MemoConfig`] for
/// the design space. All state is owned; the table is `Send`.
///
/// # Examples
///
/// ```
/// use memo_table::{Assoc, MemoConfig, MemoTable, Memoizer, Op, Outcome};
///
/// let cfg = MemoConfig::builder(16).assoc(Assoc::Ways(2)).build()?;
/// let mut t = MemoTable::new(cfg);
/// assert_eq!(t.execute(Op::IntMul(6, 7)).outcome, Outcome::Miss);
/// assert_eq!(t.execute(Op::IntMul(6, 7)).outcome, Outcome::Hit);
/// // Commutative probing: the swapped order also hits (§2.2).
/// assert_eq!(t.execute(Op::IntMul(7, 6)).outcome, Outcome::Hit);
/// # Ok::<(), memo_table::MemoConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoTable {
    cfg: MemoConfig,
    slots: Vec<Option<Entry>>,
    clock: u64,
    stats: MemoStats,
    rng: u64,
    injector: Option<FaultInjector>,
}

impl MemoTable {
    /// Create an empty table with the given configuration.
    #[must_use]
    pub fn new(cfg: MemoConfig) -> Self {
        MemoTable {
            cfg,
            slots: vec![None; cfg.entries()],
            clock: 0,
            stats: MemoStats::new(),
            rng: 0x9E37_79B9_7F4A_7C15,
            injector: None,
        }
    }

    /// Attach a soft-error process; the table consults it on every probe.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attach or detach the soft-error process in place.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// The attached soft-error process, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &MemoConfig {
        &self.cfg
    }

    /// Number of valid entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Hit ratio under this table's own trivial policy — the number the
    /// paper's tables report.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio(self.cfg.trivial())
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Search one set for `key`; on success refresh its LRU stamp and
    /// return the matching slot index.
    fn lookup_in_set(&mut self, set: usize, key: Key) -> Option<usize> {
        let ways = self.cfg.ways();
        let base = set * ways;
        let stamp = self.tick();
        for (offset, slot) in self.slots[base..base + ways].iter_mut().enumerate() {
            if let Some(entry) = slot {
                if entry.key == key {
                    entry.last_use = stamp;
                    return Some(base + offset);
                }
            }
        }
        None
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn insert(&mut self, set: usize, key: Key, value: u64) {
        let ways = self.cfg.ways();
        let base = set * ways;
        let stamp = self.tick();

        // Prefer an invalid slot.
        if let Some(slot) = self.slots[base..base + ways].iter_mut().find(|s| s.is_none()) {
            *slot =
                Some(Entry { key, clean_key: key, value, clean: value, last_use: stamp, inserted: stamp });
            self.stats.insertions += 1;
            return;
        }

        // All ways valid: pick a victim.
        let victim_way = match self.cfg.replacement() {
            Replacement::Lru => (0..ways)
                .min_by_key(|&w| self.slots[base + w].as_ref().map(|e| e.last_use))
                .expect("ways >= 1"),
            Replacement::Fifo => (0..ways)
                .min_by_key(|&w| self.slots[base + w].as_ref().map(|e| e.inserted))
                .expect("ways >= 1"),
            Replacement::Random => (self.next_random() % ways as u64) as usize,
        };
        self.slots[base + victim_way] =
            Some(Entry { key, clean_key: key, value, clean: value, last_use: stamp, inserted: stamp });
        self.stats.insertions += 1;
        self.stats.evictions += 1;
    }

    /// Tag maintenance for one probed set: the protection policy scrubs
    /// entries whose stored tag has drifted from its checked reference, and
    /// the injector may then strike a new tag bit.
    ///
    /// A tag-corrupted entry can no longer match its operands (a false
    /// miss), so it costs hit ratio rather than correctness; parity and
    /// SEC-DED additionally notice the corruption on the next probe of the
    /// set and either repair (single flips, SEC-DED) or invalidate it.
    /// [`Protection::VerifyOnHit`] only checks *served* values, so it never
    /// sees unreachable entries.
    fn scrub_and_strike_tags(&mut self, set: usize) {
        let ways = self.cfg.ways();
        let base = set * ways;

        match self.cfg.protection() {
            Protection::None | Protection::VerifyOnHit { .. } => {}
            Protection::ParityDetect => {
                for slot in self.slots[base..base + ways].iter_mut() {
                    if let Some(e) = slot {
                        let errs = (e.key.tag ^ e.clean_key.tag).count_ones();
                        if errs % 2 == 1 {
                            self.stats.faults_detected += 1;
                            *slot = None;
                        }
                    }
                }
            }
            Protection::EccSecDed => {
                for slot in self.slots[base..base + ways].iter_mut() {
                    if let Some(e) = slot {
                        match (e.key.tag ^ e.clean_key.tag).count_ones() {
                            0 => {}
                            1 => {
                                e.key = e.clean_key;
                                self.stats.faults_corrected += 1;
                            }
                            _ => {
                                self.stats.faults_detected += 1;
                                *slot = None;
                            }
                        }
                    }
                }
            }
        }

        let Some(injector) = &mut self.injector else { return };
        let Some((way_draw, bit)) = injector.tag_strike() else { return };
        // Pick the n-th valid entry without collecting indices — this runs
        // on every probed set when an injector is attached, so it must not
        // allocate.
        let valid = self.slots[base..base + ways].iter().filter(|s| s.is_some()).count();
        if valid == 0 {
            return;
        }
        let target = (way_draw % valid as u64) as usize;
        let victim = (base..base + ways)
            .filter(|&i| self.slots[i].is_some())
            .nth(target)
            .expect("target < valid count");
        let entry = self.slots[victim].as_mut().expect("victim slot is valid");
        entry.key.tag ^= 1u128 << bit;
        self.stats.faults_injected += 1;
    }

    /// Read a matched entry through the fault process and the protection
    /// policy. `None` means the hit was downgraded to a miss (corruption
    /// detected, entry invalidated) or the payload cannot be decoded.
    fn read_protected(&mut self, op: &Op, slot: usize) -> Option<Value> {
        // New soft errors strike the cell itself: persist them.
        if let Some(injector) = &mut self.injector {
            if let Some(mask) = injector.value_strike() {
                let entry = self.slots[slot].as_mut().expect("matched slot is valid");
                entry.value ^= mask;
                self.stats.faults_injected += 1;
            }
        }

        let entry = self.slots[slot].as_ref().expect("matched slot is valid");
        let clean = entry.clean;
        let mut read = entry.value;
        // Stuck-at defects corrupt the read, not the cell contents.
        if let Some(injector) = &self.injector {
            let stuck = injector.apply_stuck(slot, read);
            if stuck != read {
                self.stats.faults_injected += 1;
                read = stuck;
            }
        }

        let tag = self.cfg.tag();
        let errs = (read ^ clean).count_ones();
        if errs == 0 {
            return match decode_value(op, read, tag) {
                Some(v) => Some(v),
                None => {
                    // Tag matched but the exponent path cannot reconstruct
                    // the result for these operands (mantissa mode only):
                    // the hardware falls back to the conventional unit.
                    self.stats.bypasses += 1;
                    None
                }
            };
        }

        let truth = decode_value(op, clean, tag);
        let serve_corrupted = |table: &mut Self, value: u64| match decode_value(op, value, tag) {
            Some(seen) => {
                if Some(seen) != truth {
                    table.stats.faults_silent += 1;
                }
                Some(seen)
            }
            None => {
                table.stats.bypasses += 1;
                None
            }
        };

        match self.cfg.protection() {
            Protection::None => serve_corrupted(self, read),
            Protection::ParityDetect => {
                if errs % 2 == 1 {
                    self.stats.faults_detected += 1;
                    self.slots[slot] = None;
                    None
                } else {
                    // An even error count escapes parity.
                    serve_corrupted(self, read)
                }
            }
            Protection::EccSecDed => match errs {
                1 => {
                    self.stats.faults_corrected += 1;
                    let entry = self.slots[slot].as_mut().expect("matched slot is valid");
                    entry.value = clean;
                    match decode_value(op, clean, tag) {
                        Some(v) => Some(v),
                        None => {
                            self.stats.bypasses += 1;
                            None
                        }
                    }
                }
                2 => {
                    self.stats.faults_detected += 1;
                    self.slots[slot] = None;
                    None
                }
                // Three or more flips exceed SEC-DED's guarantee: treat as
                // an (undetected) miscorrection and serve the raw read.
                _ => serve_corrupted(self, read),
            },
            Protection::VerifyOnHit { .. } => {
                // The conventional unit recomputes; any served mismatch is
                // caught. Corruption invisible in the decoded value (unused
                // stored bits) passes verification legitimately.
                let seen = decode_value(op, read, tag);
                if seen.is_some() && seen == truth {
                    seen
                } else {
                    self.stats.faults_detected += 1;
                    self.slots[slot] = None;
                    None
                }
            }
        }
    }

    /// Probe for `op` with its tag and set already derived. Returns the
    /// decoded value on a tag match whose result is reconstructible and
    /// survives the protection policy's corruption check.
    ///
    /// Tag encoding and set hashing happen exactly once per operand order
    /// (in the callers) — not once for the existence check and again for
    /// the lookup, and not a third time for the insert after a miss.
    fn probe_keyed(&mut self, op: &Op, key: Key, set: usize) -> Option<Value> {
        if self.injector.is_some() || self.cfg.protection() != Protection::None {
            self.scrub_and_strike_tags(set);
        }
        let slot = self.lookup_in_set(set, key)?;
        self.read_protected(op, slot)
    }

    /// Probe the swapped operand order of a commutative operation (§2.2).
    fn probe_commutative(&mut self, op: &Op) -> Option<Value> {
        if !self.cfg.commutative() {
            return None;
        }
        let swapped = op.swapped()?;
        let key = encode_tag(&swapped, self.cfg.tag())?;
        let set = set_index(&swapped, self.cfg.sets(), self.cfg.hash());
        let v = self.probe_keyed(&swapped, key, set)?;
        self.stats.table_hits += 1;
        self.stats.commutative_hits += 1;
        Some(v)
    }

    /// Shared front half of [`Memoizer::probe`] and the overridden
    /// [`Memoizer::execute`]: trivial handling, tag encoding, and the
    /// lookup. `Err(probe)` is an early decision; `Ok((key, set))` means
    /// the lookup missed and the derived key/set are reusable for insert.
    fn probe_front(&mut self, op: &Op) -> Result<(Key, usize), Probe> {
        self.stats.ops_seen += 1;

        if let Some((_, value)) = trivial_result(op) {
            self.stats.trivial_seen += 1;
            match self.cfg.trivial() {
                TrivialPolicy::Exclude => return Err(Probe::Filtered),
                TrivialPolicy::Integrate => return Err(Probe::Trivial(value)),
                TrivialPolicy::Memoize => {} // falls through to the table
            }
        }

        self.stats.table_lookups += 1;

        let Some(key) = encode_tag(op, self.cfg.tag()) else {
            // Operands not representable under the tag policy: the lookup
            // simply misses (and the insert path declines to store).
            self.stats.bypasses += 1;
            return Err(Probe::Miss);
        };
        let set = set_index(op, self.cfg.sets(), self.cfg.hash());

        if let Some(v) = self.probe_keyed(op, key, set) {
            self.stats.table_hits += 1;
            return Err(Probe::Hit(v));
        }
        if let Some(v) = self.probe_commutative(op) {
            return Err(Probe::Hit(v));
        }
        Ok((key, set))
    }

    /// Lane-parallel batch execution for fault-free, unprotected
    /// **full-value** tables — the paper-default configuration and the hot
    /// path of every sweep.
    ///
    /// Under [`TagPolicy::FullValue`] every lane is encodable (no bypass
    /// lanes) and a matched payload always decodes, so the whole per-lane
    /// cascade collapses: trivial masks and set indices are filled in
    /// lane-parallel loops, tags are two raw-column loads folded inline,
    /// and the serial resolve keeps the clock and every statistic in
    /// registers, flushing to the table's counters once per batch. The
    /// decision sequence per lane — probe, swapped probe, insert, every
    /// clock tick and LRU stamp — is exactly the scalar one, so state and
    /// stats land bit-identical to [`Memoizer::execute`] lane by lane.
    fn execute_batch_lanes_full(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        debug_assert!(self.injector.is_none() && self.cfg.protection() == Protection::None);
        debug_assert_eq!(self.cfg.tag(), TagPolicy::FullValue);
        let kind = batch.kind();
        let scheme = self.cfg.hash();
        let sets = self.cfg.sets();
        let ways = self.cfg.ways();
        let trivial_policy = self.cfg.trivial();
        let commutative = self.cfg.commutative() && kind.is_commutative();
        let swap_hashes = commutative && scheme == HashScheme::FoldMix;

        let mut out = BatchOutcome::default();
        let (mut ops_seen, mut trivial_seen, mut lookups) = (0u64, 0u64, 0u64);
        let (mut hits, mut comm_hits) = (0u64, 0u64);
        let mut clock = self.clock;

        let mut start = 0usize;
        while start < batch.len() {
            let w = (batch.len() - start).min(MAX_BATCH_WIDTH);
            let a = &batch.a()[start..start + w];
            let b = if batch.b().is_empty() { &[][..] } else { &batch.b()[start..start + w] };
            start += w;

            let mut trivial = [false; MAX_BATCH_WIDTH];
            let mut set_idx = [0u32; MAX_BATCH_WIDTH];
            let mut swapped_set_idx = [0u32; MAX_BATCH_WIDTH];
            fill_trivial_lanes(kind, a, b, &mut trivial[..w]);
            fill_set_indices(kind, scheme, sets, a, b, false, &mut set_idx[..w]);
            if swap_hashes {
                fill_set_indices(kind, scheme, sets, a, b, true, &mut swapped_set_idx[..w]);
            }

            for i in 0..w {
                ops_seen += 1;
                if trivial[i] {
                    trivial_seen += 1;
                    match trivial_policy {
                        TrivialPolicy::Exclude => continue,
                        TrivialPolicy::Integrate => {
                            out.trivials += 1;
                            continue;
                        }
                        TrivialPolicy::Memoize => {}
                    }
                }
                lookups += 1;
                let ai = a[i];
                let bi = if b.is_empty() { ai } else { b[i] };
                let tag = ((ai as u128) << 64) | bi as u128;
                let set = set_idx[i] as usize;
                let base = set * ways;

                clock += 1;
                let mut matched = false;
                for e in self.slots[base..base + ways].iter_mut().flatten() {
                    if e.key.tag == tag && e.key.kind == kind {
                        e.last_use = clock;
                        matched = true;
                        break;
                    }
                }
                if matched {
                    hits += 1;
                    out.hits += 1;
                    continue;
                }

                if commutative {
                    let stag = ((bi as u128) << 64) | ai as u128;
                    let sbase =
                        if swap_hashes { swapped_set_idx[i] as usize * ways } else { base };
                    clock += 1;
                    for e in self.slots[sbase..sbase + ways].iter_mut().flatten() {
                        if e.key.tag == stag && e.key.kind == kind {
                            e.last_use = clock;
                            matched = true;
                            break;
                        }
                    }
                    if matched {
                        hits += 1;
                        comm_hits += 1;
                        out.hits += 1;
                        continue;
                    }
                }

                // Miss: compute and insert, syncing the register clock with
                // the shared helper's tick.
                self.clock = clock;
                self.insert(set, Key { kind, tag }, compute_bits(kind, ai, bi));
                clock = self.clock;
            }
        }

        self.clock = clock;
        self.stats.ops_seen += ops_seen;
        self.stats.trivial_seen += trivial_seen;
        self.stats.table_lookups += lookups;
        self.stats.table_hits += hits;
        self.stats.commutative_hits += comm_hits;
        out
    }

    /// Lane-parallel batch execution for fault-free, unprotected tables
    /// (the mantissa-only generic path; full-value tables take
    /// [`Self::execute_batch_lanes_full`]).
    ///
    /// The per-op front end — trivial classification, tag encoding, set
    /// hashing (for both operand orders of a commutative kind) — runs as
    /// plain loops over the operand columns, one kind/policy dispatch per
    /// tile. The serial half (set scans, LRU stamps, insertions) then
    /// replays the exact scalar decision sequence per lane, calling the
    /// same `lookup_in_set`/`insert` helpers in the same order so every
    /// clock tick, stamp, and statistics increment lands identically to
    /// [`Memoizer::execute`] on each lane in turn.
    fn execute_batch_lanes(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        debug_assert!(self.injector.is_none() && self.cfg.protection() == Protection::None);
        let kind = batch.kind();
        let policy = self.cfg.tag();
        let scheme = self.cfg.hash();
        let sets = self.cfg.sets();
        let trivial_policy = self.cfg.trivial();
        let commutative = self.cfg.commutative() && kind.is_commutative();
        // PaperXor is symmetric under operand swap; only FoldMix needs a
        // second hash column for the swapped probe.
        let swap_hashes = commutative && scheme == HashScheme::FoldMix;

        let mut out = BatchOutcome::default();
        let mut start = 0usize;
        while start < batch.len() {
            let w = (batch.len() - start).min(MAX_BATCH_WIDTH);
            let tile = batch.slice(start, w);
            start += w;
            let (a, b) = (tile.a(), tile.b());

            let mut trivial = [false; MAX_BATCH_WIDTH];
            let mut valid = [false; MAX_BATCH_WIDTH];
            let mut tags = [0u128; MAX_BATCH_WIDTH];
            let mut set_idx = [0u32; MAX_BATCH_WIDTH];
            let mut swapped_tags = [0u128; MAX_BATCH_WIDTH];
            let mut swapped_set_idx = [0u32; MAX_BATCH_WIDTH];

            fill_trivial_lanes(kind, a, b, &mut trivial[..w]);
            fill_tags(kind, policy, a, b, &mut tags[..w], &mut valid[..w]);
            fill_set_indices(kind, scheme, sets, a, b, false, &mut set_idx[..w]);
            if commutative {
                fill_swapped_tags(kind, policy, a, b, &mut swapped_tags[..w]);
                if swap_hashes {
                    fill_set_indices(kind, scheme, sets, a, b, true, &mut swapped_set_idx[..w]);
                }
            }

            for i in 0..w {
                self.stats.ops_seen += 1;
                if trivial[i] {
                    self.stats.trivial_seen += 1;
                    match trivial_policy {
                        TrivialPolicy::Exclude => continue,
                        TrivialPolicy::Integrate => {
                            out.trivials += 1;
                            continue;
                        }
                        TrivialPolicy::Memoize => {}
                    }
                }
                self.stats.table_lookups += 1;
                if !valid[i] {
                    self.stats.bypasses += 1;
                    continue;
                }
                let key = Key { kind, tag: tags[i] };
                let set = set_idx[i] as usize;

                if let Some(slot) = self.lookup_in_set(set, key) {
                    match policy {
                        // Full-value payloads always decode; the value
                        // itself is not materialized here.
                        TagPolicy::FullValue => {
                            self.stats.table_hits += 1;
                            out.hits += 1;
                            continue;
                        }
                        TagPolicy::MantissaOnly => {
                            let read =
                                self.slots[slot].as_ref().expect("matched slot is valid").value;
                            if decode_value(&tile.op(i), read, policy).is_some() {
                                self.stats.table_hits += 1;
                                out.hits += 1;
                                continue;
                            }
                            // Exponent path cannot reconstruct: falls
                            // through to the swapped probe, then insert.
                            self.stats.bypasses += 1;
                        }
                    }
                }

                if commutative {
                    let skey = Key { kind, tag: swapped_tags[i] };
                    let sset = if swap_hashes { swapped_set_idx[i] as usize } else { set };
                    if let Some(slot) = self.lookup_in_set(sset, skey) {
                        match policy {
                            TagPolicy::FullValue => {
                                self.stats.table_hits += 1;
                                self.stats.commutative_hits += 1;
                                out.hits += 1;
                                continue;
                            }
                            TagPolicy::MantissaOnly => {
                                let read =
                                    self.slots[slot].as_ref().expect("matched slot is valid").value;
                                let swapped = tile.op(i).swapped().expect("commutative kind");
                                if decode_value(&swapped, read, policy).is_some() {
                                    self.stats.table_hits += 1;
                                    self.stats.commutative_hits += 1;
                                    out.hits += 1;
                                    continue;
                                }
                                self.stats.bypasses += 1;
                            }
                        }
                    }
                }

                // Miss: compute and insert, reusing the derived key/set.
                match policy {
                    TagPolicy::FullValue => {
                        let b_lane = if b.is_empty() { a[i] } else { b[i] };
                        self.insert(set, key, compute_bits(kind, a[i], b_lane));
                    }
                    TagPolicy::MantissaOnly => {
                        let op = tile.op(i);
                        match encode_value(&op, op.compute(), policy) {
                            Some(stored) => self.insert(set, key, stored),
                            None => self.stats.bypasses += 1,
                        }
                    }
                }
            }
        }
        out
    }
}

impl Memoizer for MemoTable {
    fn probe(&mut self, op: Op) -> Probe {
        match self.probe_front(&op) {
            Err(probe) => probe,
            Ok(_) => Probe::Miss,
        }
    }

    /// Specialized probe→compute→insert cycle: the tag and set index
    /// derived during the probe are reused by the insert after a miss,
    /// instead of being recomputed by [`Memoizer::update`]. This is the
    /// sweep hot path — every replayed trace operation lands here.
    fn execute(&mut self, op: Op) -> Executed {
        match self.probe_front(&op) {
            Err(Probe::Hit(v)) => Executed { value: v, outcome: Outcome::Hit },
            Err(Probe::Trivial(v)) => Executed { value: v, outcome: Outcome::Trivial },
            Err(Probe::Filtered) => {
                Executed { value: op.compute(), outcome: Outcome::Filtered }
            }
            Err(Probe::Miss) => {
                // Tag not encodable: computed conventionally, never stored.
                Executed { value: op.compute(), outcome: Outcome::Miss }
            }
            Ok((key, set)) => {
                let value = op.compute();
                match encode_value(&op, value, self.cfg.tag()) {
                    Some(stored) => self.insert(set, key, stored),
                    None => self.stats.bypasses += 1,
                }
                Executed { value, outcome: Outcome::Miss }
            }
        }
    }

    /// Batched execution with a lane-parallel front end. Fault injection
    /// and protection scrubbing mutate per-probe state (strike draws,
    /// scrubs, invalidations), so protected or fault-injected tables take
    /// the scalar path — still batch-decoded, still bit-identical.
    fn execute_batch(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        if self.injector.is_some() || self.cfg.protection() != Protection::None {
            let mut out = BatchOutcome::default();
            for i in 0..batch.len() {
                match self.execute(batch.op(i)).outcome {
                    Outcome::Hit => out.hits += 1,
                    Outcome::Trivial => out.trivials += 1,
                    Outcome::Filtered | Outcome::Miss => {}
                }
            }
            return out;
        }
        match self.cfg.tag() {
            TagPolicy::FullValue => self.execute_batch_lanes_full(batch),
            TagPolicy::MantissaOnly => self.execute_batch_lanes(batch),
        }
    }

    fn update(&mut self, op: Op, result: Value) {
        debug_assert_eq!(result, op.compute(), "update must receive the true result");

        if trivial_result(&op).is_some() && self.cfg.trivial() != TrivialPolicy::Memoize {
            return;
        }
        let Some(key) = encode_tag(&op, self.cfg.tag()) else { return };
        let Some(value) = encode_value(&op, result, self.cfg.tag()) else {
            self.stats.bypasses += 1;
            return;
        };
        let set = set_index(&op, self.cfg.sets(), self.cfg.hash());
        self.insert(set, key, value);
    }

    fn stats(&self) -> MemoStats {
        self.stats
    }

    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.clock = 0;
        self.stats = MemoStats::new();
        self.rng = 0x9E37_79B9_7F4A_7C15;
        // Restart the error process from its seed so a reset table replays
        // deterministically.
        self.injector = self.injector.as_ref().map(|i| FaultInjector::new(i.config()));
    }

    fn hit_penalty(&self) -> u32 {
        self.cfg.protection().hit_penalty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Assoc, HashScheme, TagPolicy};

    fn table(entries: usize, ways: usize) -> MemoTable {
        MemoTable::new(MemoConfig::builder(entries).assoc(Assoc::Ways(ways)).build().unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        assert_eq!(t.execute(Op::FpMul(2.5, 4.0)).outcome, Outcome::Miss);
        let e = t.execute(Op::FpMul(2.5, 4.0));
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, Value::Fp(10.0));
        assert_eq!(t.stats().table_hits, 1);
        assert_eq!(t.stats().insertions, 1);
    }

    #[test]
    fn division_is_not_commutative() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(8.0, 2.0));
        assert_eq!(t.execute(Op::FpDiv(2.0, 8.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn commutative_probe_hits_swapped_order() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpMul(3.0, 7.0));
        let e = t.execute(Op::FpMul(7.0, 3.0));
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, Value::Fp(21.0));
        assert_eq!(t.stats().commutative_hits, 1);
    }

    #[test]
    fn commutative_probe_can_be_disabled() {
        let cfg = MemoConfig::builder(32).commutative(false).build().unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpMul(3.0, 7.0));
        assert_eq!(t.execute(Op::FpMul(7.0, 3.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Fully associative 2-entry table isolates replacement behaviour.
        let cfg = MemoConfig::builder(2).assoc(Assoc::Full).build().unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpDiv(10.0, 2.0)); // A
        t.execute(Op::FpDiv(20.0, 2.0)); // B
        t.execute(Op::FpDiv(10.0, 2.0)); // touch A => B is LRU
        t.execute(Op::FpDiv(30.0, 2.0)); // C evicts B
        assert_eq!(t.execute(Op::FpDiv(10.0, 2.0)).outcome, Outcome::Hit, "A survives");
        assert_eq!(t.execute(Op::FpDiv(20.0, 2.0)).outcome, Outcome::Miss, "B evicted");
        assert!(t.stats().evictions >= 1);
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let cfg = MemoConfig::builder(2)
            .assoc(Assoc::Full)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpDiv(10.0, 2.0)); // A (oldest)
        t.execute(Op::FpDiv(20.0, 2.0)); // B
        t.execute(Op::FpDiv(10.0, 2.0)); // touch A — irrelevant to FIFO
        t.execute(Op::FpDiv(30.0, 2.0)); // C evicts A
        assert_eq!(t.execute(Op::FpDiv(20.0, 2.0)).outcome, Outcome::Hit, "B survives");
        assert_eq!(t.execute(Op::FpDiv(10.0, 2.0)).outcome, Outcome::Miss, "A evicted");
    }

    #[test]
    fn random_replacement_still_functions() {
        let cfg = MemoConfig::builder(4)
            .assoc(Assoc::Full)
            .replacement(Replacement::Random)
            .build()
            .unwrap();
        let mut t = MemoTable::new(cfg);
        for i in 0..100 {
            t.execute(Op::FpDiv(i as f64 + 2.0, 3.0));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.stats().insertions, 100);
        assert_eq!(t.stats().evictions, 96);
    }

    #[test]
    fn direct_mapped_conflict_pathology() {
        // §3.2: two values mapping to the same set alternate and conflict on
        // every lookup when direct-mapped; 2 ways fix it. Engineer two fp
        // pairs with identical mantissa MSBs (same index) but different tags.
        let a = Op::FpDiv(1.5, 3.0); // mantissas 1.5/1.5: XOR of MSBs = 0
        let b = Op::FpDiv(1.25, 2.5); // mantissas 1.25/1.25: XOR of MSBs = 0
        let dm = MemoConfig::builder(4).assoc(Assoc::DirectMapped).build().unwrap();
        let mut t = MemoTable::new(dm);
        // Confirm they collide under the paper hash.
        assert_eq!(
            set_index(&a, 4, HashScheme::PaperXor),
            set_index(&b, 4, HashScheme::PaperXor)
        );
        for _ in 0..10 {
            t.execute(a);
            t.execute(b);
        }
        assert_eq!(t.stats().table_hits, 0, "alternating conflicts: zero hits");

        let two_way = MemoConfig::builder(4).assoc(Assoc::Ways(2)).build().unwrap();
        let mut t = MemoTable::new(two_way);
        for _ in 0..10 {
            t.execute(a);
            t.execute(b);
        }
        assert_eq!(t.stats().table_hits, 18, "2 ways absorb the alternation");
    }

    #[test]
    fn trivial_exclude_filters_before_table() {
        let mut t = MemoTable::new(MemoConfig::paper_default()); // Exclude default
        let e = t.execute(Op::FpMul(1.0, 9.0));
        assert_eq!(e.outcome, Outcome::Filtered);
        assert_eq!(e.value, Value::Fp(9.0));
        assert_eq!(t.stats().table_lookups, 0);
        assert_eq!(t.stats().trivial_seen, 1);
        assert!(t.is_empty(), "excluded trivials must not occupy entries");
    }

    #[test]
    fn trivial_integrate_counts_as_hit() {
        let cfg = MemoConfig::builder(32).trivial(TrivialPolicy::Integrate).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpDiv(7.0, 1.0)).outcome, Outcome::Trivial);
        assert_eq!(t.execute(Op::FpDiv(7.0, 2.0)).outcome, Outcome::Miss);
        assert_eq!(t.execute(Op::FpDiv(7.0, 2.0)).outcome, Outcome::Hit);
        // intgr ratio: (1 trivial + 1 hit) / 3 ops.
        assert!((t.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_memoize_sends_trivials_through_table() {
        let cfg = MemoConfig::builder(32).trivial(TrivialPolicy::Memoize).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpMul(1.0, 9.0)).outcome, Outcome::Miss);
        assert_eq!(t.execute(Op::FpMul(1.0, 9.0)).outcome, Outcome::Hit);
        assert_eq!(t.stats().trivial_seen, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mantissa_mode_hits_across_exponents() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpMul(1.7, 3.3)).outcome, Outcome::Miss);
        // Same mantissas, scaled by powers of two (and one sign flip).
        let op = Op::FpMul(-1.7 * 16.0, 3.3 / 4.0);
        let e = t.execute(op);
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, op.compute(), "reconstruction must be bit-exact");
    }

    #[test]
    fn full_mode_misses_across_exponents() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpMul(1.7, 3.3));
        assert_eq!(t.execute(Op::FpMul(1.7 * 16.0, 3.3 / 4.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn mantissa_mode_bypasses_non_normals() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        let e = t.execute(Op::FpMul(f64::NAN, 3.0));
        assert_eq!(e.outcome, Outcome::Miss);
        assert!(e.value.as_f64().is_nan());
        assert_eq!(t.stats().bypasses, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn mantissa_mode_declines_unstorable_results() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        // Underflows to subnormal: operands normal, result not storable.
        let e = t.execute(Op::FpMul(1.5e-200, 1.5e-200));
        assert_eq!(e.outcome, Outcome::Miss);
        assert_eq!(e.value, Op::FpMul(1.5e-200, 1.5e-200).compute());
        assert!(t.is_empty());
    }

    #[test]
    fn full_tags_memoize_nan_exactly() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        let op = Op::FpMul(f64::NAN, 3.0);
        let first = t.execute(op);
        assert_eq!(first.outcome, Outcome::Miss);
        let again = t.execute(op);
        assert_eq!(again.outcome, Outcome::Hit);
        assert_eq!(again.value.to_bits(), first.value.to_bits());
    }

    #[test]
    fn int_and_fp_entries_do_not_alias() {
        // 2.0f64 bits and some integer could in principle produce equal tags;
        // the kind field must keep them apart. Force full associativity so
        // both land in the same set.
        let cfg = MemoConfig::builder(8).assoc(Assoc::Full).build().unwrap();
        let mut t = MemoTable::new(cfg);
        let ibits = 2.0f64.to_bits() as i64;
        t.execute(Op::FpMul(2.0, 2.0));
        assert_eq!(t.execute(Op::IntMul(ibits, ibits)).outcome, Outcome::Miss);
    }

    #[test]
    fn capacity_eviction_at_scale() {
        let mut t = table(32, 4);
        // 1000 distinct divisions cannot fit in 32 entries.
        for i in 0..1000 {
            t.execute(Op::FpDiv(i as f64 + 2.0, 1.000001 + i as f64));
        }
        assert!(t.len() <= 32);
        assert_eq!(t.stats().table_hits, 0);
        // Replay: the *last* few should still be resident.
        let last = Op::FpDiv(999.0 + 2.0, 1.000001 + 999.0);
        assert_eq!(t.execute(last).outcome, Outcome::Hit);
    }

    #[test]
    fn reset_clears_entries_and_stats() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(9.0, 3.0));
        t.execute(Op::FpDiv(9.0, 3.0));
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.stats(), MemoStats::new());
        assert_eq!(t.execute(Op::FpDiv(9.0, 3.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn hit_ratio_matches_paper_semantics() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(6.0, 1.0)); // trivial, filtered
        t.execute(Op::FpDiv(6.0, 2.0)); // miss
        t.execute(Op::FpDiv(6.0, 2.0)); // hit
        t.execute(Op::FpDiv(6.0, 2.0)); // hit
        // "non" ratio: 2 hits / 3 non-trivial lookups.
        assert!((t.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unprotected_table_serves_corrupted_values_silently() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut t = MemoTable::new(MemoConfig::paper_default())
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(7, 1.0)));
        let op = Op::FpDiv(9.0, 7.0);
        t.execute(op); // miss, insert
        let mut corrupted = 0;
        for _ in 0..20 {
            let e = t.execute(op);
            if e.outcome == Outcome::Hit && e.value != op.compute() {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "rate-1.0 flips must corrupt served hits");
        assert!(t.stats().faults_silent > 0);
        assert_eq!(t.stats().faults_detected, 0, "no protection: nothing detected");
    }

    #[test]
    fn parity_never_serves_single_bit_corruption() {
        use crate::fault::{FaultConfig, FaultInjector, Protection};
        let cfg =
            MemoConfig::builder(32).protection(Protection::ParityDetect).build().unwrap();
        let mut t = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(7, 1.0)));
        let op = Op::FpDiv(9.0, 7.0);
        for _ in 0..50 {
            let e = t.execute(op);
            assert_eq!(e.value, op.compute(), "parity must never serve a flipped value");
        }
        let s = t.stats();
        assert!(s.faults_detected > 0, "every strike is a detected parity error");
        assert_eq!(s.faults_silent, 0);
        assert_eq!(s.table_hits, 0, "every hit was downgraded to a miss");
    }

    #[test]
    fn ecc_corrects_single_flips_and_keeps_the_hit() {
        use crate::fault::{FaultConfig, FaultInjector, Protection};
        let cfg = MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap();
        let mut t = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(7, 1.0)));
        let op = Op::FpDiv(9.0, 7.0);
        t.execute(op);
        for _ in 0..20 {
            let e = t.execute(op);
            assert_eq!(e.outcome, Outcome::Hit, "single flips are corrected in place");
            assert_eq!(e.value, op.compute());
        }
        let s = t.stats();
        assert_eq!(s.faults_corrected, s.faults_injected);
        assert_eq!(s.faults_silent, 0);
        assert_eq!(s.table_hits, 20);
    }

    #[test]
    fn ecc_detects_double_flips_as_misses() {
        use crate::fault::{FaultConfig, FaultInjector, Protection};
        let cfg = MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap();
        let inj =
            FaultInjector::new(FaultConfig::single_bit(7, 1.0).with_double_fraction(1.0));
        let mut t = MemoTable::new(cfg).with_fault_injector(inj);
        let op = Op::FpDiv(9.0, 7.0);
        for _ in 0..30 {
            let e = t.execute(op);
            assert_eq!(e.value, op.compute(), "double flips must never be served");
        }
        let s = t.stats();
        assert!(s.faults_detected > 0);
        assert_eq!(s.faults_silent, 0);
    }

    #[test]
    fn verify_on_hit_catches_everything_and_charges() {
        use crate::fault::{FaultConfig, FaultInjector, Protection};
        let cfg = MemoConfig::builder(32)
            .protection(Protection::VerifyOnHit { verify_cycles: 4 })
            .build()
            .unwrap();
        assert_eq!(MemoTable::new(cfg).hit_penalty(), 4);
        let inj =
            FaultInjector::new(FaultConfig::single_bit(7, 1.0).with_double_fraction(0.5));
        let mut t = MemoTable::new(cfg).with_fault_injector(inj);
        let op = Op::FpDiv(9.0, 7.0);
        for _ in 0..30 {
            assert_eq!(t.execute(op).value, op.compute());
        }
        let s = t.stats();
        assert_eq!(s.faults_silent, 0, "verification catches every mismatch");
        assert!(s.faults_detected > 0);
    }

    #[test]
    fn stuck_at_defects_corrupt_unprotected_reads() {
        use crate::fault::{FaultConfig, FaultInjector};
        // Every slot defective: any hit reads through a stuck bit.
        let inj = FaultInjector::new(FaultConfig::disabled().with_seed(3).with_stuck_rate(1.0));
        let mut t = MemoTable::new(MemoConfig::paper_default()).with_fault_injector(inj);
        let mut corrupted = 0;
        for i in 0..16 {
            let op = Op::IntMul(0x5555_5555 + i, 0x3333_3333);
            t.execute(op);
            if t.execute(op).value != op.compute() {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "stuck bits must show up in served values");
        assert_eq!(t.stats().faults_silent, corrupted);
    }

    #[test]
    fn tag_strikes_cause_false_misses_without_protection() {
        use crate::fault::{FaultConfig, FaultInjector};
        let inj = FaultInjector::new(FaultConfig::disabled().with_seed(11).with_tag_rate(1.0));
        let mut t = MemoTable::new(MemoConfig::paper_default()).with_fault_injector(inj);
        let op = Op::FpDiv(9.0, 7.0);
        t.execute(op);
        // The probe first strikes the only valid entry's tag, then looks up:
        // guaranteed false miss, but the served value is still correct.
        let e = t.execute(op);
        assert_eq!(e.outcome, Outcome::Miss);
        assert_eq!(e.value, op.compute());
        assert!(t.stats().faults_injected > 0);
    }

    #[test]
    fn ecc_scrubs_corrupted_tags() {
        use crate::fault::{FaultConfig, FaultInjector, Protection};
        let cfg = MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap();
        let inj = FaultInjector::new(FaultConfig::disabled().with_seed(11).with_tag_rate(1.0));
        let mut t = MemoTable::new(cfg).with_fault_injector(inj);
        let op = Op::FpDiv(9.0, 7.0);
        t.execute(op); // insert
        t.execute(op); // strike corrupts the tag → miss (re-inserts via update? no: same set, corrupted entry + fresh insert)
        // Next probe scrubs the single-bit tag error before lookup.
        let e = t.execute(op);
        assert_eq!(e.outcome, Outcome::Hit, "scrubbed entry is reachable again");
        assert!(t.stats().faults_corrected > 0);
    }

    #[test]
    fn fault_process_is_deterministic_across_replays() {
        use crate::fault::{FaultConfig, FaultInjector};
        let cfg = MemoConfig::paper_default();
        let fc = FaultConfig::single_bit(99, 0.3).with_tag_rate(0.1);
        let run = |t: &mut MemoTable| {
            let mut bits = 0u64;
            for i in 0..200 {
                let op = Op::FpDiv(f64::from(i % 16) + 2.0, 3.0);
                bits ^= t.execute(op).value.to_bits().rotate_left(i);
            }
            (bits, t.stats())
        };
        let mut a = MemoTable::new(cfg).with_fault_injector(FaultInjector::new(fc));
        let mut b = MemoTable::new(cfg).with_fault_injector(FaultInjector::new(fc));
        assert_eq!(run(&mut a), run(&mut b));
        // reset() restarts the error process from its seed.
        a.reset();
        b.reset();
        assert_eq!(run(&mut a), run(&mut b));
    }

    #[test]
    fn outcome_avoided_computation() {
        assert!(Outcome::Hit.avoided_computation());
        assert!(Outcome::Trivial.avoided_computation());
        assert!(!Outcome::Filtered.avoided_computation());
        assert!(!Outcome::Miss.avoided_computation());
    }

    #[test]
    #[ignore = "manual perf probe; run with --release --ignored --nocapture"]
    fn batch_perf_probe() {
        use crate::config::HashScheme;
        use crate::key::{fill_set_indices, fill_swapped_tags, fill_tags};
        use crate::trivial::fill_trivial_lanes;
        use crate::OpBatch;
        use std::hint::black_box;
        use std::time::Instant;

        let pool: Vec<u64> = (0..16).map(|i| (f64::from(i) + 2.25).to_bits()).collect();
        let n = 1usize << 20;
        let a: Vec<u64> = (0..n).map(|i| pool[(i * 7) % 16]).collect();
        let b: Vec<u64> = (0..n).map(|i| pool[(i * 13) % 16]).collect();
        let kind = crate::OpKind::FpMul;
        let per = |d: std::time::Duration| d.as_nanos() as f64 / n as f64;

        let mut t = MemoTable::new(MemoConfig::paper_default());
        let start = Instant::now();
        for i in 0..n {
            black_box(t.execute(Op::FpMul(f64::from_bits(a[i]), f64::from_bits(b[i]))));
        }
        let d = start.elapsed();
        println!("scalar:  {:>7.2} ns/op  hits={}", per(d), t.stats().table_hits);

        let mut t = MemoTable::new(MemoConfig::paper_default());
        let batch = OpBatch::new(kind, &a, &b);
        let start = Instant::now();
        let out = t.execute_batch(&batch);
        let d = start.elapsed();
        println!("batched: {:>7.2} ns/op  hits={}", per(d), out.hits);

        // Fills alone, over 64-lane tiles.
        let cfg = MemoConfig::paper_default();
        let start = Instant::now();
        let mut acc = 0u64;
        for s in (0..n).step_by(64) {
            let (la, lb) = (&a[s..s + 64], &b[s..s + 64]);
            let mut trivial = [false; 64];
            let mut valid = [false; 64];
            let mut tags = [0u128; 64];
            let mut set_idx = [0u32; 64];
            let mut swapped = [0u128; 64];
            fill_trivial_lanes(kind, la, lb, &mut trivial);
            fill_tags(kind, cfg.tag(), la, lb, &mut tags, &mut valid);
            fill_set_indices(kind, HashScheme::PaperXor, cfg.sets(), la, lb, false, &mut set_idx);
            fill_swapped_tags(kind, cfg.tag(), la, lb, &mut swapped);
            acc ^= tags[0] as u64 ^ u64::from(set_idx[63]) ^ swapped[31] as u64;
        }
        let d = start.elapsed();
        black_box(acc);
        println!("fills:   {:>7.2} ns/op", per(d));
    }
}

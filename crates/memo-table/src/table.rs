//! The finite, set-associative MEMO-TABLE (§2.1–§2.2).

use crate::config::{MemoConfig, Replacement, TrivialPolicy};
use crate::key::{decode_value, encode_tag, encode_value, set_index, Key};
use crate::op::{Op, Value};
use crate::stats::MemoStats;
use crate::trivial::trivial_result;
use crate::Memoizer;

/// Result of presenting operands to a memo table (the lookup phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// The table holds the result: the computation unit can be aborted and
    /// the value forwarded to write-back after a single cycle.
    Hit(Value),
    /// The integrated trivial-operation detector produced the result
    /// (only under [`TrivialPolicy::Integrate`]).
    Trivial(Value),
    /// The operation is trivial and was filtered before the table (only
    /// under [`TrivialPolicy::Exclude`]); the conventional unit computes it
    /// and nothing is recorded.
    Filtered,
    /// No matching entry; the conventional computation proceeds and its
    /// result should be offered to [`Memoizer::update`].
    Miss,
}

/// How an operation was ultimately satisfied (the complete probe→compute→
/// update cycle of [`Memoizer::execute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfied by the table in a single cycle.
    Hit,
    /// Satisfied by the integrated trivial detector in a single cycle.
    Trivial,
    /// Trivial, filtered before the table, computed conventionally.
    Filtered,
    /// Computed conventionally at full latency; result inserted.
    Miss,
}

impl Outcome {
    /// `true` when the operation completed in a single cycle instead of the
    /// unit's full latency.
    #[must_use]
    pub fn avoided_computation(self) -> bool {
        matches!(self, Outcome::Hit | Outcome::Trivial)
    }
}

/// A fully executed operation: its (bit-exact) value and how it was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Executed {
    /// The operation's result — always identical to [`Op::compute`].
    pub value: Value,
    /// How the result was obtained.
    pub outcome: Outcome,
}

#[derive(Debug, Clone)]
struct Entry {
    key: Key,
    value: u64,
    last_use: u64,
    inserted: u64,
}

/// A finite, set-associative memo table.
///
/// See the [crate docs](crate) for the big picture and [`MemoConfig`] for
/// the design space. All state is owned; the table is `Send`.
///
/// # Examples
///
/// ```
/// use memo_table::{Assoc, MemoConfig, MemoTable, Memoizer, Op, Outcome};
///
/// let cfg = MemoConfig::builder(16).assoc(Assoc::Ways(2)).build()?;
/// let mut t = MemoTable::new(cfg);
/// assert_eq!(t.execute(Op::IntMul(6, 7)).outcome, Outcome::Miss);
/// assert_eq!(t.execute(Op::IntMul(6, 7)).outcome, Outcome::Hit);
/// // Commutative probing: the swapped order also hits (§2.2).
/// assert_eq!(t.execute(Op::IntMul(7, 6)).outcome, Outcome::Hit);
/// # Ok::<(), memo_table::MemoConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoTable {
    cfg: MemoConfig,
    slots: Vec<Option<Entry>>,
    clock: u64,
    stats: MemoStats,
    rng: u64,
}

impl MemoTable {
    /// Create an empty table with the given configuration.
    #[must_use]
    pub fn new(cfg: MemoConfig) -> Self {
        MemoTable {
            cfg,
            slots: vec![None; cfg.entries()],
            clock: 0,
            stats: MemoStats::new(),
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &MemoConfig {
        &self.cfg
    }

    /// Number of valid entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Hit ratio under this table's own trivial policy — the number the
    /// paper's tables report.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio(self.cfg.trivial())
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Search one set for `key`; on success refresh its LRU stamp and
    /// return the stored payload.
    fn lookup_in_set(&mut self, set: usize, key: Key) -> Option<u64> {
        let ways = self.cfg.ways();
        let base = set * ways;
        let stamp = self.tick();
        for entry in self.slots[base..base + ways].iter_mut().flatten() {
            if entry.key == key {
                entry.last_use = stamp;
                return Some(entry.value);
            }
        }
        None
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn insert(&mut self, set: usize, key: Key, value: u64) {
        let ways = self.cfg.ways();
        let base = set * ways;
        let stamp = self.tick();

        // Prefer an invalid slot.
        if let Some(slot) = self.slots[base..base + ways].iter_mut().find(|s| s.is_none()) {
            *slot = Some(Entry { key, value, last_use: stamp, inserted: stamp });
            self.stats.insertions += 1;
            return;
        }

        // All ways valid: pick a victim.
        let victim_way = match self.cfg.replacement() {
            Replacement::Lru => (0..ways)
                .min_by_key(|&w| self.slots[base + w].as_ref().map(|e| e.last_use))
                .expect("ways >= 1"),
            Replacement::Fifo => (0..ways)
                .min_by_key(|&w| self.slots[base + w].as_ref().map(|e| e.inserted))
                .expect("ways >= 1"),
            Replacement::Random => (self.next_random() % ways as u64) as usize,
        };
        self.slots[base + victim_way] =
            Some(Entry { key, value, last_use: stamp, inserted: stamp });
        self.stats.insertions += 1;
        self.stats.evictions += 1;
    }

    /// Probe for `op` under a specific operand order. Returns the decoded
    /// value on a tag match whose result is reconstructible.
    fn probe_order(&mut self, op: &Op) -> Option<Value> {
        let key = encode_tag(op, self.cfg.tag())?;
        let set = set_index(op, self.cfg.sets(), self.cfg.hash());
        let stored = self.lookup_in_set(set, key)?;
        match decode_value(op, stored, self.cfg.tag()) {
            Some(v) => Some(v),
            None => {
                // Tag matched but the exponent path cannot reconstruct the
                // result for these operands (mantissa mode only): the
                // hardware falls back to the conventional unit.
                self.stats.bypasses += 1;
                None
            }
        }
    }
}

impl Memoizer for MemoTable {
    fn probe(&mut self, op: Op) -> Probe {
        self.stats.ops_seen += 1;

        if let Some((_, value)) = trivial_result(&op) {
            self.stats.trivial_seen += 1;
            match self.cfg.trivial() {
                TrivialPolicy::Exclude => return Probe::Filtered,
                TrivialPolicy::Integrate => return Probe::Trivial(value),
                TrivialPolicy::Memoize => {} // falls through to the table
            }
        }

        self.stats.table_lookups += 1;

        if encode_tag(&op, self.cfg.tag()).is_none() {
            // Operands not representable under the tag policy: the lookup
            // simply misses (and `update` will decline to insert).
            self.stats.bypasses += 1;
            return Probe::Miss;
        }

        if let Some(v) = self.probe_order(&op) {
            self.stats.table_hits += 1;
            return Probe::Hit(v);
        }

        if self.cfg.commutative() {
            if let Some(swapped) = op.swapped() {
                if let Some(v) = self.probe_order(&swapped) {
                    self.stats.table_hits += 1;
                    self.stats.commutative_hits += 1;
                    return Probe::Hit(v);
                }
            }
        }

        Probe::Miss
    }

    fn update(&mut self, op: Op, result: Value) {
        debug_assert_eq!(result, op.compute(), "update must receive the true result");

        if trivial_result(&op).is_some() && self.cfg.trivial() != TrivialPolicy::Memoize {
            return;
        }
        let Some(key) = encode_tag(&op, self.cfg.tag()) else { return };
        let Some(value) = encode_value(&op, result, self.cfg.tag()) else {
            self.stats.bypasses += 1;
            return;
        };
        let set = set_index(&op, self.cfg.sets(), self.cfg.hash());
        self.insert(set, key, value);
    }

    fn stats(&self) -> MemoStats {
        self.stats
    }

    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.clock = 0;
        self.stats = MemoStats::new();
        self.rng = 0x9E37_79B9_7F4A_7C15;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Assoc, HashScheme, TagPolicy};

    fn table(entries: usize, ways: usize) -> MemoTable {
        MemoTable::new(MemoConfig::builder(entries).assoc(Assoc::Ways(ways)).build().unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        assert_eq!(t.execute(Op::FpMul(2.5, 4.0)).outcome, Outcome::Miss);
        let e = t.execute(Op::FpMul(2.5, 4.0));
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, Value::Fp(10.0));
        assert_eq!(t.stats().table_hits, 1);
        assert_eq!(t.stats().insertions, 1);
    }

    #[test]
    fn division_is_not_commutative() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(8.0, 2.0));
        assert_eq!(t.execute(Op::FpDiv(2.0, 8.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn commutative_probe_hits_swapped_order() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpMul(3.0, 7.0));
        let e = t.execute(Op::FpMul(7.0, 3.0));
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, Value::Fp(21.0));
        assert_eq!(t.stats().commutative_hits, 1);
    }

    #[test]
    fn commutative_probe_can_be_disabled() {
        let cfg = MemoConfig::builder(32).commutative(false).build().unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpMul(3.0, 7.0));
        assert_eq!(t.execute(Op::FpMul(7.0, 3.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Fully associative 2-entry table isolates replacement behaviour.
        let cfg = MemoConfig::builder(2).assoc(Assoc::Full).build().unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpDiv(10.0, 2.0)); // A
        t.execute(Op::FpDiv(20.0, 2.0)); // B
        t.execute(Op::FpDiv(10.0, 2.0)); // touch A => B is LRU
        t.execute(Op::FpDiv(30.0, 2.0)); // C evicts B
        assert_eq!(t.execute(Op::FpDiv(10.0, 2.0)).outcome, Outcome::Hit, "A survives");
        assert_eq!(t.execute(Op::FpDiv(20.0, 2.0)).outcome, Outcome::Miss, "B evicted");
        assert!(t.stats().evictions >= 1);
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let cfg = MemoConfig::builder(2)
            .assoc(Assoc::Full)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        let mut t = MemoTable::new(cfg);
        t.execute(Op::FpDiv(10.0, 2.0)); // A (oldest)
        t.execute(Op::FpDiv(20.0, 2.0)); // B
        t.execute(Op::FpDiv(10.0, 2.0)); // touch A — irrelevant to FIFO
        t.execute(Op::FpDiv(30.0, 2.0)); // C evicts A
        assert_eq!(t.execute(Op::FpDiv(20.0, 2.0)).outcome, Outcome::Hit, "B survives");
        assert_eq!(t.execute(Op::FpDiv(10.0, 2.0)).outcome, Outcome::Miss, "A evicted");
    }

    #[test]
    fn random_replacement_still_functions() {
        let cfg = MemoConfig::builder(4)
            .assoc(Assoc::Full)
            .replacement(Replacement::Random)
            .build()
            .unwrap();
        let mut t = MemoTable::new(cfg);
        for i in 0..100 {
            t.execute(Op::FpDiv(i as f64 + 2.0, 3.0));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.stats().insertions, 100);
        assert_eq!(t.stats().evictions, 96);
    }

    #[test]
    fn direct_mapped_conflict_pathology() {
        // §3.2: two values mapping to the same set alternate and conflict on
        // every lookup when direct-mapped; 2 ways fix it. Engineer two fp
        // pairs with identical mantissa MSBs (same index) but different tags.
        let a = Op::FpDiv(1.5, 3.0); // mantissas 1.5/1.5: XOR of MSBs = 0
        let b = Op::FpDiv(1.25, 2.5); // mantissas 1.25/1.25: XOR of MSBs = 0
        let dm = MemoConfig::builder(4).assoc(Assoc::DirectMapped).build().unwrap();
        let mut t = MemoTable::new(dm);
        // Confirm they collide under the paper hash.
        assert_eq!(
            set_index(&a, 4, HashScheme::PaperXor),
            set_index(&b, 4, HashScheme::PaperXor)
        );
        for _ in 0..10 {
            t.execute(a);
            t.execute(b);
        }
        assert_eq!(t.stats().table_hits, 0, "alternating conflicts: zero hits");

        let two_way = MemoConfig::builder(4).assoc(Assoc::Ways(2)).build().unwrap();
        let mut t = MemoTable::new(two_way);
        for _ in 0..10 {
            t.execute(a);
            t.execute(b);
        }
        assert_eq!(t.stats().table_hits, 18, "2 ways absorb the alternation");
    }

    #[test]
    fn trivial_exclude_filters_before_table() {
        let mut t = MemoTable::new(MemoConfig::paper_default()); // Exclude default
        let e = t.execute(Op::FpMul(1.0, 9.0));
        assert_eq!(e.outcome, Outcome::Filtered);
        assert_eq!(e.value, Value::Fp(9.0));
        assert_eq!(t.stats().table_lookups, 0);
        assert_eq!(t.stats().trivial_seen, 1);
        assert!(t.is_empty(), "excluded trivials must not occupy entries");
    }

    #[test]
    fn trivial_integrate_counts_as_hit() {
        let cfg = MemoConfig::builder(32).trivial(TrivialPolicy::Integrate).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpDiv(7.0, 1.0)).outcome, Outcome::Trivial);
        assert_eq!(t.execute(Op::FpDiv(7.0, 2.0)).outcome, Outcome::Miss);
        assert_eq!(t.execute(Op::FpDiv(7.0, 2.0)).outcome, Outcome::Hit);
        // intgr ratio: (1 trivial + 1 hit) / 3 ops.
        assert!((t.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_memoize_sends_trivials_through_table() {
        let cfg = MemoConfig::builder(32).trivial(TrivialPolicy::Memoize).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpMul(1.0, 9.0)).outcome, Outcome::Miss);
        assert_eq!(t.execute(Op::FpMul(1.0, 9.0)).outcome, Outcome::Hit);
        assert_eq!(t.stats().trivial_seen, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mantissa_mode_hits_across_exponents() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        assert_eq!(t.execute(Op::FpMul(1.7, 3.3)).outcome, Outcome::Miss);
        // Same mantissas, scaled by powers of two (and one sign flip).
        let op = Op::FpMul(-1.7 * 16.0, 3.3 / 4.0);
        let e = t.execute(op);
        assert_eq!(e.outcome, Outcome::Hit);
        assert_eq!(e.value, op.compute(), "reconstruction must be bit-exact");
    }

    #[test]
    fn full_mode_misses_across_exponents() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpMul(1.7, 3.3));
        assert_eq!(t.execute(Op::FpMul(1.7 * 16.0, 3.3 / 4.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn mantissa_mode_bypasses_non_normals() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        let e = t.execute(Op::FpMul(f64::NAN, 3.0));
        assert_eq!(e.outcome, Outcome::Miss);
        assert!(e.value.as_f64().is_nan());
        assert_eq!(t.stats().bypasses, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn mantissa_mode_declines_unstorable_results() {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut t = MemoTable::new(cfg);
        // Underflows to subnormal: operands normal, result not storable.
        let e = t.execute(Op::FpMul(1.5e-200, 1.5e-200));
        assert_eq!(e.outcome, Outcome::Miss);
        assert_eq!(e.value, Op::FpMul(1.5e-200, 1.5e-200).compute());
        assert!(t.is_empty());
    }

    #[test]
    fn full_tags_memoize_nan_exactly() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        let op = Op::FpMul(f64::NAN, 3.0);
        let first = t.execute(op);
        assert_eq!(first.outcome, Outcome::Miss);
        let again = t.execute(op);
        assert_eq!(again.outcome, Outcome::Hit);
        assert_eq!(again.value.to_bits(), first.value.to_bits());
    }

    #[test]
    fn int_and_fp_entries_do_not_alias() {
        // 2.0f64 bits and some integer could in principle produce equal tags;
        // the kind field must keep them apart. Force full associativity so
        // both land in the same set.
        let cfg = MemoConfig::builder(8).assoc(Assoc::Full).build().unwrap();
        let mut t = MemoTable::new(cfg);
        let ibits = 2.0f64.to_bits() as i64;
        t.execute(Op::FpMul(2.0, 2.0));
        assert_eq!(t.execute(Op::IntMul(ibits, ibits)).outcome, Outcome::Miss);
    }

    #[test]
    fn capacity_eviction_at_scale() {
        let mut t = table(32, 4);
        // 1000 distinct divisions cannot fit in 32 entries.
        for i in 0..1000 {
            t.execute(Op::FpDiv(i as f64 + 2.0, 1.000001 + i as f64));
        }
        assert!(t.len() <= 32);
        assert_eq!(t.stats().table_hits, 0);
        // Replay: the *last* few should still be resident.
        let last = Op::FpDiv(999.0 + 2.0, 1.000001 + 999.0);
        assert_eq!(t.execute(last).outcome, Outcome::Hit);
    }

    #[test]
    fn reset_clears_entries_and_stats() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(9.0, 3.0));
        t.execute(Op::FpDiv(9.0, 3.0));
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.stats(), MemoStats::new());
        assert_eq!(t.execute(Op::FpDiv(9.0, 3.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn hit_ratio_matches_paper_semantics() {
        let mut t = MemoTable::new(MemoConfig::paper_default());
        t.execute(Op::FpDiv(6.0, 1.0)); // trivial, filtered
        t.execute(Op::FpDiv(6.0, 2.0)); // miss
        t.execute(Op::FpDiv(6.0, 2.0)); // hit
        t.execute(Op::FpDiv(6.0, 2.0)); // hit
        // "non" ratio: 2 hits / 3 non-trivial lookups.
        assert!((t.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_avoided_computation() {
        assert!(Outcome::Hit.avoided_computation());
        assert!(Outcome::Trivial.avoided_computation());
        assert!(!Outcome::Filtered.avoided_computation());
        assert!(!Outcome::Miss.avoided_computation());
    }
}

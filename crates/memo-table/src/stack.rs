//! Single-pass multi-configuration sweep simulation.
//!
//! The paper's evaluation sweeps MEMO-TABLE size and associativity over
//! identical operand streams (Tables 5–10, Figures 2–4). Replaying a
//! recorded trace once per sweep point costs G full passes for a G-point
//! grid. For LRU tables the Mattson stack algorithm collapses that to one
//! pass: at a fixed set count, a w-way LRU set always holds exactly the w
//! most recently touched keys that map to it (the *inclusion property*),
//! so one MRU-ordered list per set answers the hit/miss question for every
//! associativity simultaneously — an entry found at stack depth `k` hits
//! every table with `ways > k` and misses the rest. Distinct set counts
//! need one list family ("level") each, and a key that was never inserted
//! misses everywhere, which also yields the infinite-table column for
//! free: the key store itself is the distance-∞ bucket.
//!
//! [`SweepGrid::new`] validates that a family of configurations actually
//! shares one pass (same tag/trivial/commutative/hash policies, LRU,
//! unprotected); [`StackSimulator`] consumes one operand stream and
//! [`StackSimulator::finish`] emits a [`MemoStats`] per grid point that is
//! bit-identical to what a dedicated [`crate::MemoTable`] replay would
//! have produced. Stateful studies — fault injection, protection
//! policies, shared tables, FIFO/random replacement — cannot share a pass
//! and stay on the direct path, which doubles as the equivalence oracle.

use std::collections::HashMap;
use std::fmt;

use crate::batch::{OpBatch, MAX_BATCH_WIDTH};
use crate::config::{HashScheme, MemoConfig, Replacement, TagPolicy, TrivialPolicy};
use crate::fault::Protection;
use crate::key::{
    decode_value, encode_tag, encode_value, fill_set_words, fill_swapped_tags, fill_tags,
    set_form, Key, KeyHashBuilder, SetSel,
};
use crate::op::{Op, OpKind};
use crate::stats::MemoStats;
use crate::trivial::{fill_trivial_lanes, trivial_result};

/// Empty slot marker in the packed per-set recency rows.
const NONE: u32 = u32::MAX;

/// Width of the per-entry orientation bitmask, and thus the most finite
/// points one pass can serve.
const MAX_POINTS: usize = 128;

/// Why a family of configurations cannot share one stack pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepGridError {
    /// The grid has no finite points.
    Empty,
    /// More than 128 finite points (the per-entry orientation mask width).
    TooManyPoints,
    /// Points disagree on tag policy, commutative probing, or hash
    /// scheme, or mix `Memoize` with the trivial-filtering policies
    /// (`Exclude` and `Integrate` see identical table traffic and may
    /// mix freely; `Memoize` routes trivial operations through the
    /// table and may not).
    MixedPolicies,
    /// A point replaces entries by FIFO or random choice; only LRU has
    /// the inclusion property the stack pass relies on.
    UnsupportedReplacement,
    /// A point carries a protection policy, whose scrub/verify state is
    /// inherently per-table.
    UnsupportedProtection,
    /// FoldMix hashing with commutative probing: the two operand orders
    /// hash to different sets, so which set holds the pair depends on
    /// which order each table inserted first — inclusion across sizes
    /// breaks.
    UnsupportedHash,
}

impl fmt::Display for SweepGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SweepGridError::Empty => "sweep grid has no finite points",
            SweepGridError::TooManyPoints => "sweep grid exceeds 128 finite points",
            SweepGridError::MixedPolicies => {
                "sweep points disagree on tag/trivial/commutative/hash policy"
            }
            SweepGridError::UnsupportedReplacement => {
                "only LRU replacement has the stack inclusion property"
            }
            SweepGridError::UnsupportedProtection => {
                "protected tables carry per-table scrub state"
            }
            SweepGridError::UnsupportedHash => {
                "FoldMix hashing with commutative probing breaks inclusion"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SweepGridError {}

/// A validated family of table shapes that one [`StackSimulator`] pass
/// can evaluate simultaneously.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    configs: Vec<MemoConfig>,
    include_infinite: bool,
    tag: TagPolicy,
    commutative: bool,
    hash: HashScheme,
    filter_trivials: bool,
}

impl SweepGrid {
    /// Validate that `configs` (plus, optionally, the infinite-table
    /// column) can share a single stack pass.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepGridError`] naming the first property that rules
    /// fusion out; the caller is expected to fall back to direct replay.
    pub fn new(configs: &[MemoConfig], include_infinite: bool) -> Result<Self, SweepGridError> {
        let Some(first) = configs.first() else {
            return Err(SweepGridError::Empty);
        };
        if configs.len() > MAX_POINTS {
            return Err(SweepGridError::TooManyPoints);
        }
        let tag = first.tag();
        let commutative = first.commutative();
        let hash = first.hash();
        let filter_trivials = first.trivial() != TrivialPolicy::Memoize;
        for cfg in configs {
            if cfg.tag() != tag
                || cfg.commutative() != commutative
                || cfg.hash() != hash
                || (cfg.trivial() != TrivialPolicy::Memoize) != filter_trivials
            {
                return Err(SweepGridError::MixedPolicies);
            }
            if cfg.replacement() != Replacement::Lru {
                return Err(SweepGridError::UnsupportedReplacement);
            }
            if cfg.protection() != Protection::None {
                return Err(SweepGridError::UnsupportedProtection);
            }
        }
        if hash == HashScheme::FoldMix && commutative {
            return Err(SweepGridError::UnsupportedHash);
        }
        // The infinite table models FullValue/Exclude/commutative probing
        // (`InfiniteMemoTable::new`); its column is only exact when the
        // finite points agree.
        if include_infinite
            && (tag != TagPolicy::FullValue || !commutative || !filter_trivials)
        {
            return Err(SweepGridError::MixedPolicies);
        }
        Ok(SweepGrid {
            configs: configs.to_vec(),
            include_infinite,
            tag,
            commutative,
            hash,
            filter_trivials,
        })
    }

    /// The finite grid points, in the order results are reported.
    #[must_use]
    pub fn configs(&self) -> &[MemoConfig] {
        &self.configs
    }

    /// Number of finite grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` when the grid has no finite points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether the distance-∞ (infinite table) column is included.
    #[must_use]
    pub fn has_infinite(&self) -> bool {
        self.include_infinite
    }
}

/// One distinct set count: a packed MRU-first recency row per set, wide
/// enough for the largest associativity sharing this set count.
struct Level {
    sets: usize,
    max_ways: usize,
    /// `sets × max_ways` node ids, MRU first, front-packed, `NONE`-padded.
    rows: Vec<u32>,
    /// `(grid point index, ways)` of every configuration at this level.
    points: Vec<(usize, usize)>,
}

/// One distinct key ever inserted. The store doubles as the infinite
/// table: a key misses everywhere exactly once, on the access that
/// creates its node.
struct Node {
    /// Encoded result, fixed at node creation. Under either tag policy
    /// the stored bits are determined by the key (the tag fixes every
    /// operand bit the result encoding depends on), so one compute per
    /// distinct key serves every grid point.
    payload: u64,
    /// Bit `p` set ⇒ the entry resident at grid point `p` stores the
    /// swapped (non-canonical) operand order. Written on insert only,
    /// matching the real table, which never rewrites an entry on a hit.
    swapped: u128,
    /// Operand order stored by the infinite table.
    inf_swapped: bool,
    /// Canonical key, kept for index removal when the node leaves its
    /// last recency row.
    key: Key,
    /// Number of level rows currently holding this node. When it drops
    /// to zero and the grid has no infinite column, the node is
    /// reclaimed: the key store then stays bounded by the grid's total
    /// capacity instead of growing with every distinct key in the trace.
    resident: u32,
}

/// Results of one fused pass.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One statistics block per grid point, in [`SweepGrid::configs`]
    /// order.
    pub finite: Vec<MemoStats>,
    /// The infinite-table column, when the grid requested it.
    pub infinite: Option<MemoStats>,
    /// `false` when a mantissa-mode payload failed to decode mid-pass
    /// (the real table's bypass-then-reinsert behaviour then depends on
    /// which configurations still hold the entry, so no single pass can
    /// stay exact). The counters are meaningless and the caller must
    /// fall back to direct replay.
    pub exact: bool,
}

/// Single-pass stack-distance simulator over a [`SweepGrid`].
///
/// Feed it one operand stream (one op kind — each hardware unit has its
/// own table, so streams of different kinds never share one) via
/// [`StackSimulator::access`], then collect per-point [`MemoStats`] with
/// [`StackSimulator::finish`].
pub struct StackSimulator {
    tag: TagPolicy,
    commutative: bool,
    hash: HashScheme,
    filter_trivials: bool,
    include_infinite: bool,
    levels: Vec<Level>,
    nodes: Vec<Node>,
    // The key store is the profile's hottest map; see [`KeyHashBuilder`]
    // for why SipHash is overkill here (get/insert/remove only).
    index: HashMap<Key, u32, KeyHashBuilder>,
    /// Reusable node slots (only populated when reclamation is on,
    /// i.e. the grid carries no infinite column).
    free: Vec<u32>,
    // Counters identical across grid points (the front-end path never
    // depends on table geometry).
    ops_seen: u64,
    trivial_seen: u64,
    table_lookups: u64,
    bypasses: u64,
    // Per-point counters, indexed by grid point.
    hits: Vec<u64>,
    commutative_hits: Vec<u64>,
    insertions: Vec<u64>,
    evictions: Vec<u64>,
    // Infinite column.
    inf_hits: u64,
    inf_commutative_hits: u64,
    inf_insertions: u64,
    exact: bool,
}

impl StackSimulator {
    /// Build a simulator for `grid`, with empty tables.
    #[must_use]
    pub fn new(grid: &SweepGrid) -> Self {
        let mut levels: Vec<Level> = Vec::new();
        for (p, cfg) in grid.configs.iter().enumerate() {
            let (sets, ways) = (cfg.sets(), cfg.ways());
            let level = match levels.iter_mut().find(|l| l.sets == sets) {
                Some(level) => level,
                None => {
                    levels.push(Level { sets, max_ways: 0, rows: Vec::new(), points: Vec::new() });
                    levels.last_mut().expect("just pushed")
                }
            };
            level.max_ways = level.max_ways.max(ways);
            level.points.push((p, ways));
        }
        for level in &mut levels {
            level.rows = vec![NONE; level.sets * level.max_ways];
        }
        let n = grid.configs.len();
        StackSimulator {
            tag: grid.tag,
            commutative: grid.commutative,
            hash: grid.hash,
            filter_trivials: grid.filter_trivials,
            include_infinite: grid.include_infinite,
            levels,
            nodes: Vec::new(),
            index: HashMap::default(),
            free: Vec::new(),
            ops_seen: 0,
            trivial_seen: 0,
            table_lookups: 0,
            bypasses: 0,
            hits: vec![0; n],
            commutative_hits: vec![0; n],
            insertions: vec![0; n],
            evictions: vec![0; n],
            inf_hits: 0,
            inf_commutative_hits: 0,
            inf_insertions: 0,
            exact: true,
        }
    }

    /// Simulate one operation against every grid point at once.
    pub fn access(&mut self, op: Op) {
        if !self.exact {
            return;
        }
        self.ops_seen += 1;
        if trivial_result(&op).is_some() {
            self.trivial_seen += 1;
            if self.filter_trivials {
                return;
            }
        }
        self.table_lookups += 1;
        let Some(own) = encode_tag(&op, self.tag) else {
            self.bypasses += 1;
            return;
        };
        // Commutative probing under PaperXor: both operand orders select
        // the same set (the hash is symmetric), and at most one order is
        // resident in any table (the second order always hits the first).
        // Track the pair under the order-independent canonical key; the
        // stored orientation decides primary vs commutative hit.
        let mut canon = own;
        let mut swapped_now = false;
        if self.commutative {
            if let Some(sw) = op.swapped() {
                let skey = encode_tag(&sw, self.tag)
                    .expect("the swap of an encodable commutative op is encodable");
                if skey.tag < canon.tag {
                    canon = skey;
                    swapped_now = true;
                }
            }
        }
        // One operand mix serves every level: `set_index` only varies in
        // its final shift/mask across set counts.
        let sel = SetSel::of(&op, self.hash);
        match self.index.get(&canon).copied() {
            Some(id) => self.touch(&op, sel, id, swapped_now),
            None => self.insert(&op, sel, canon, swapped_now),
        }
    }

    /// Simulate a same-kind lane tile: the front end (trivial masks, tag
    /// encoding for both operand orders, canonical-key selection) runs
    /// lane-parallel over the operand columns; each lane then resolves
    /// through the same `touch`/`insert` walk as [`StackSimulator::access`],
    /// in lane order, so the outcome is bit-identical to scalar accesses.
    ///
    /// Full-value grids take a leaner path: every lane is encodable and the
    /// pass can never go inexact, so tags fold inline from the operand
    /// columns (no tag/validity scratch arrays) and only the trivial mask
    /// is filled lane-parallel.
    pub fn access_batch(&mut self, batch: &OpBatch<'_>) {
        if self.tag == TagPolicy::FullValue {
            self.access_batch_full(batch);
        } else {
            self.access_batch_lanes(batch);
        }
    }

    /// Full-value lane resolve (see [`StackSimulator::access_batch`]).
    fn access_batch_full(&mut self, batch: &OpBatch<'_>) {
        if !self.exact {
            return;
        }
        let kind = batch.kind();
        let commutative = self.commutative && kind.is_commutative();
        let unary = batch.b().is_empty();
        let form = set_form(kind, self.hash);
        let mut start = 0usize;
        while start < batch.len() {
            let w = (batch.len() - start).min(MAX_BATCH_WIDTH);
            let a = &batch.a()[start..start + w];
            let b = if unary { &[][..] } else { &batch.b()[start..start + w] };
            start += w;

            let mut trivial = [false; MAX_BATCH_WIDTH];
            let mut words = [0u64; MAX_BATCH_WIDTH];
            fill_trivial_lanes(kind, a, b, &mut trivial[..w]);
            fill_set_words(kind, self.hash, a, b, &mut words[..w]);

            for i in 0..w {
                self.ops_seen += 1;
                if trivial[i] {
                    self.trivial_seen += 1;
                    if self.filter_trivials {
                        continue;
                    }
                }
                self.table_lookups += 1;
                let ai = a[i];
                let bi = if unary { ai } else { b[i] };
                let tag = ((ai as u128) << 64) | bi as u128;
                let (canon, swapped_now) = if commutative {
                    let stag = ((bi as u128) << 64) | ai as u128;
                    if stag < tag {
                        (Key { kind, tag: stag }, true)
                    } else {
                        (Key { kind, tag }, false)
                    }
                } else {
                    (Key { kind, tag }, false)
                };
                let op = match kind {
                    OpKind::IntMul => Op::IntMul(ai as i64, bi as i64),
                    OpKind::FpMul => Op::FpMul(f64::from_bits(ai), f64::from_bits(bi)),
                    OpKind::FpDiv => Op::FpDiv(f64::from_bits(ai), f64::from_bits(bi)),
                    OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(ai)),
                };
                let sel = SetSel { word: words[i], form };
                match self.index.get(&canon).copied() {
                    Some(id) => self.touch(&op, sel, id, swapped_now),
                    None => self.insert(&op, sel, canon, swapped_now),
                }
            }
        }
    }

    /// Generic (mantissa-only) lane resolve: tags and validity are filled
    /// through the shared column encoders, and the mid-tile `exact` check
    /// silences the stream at the same lane a scalar pass would.
    fn access_batch_lanes(&mut self, batch: &OpBatch<'_>) {
        let kind = batch.kind();
        let commutative = self.commutative && kind.is_commutative();
        let form = set_form(kind, self.hash);
        let mut start = 0usize;
        while start < batch.len() {
            if !self.exact {
                return;
            }
            let w = (batch.len() - start).min(MAX_BATCH_WIDTH);
            let tile = batch.slice(start, w);
            start += w;
            let (a, b) = (tile.a(), tile.b());

            let mut trivial = [false; MAX_BATCH_WIDTH];
            let mut valid = [false; MAX_BATCH_WIDTH];
            let mut tags = [0u128; MAX_BATCH_WIDTH];
            let mut swapped_tags = [0u128; MAX_BATCH_WIDTH];
            let mut words = [0u64; MAX_BATCH_WIDTH];

            fill_trivial_lanes(kind, a, b, &mut trivial[..w]);
            fill_set_words(kind, self.hash, a, b, &mut words[..w]);
            fill_tags(kind, self.tag, a, b, &mut tags[..w], &mut valid[..w]);
            if commutative {
                fill_swapped_tags(kind, self.tag, a, b, &mut swapped_tags[..w]);
            }

            for i in 0..w {
                // A mantissa poison mid-tile must silence the rest of the
                // stream exactly like scalar `access` does.
                if !self.exact {
                    return;
                }
                self.ops_seen += 1;
                if trivial[i] {
                    self.trivial_seen += 1;
                    if self.filter_trivials {
                        continue;
                    }
                }
                self.table_lookups += 1;
                if !valid[i] {
                    self.bypasses += 1;
                    continue;
                }
                let (canon, swapped_now) = if commutative && swapped_tags[i] < tags[i] {
                    (Key { kind, tag: swapped_tags[i] }, true)
                } else {
                    (Key { kind, tag: tags[i] }, false)
                };
                let op = tile.op(i);
                let sel = SetSel { word: words[i], form };
                match self.index.get(&canon).copied() {
                    Some(id) => self.touch(&op, sel, id, swapped_now),
                    None => self.insert(&op, sel, canon, swapped_now),
                }
            }
        }
    }

    /// The pair has been stored before: hit wherever it is still within
    /// reach, miss-and-reinsert wherever it has already been evicted.
    fn touch(&mut self, op: &Op, sel: SetSel, id: u32, swapped_now: bool) {
        if self.tag == TagPolicy::MantissaOnly
            && op.kind() != OpKind::IntMul
            && decode_value(op, self.nodes[id as usize].payload, self.tag).is_none()
        {
            // The stored mantissa cannot be rebuilt against this access's
            // exponents; see `SweepOutcome::exact`.
            self.exact = false;
            return;
        }
        if self.include_infinite {
            self.inf_hits += 1;
            if self.nodes[id as usize].inf_swapped != swapped_now {
                self.inf_commutative_hits += 1;
            }
        }
        let mut orient = self.nodes[id as usize].swapped;
        let reclaim = !self.include_infinite;
        for level in &mut self.levels {
            let set = sel.set(level.sets);
            let row = &mut level.rows[set * level.max_ways..(set + 1) * level.max_ways];
            let mut pos = None;
            let mut len = 0;
            for (k, &slot) in row.iter().enumerate() {
                if slot == NONE {
                    break;
                }
                len += 1;
                if slot == id {
                    pos = Some(k);
                }
            }
            match pos {
                Some(k) => {
                    for &(p, ways) in &level.points {
                        if k < ways {
                            self.hits[p] += 1;
                            if ((orient >> p) & 1 == 1) != swapped_now {
                                self.commutative_hits[p] += 1;
                            }
                        } else {
                            // Depth k needs more than `ways` ways: this
                            // point evicted the pair earlier, so it
                            // misses and reinserts into a full set.
                            self.insertions[p] += 1;
                            self.evictions[p] += 1;
                            set_bit(&mut orient, p, swapped_now);
                        }
                    }
                    // Move-to-front serves every point at once: a hit
                    // refreshes LRU state, a reinsert lands at MRU.
                    row[..=k].rotate_right(1);
                }
                None => {
                    for &(p, ways) in &level.points {
                        self.insertions[p] += 1;
                        if len >= ways {
                            self.evictions[p] += 1;
                        }
                        set_bit(&mut orient, p, swapped_now);
                    }
                    let dropped = push_front(row, len, id);
                    if reclaim {
                        self.nodes[id as usize].resident += 1;
                        if dropped != NONE {
                            release(&mut self.nodes, &mut self.index, &mut self.free, dropped);
                        }
                    }
                }
            }
        }
        self.nodes[id as usize].swapped = orient;
    }

    /// First sighting of the pair: a miss at every point including ∞.
    fn insert(&mut self, op: &Op, sel: SetSel, canon: Key, swapped_now: bool) {
        let Some(payload) = encode_value(op, op.compute(), self.tag) else {
            // The result is not representable (e.g. a denormal product
            // under mantissa-only tags): every table declines the insert
            // identically, so nothing becomes resident anywhere.
            self.bypasses += 1;
            return;
        };
        let node = Node {
            payload,
            swapped: if swapped_now { u128::MAX } else { 0 },
            inf_swapped: swapped_now,
            key: canon,
            resident: u32::try_from(self.levels.len()).expect("level count fits in u32"),
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = node;
                id
            }
            None => {
                let id = u32::try_from(self.nodes.len()).expect("node count fits in u32");
                self.nodes.push(node);
                id
            }
        };
        self.index.insert(canon, id);
        if self.include_infinite {
            self.inf_insertions += 1;
        }
        let reclaim = !self.include_infinite;
        for level in &mut self.levels {
            let set = sel.set(level.sets);
            let row = &mut level.rows[set * level.max_ways..(set + 1) * level.max_ways];
            let len = row.iter().take_while(|&&slot| slot != NONE).count();
            for &(p, ways) in &level.points {
                self.insertions[p] += 1;
                if len >= ways {
                    self.evictions[p] += 1;
                }
            }
            let dropped = push_front(row, len, id);
            if reclaim && dropped != NONE {
                release(&mut self.nodes, &mut self.index, &mut self.free, dropped);
            }
        }
    }

    /// Assemble per-point statistics. Evictions beyond the widest level
    /// row are still counted exactly: a node found deeper than a point's
    /// ways (or fallen off the row entirely) implies that point's set was
    /// full when it reinserted.
    #[must_use]
    pub fn finish(self) -> SweepOutcome {
        let shared = MemoStats {
            ops_seen: self.ops_seen,
            trivial_seen: self.trivial_seen,
            table_lookups: self.table_lookups,
            bypasses: self.bypasses,
            ..MemoStats::new()
        };
        let finite = (0..self.hits.len())
            .map(|p| MemoStats {
                table_hits: self.hits[p],
                commutative_hits: self.commutative_hits[p],
                insertions: self.insertions[p],
                evictions: self.evictions[p],
                ..shared
            })
            .collect();
        let infinite = self.include_infinite.then_some(MemoStats {
            table_hits: self.inf_hits,
            commutative_hits: self.inf_commutative_hits,
            insertions: self.inf_insertions,
            ..shared
        });
        SweepOutcome { finite, infinite, exact: self.exact }
    }
}

#[inline]
fn set_bit(mask: &mut u128, bit: usize, value: bool) {
    if value {
        *mask |= 1 << bit;
    } else {
        *mask &= !(1 << bit);
    }
}

/// Insert `id` at the MRU end of a front-packed row holding `len` valid
/// entries, dropping the LRU tail when the row is full. Returns the
/// dropped node id, or [`NONE`] when the row still had room.
#[inline]
fn push_front(row: &mut [u32], len: usize, id: u32) -> u32 {
    let dropped = if len == row.len() {
        let tail = row[len - 1];
        row.rotate_right(1);
        tail
    } else {
        row[..=len].rotate_right(1);
        NONE
    };
    row[0] = id;
    dropped
}

/// A row dropped `id`: one residency gone. When it was the last, the
/// node leaves the key store and its slot becomes reusable — a key in no
/// row behaves exactly like one never seen (full miss, fresh insert), so
/// forgetting it is free and keeps the store bounded by grid capacity.
#[inline]
fn release(
    nodes: &mut [Node],
    index: &mut HashMap<Key, u32, KeyHashBuilder>,
    free: &mut Vec<u32>,
    id: u32,
) {
    let node = &mut nodes[id as usize];
    node.resident -= 1;
    if node.resident == 0 {
        index.remove(&node.key);
        free.push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Assoc;
    use crate::infinite::InfiniteMemoTable;
    use crate::rng::SplitMix64;
    use crate::table::MemoTable;
    use crate::Memoizer;

    /// A deterministic operand stream with enough reuse to exercise
    /// hits, evictions, and commutative probes at every table size.
    fn stream(kind: OpKind, seed: u64, n: usize) -> Vec<Op> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                // Small operand pools create heavy reuse; occasional
                // wide values create conflict misses.
                let wide = rng.next_below(16) == 0;
                let pool = if wide { 4096 } else { 24 };
                let a = rng.next_below(pool) as i64 - 3;
                let b = rng.next_below(pool) as i64 - 3;
                match kind {
                    OpKind::IntMul => Op::IntMul(a, b),
                    OpKind::FpMul => Op::FpMul(a as f64 * 0.5, b as f64 * 0.25),
                    OpKind::FpDiv => Op::FpDiv(a as f64, b as f64 * 0.5),
                    OpKind::FpSqrt => Op::FpSqrt((a.unsigned_abs() as f64) * 0.5),
                }
            })
            .collect()
    }

    fn assert_grid_matches(ops: &[Op], configs: &[MemoConfig], infinite: bool) {
        let grid = SweepGrid::new(configs, infinite).expect("grid is fusable");
        let mut sim = StackSimulator::new(&grid);
        for &op in ops {
            sim.access(op);
        }
        let out = sim.finish();
        assert!(out.exact);
        for (cfg, fused) in configs.iter().zip(&out.finite) {
            let mut table = MemoTable::new(*cfg);
            for &op in ops {
                table.execute(op);
            }
            assert_eq!(*fused, table.stats(), "direct replay diverged for {cfg:?}");
        }
        if infinite {
            let mut table = InfiniteMemoTable::new();
            for &op in ops {
                table.execute(op);
            }
            assert_eq!(out.infinite.unwrap(), table.stats());
        }
    }

    fn paper_sizes() -> Vec<MemoConfig> {
        [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&e| MemoConfig::builder(e).build().unwrap())
            .collect()
    }

    #[test]
    fn matches_direct_replay_across_sizes_and_kinds() {
        for kind in OpKind::ALL {
            let ops = stream(kind, 0xC17_2041 + kind as u64, 4000);
            assert_grid_matches(&ops, &paper_sizes(), true);
        }
    }

    #[test]
    fn matches_direct_replay_across_associativities() {
        let mut configs = vec![MemoConfig::builder(32).assoc(Assoc::DirectMapped).build().unwrap()];
        for ways in [2usize, 4, 8] {
            configs.push(MemoConfig::builder(32).assoc(Assoc::Ways(ways)).build().unwrap());
        }
        // Fully associative: ways == entries, a single set.
        configs.push(MemoConfig::builder(32).assoc(Assoc::Full).build().unwrap());
        for kind in [OpKind::IntMul, OpKind::FpMul] {
            let ops = stream(kind, 0xA550C, 4000);
            assert_grid_matches(&ops, &configs, true);
        }
    }

    #[test]
    fn matches_direct_replay_without_commutative_probing() {
        let configs: Vec<MemoConfig> = [8usize, 32, 128]
            .iter()
            .map(|&e| MemoConfig::builder(e).commutative(false).build().unwrap())
            .collect();
        let ops = stream(OpKind::IntMul, 0xBEE, 3000);
        assert_grid_matches(&ops, &configs, false);
    }

    #[test]
    fn matches_direct_replay_under_foldmix_without_commutative() {
        let configs: Vec<MemoConfig> = [16usize, 64]
            .iter()
            .map(|&e| {
                MemoConfig::builder(e)
                    .hash(HashScheme::FoldMix)
                    .commutative(false)
                    .build()
                    .unwrap()
            })
            .collect();
        let ops = stream(OpKind::FpMul, 0xF01D, 3000);
        assert_grid_matches(&ops, &configs, false);
    }

    #[test]
    fn matches_direct_replay_with_memoized_trivials() {
        let configs: Vec<MemoConfig> = [8usize, 64]
            .iter()
            .map(|&e| MemoConfig::builder(e).trivial(TrivialPolicy::Memoize).build().unwrap())
            .collect();
        let ops = stream(OpKind::FpMul, 0x7121A, 3000);
        assert_grid_matches(&ops, &configs, false);
    }

    #[test]
    fn integrate_shares_the_exclude_pass() {
        // Exclude and Integrate produce identical statistics (both keep
        // trivial operations out of the table); only the derived hit
        // ratio differs. A mixed grid must therefore stay exact.
        let configs = vec![
            MemoConfig::builder(32).trivial(TrivialPolicy::Exclude).build().unwrap(),
            MemoConfig::builder(32).trivial(TrivialPolicy::Integrate).build().unwrap(),
        ];
        let ops = stream(OpKind::IntMul, 0x171, 2000);
        assert_grid_matches(&ops, &configs, true);
        let grid = SweepGrid::new(&configs, false).unwrap();
        let mut sim = StackSimulator::new(&grid);
        for &op in &ops {
            sim.access(op);
        }
        let out = sim.finish();
        assert_eq!(out.finite[0], out.finite[1]);
    }

    #[test]
    fn single_set_and_tiny_tables_match() {
        // assoc == entries (one set) and a 1-entry direct-mapped table.
        let configs = vec![
            MemoConfig::builder(4).assoc(Assoc::Full).build().unwrap(),
            MemoConfig::builder(1).assoc(Assoc::DirectMapped).build().unwrap(),
        ];
        let ops = stream(OpKind::FpDiv, 0x5E7, 2500);
        assert_grid_matches(&ops, &configs, true);
    }

    #[test]
    fn mantissa_grid_matches_or_flags_inexact() {
        let configs: Vec<MemoConfig> = [16usize, 64]
            .iter()
            .map(|&e| MemoConfig::builder(e).tag(TagPolicy::MantissaOnly).build().unwrap())
            .collect();
        let ops = stream(OpKind::FpMul, 0x3A9, 3000);
        let grid = SweepGrid::new(&configs, false).unwrap();
        let mut sim = StackSimulator::new(&grid);
        for &op in &ops {
            sim.access(op);
        }
        let out = sim.finish();
        if out.exact {
            for (cfg, fused) in configs.iter().zip(&out.finite) {
                let mut table = MemoTable::new(*cfg);
                for &op in &ops {
                    table.execute(op);
                }
                assert_eq!(*fused, table.stats());
            }
        }
    }

    #[test]
    fn poisoned_pass_reports_inexact() {
        let configs = vec![MemoConfig::builder(8).tag(TagPolicy::MantissaOnly).build().unwrap()];
        let grid = SweepGrid::new(&configs, false).unwrap();
        let mut sim = StackSimulator::new(&grid);
        // Same mantissas, exponents far enough apart that the rebuilt
        // exponent of the second access's result leaves the normal range.
        sim.access(Op::FpMul(1.5, 1.25));
        sim.access(Op::FpMul(1.5 * 2f64.powi(900), 1.25 * 2f64.powi(200)));
        let out = sim.finish();
        assert!(!out.exact);
    }

    #[test]
    fn grid_rejections_name_the_reason() {
        let lru = MemoConfig::builder(32).build().unwrap();
        assert_eq!(SweepGrid::new(&[], false).unwrap_err(), SweepGridError::Empty);
        let fifo = MemoConfig::builder(32).replacement(Replacement::Fifo).build().unwrap();
        assert_eq!(
            SweepGrid::new(&[fifo], false).unwrap_err(),
            SweepGridError::UnsupportedReplacement
        );
        let foldmix = MemoConfig::builder(32).hash(HashScheme::FoldMix).build().unwrap();
        assert_eq!(
            SweepGrid::new(&[foldmix], false).unwrap_err(),
            SweepGridError::UnsupportedHash
        );
        let mantissa = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        assert_eq!(
            SweepGrid::new(&[lru, mantissa], false).unwrap_err(),
            SweepGridError::MixedPolicies
        );
        let memoize = MemoConfig::builder(32).trivial(TrivialPolicy::Memoize).build().unwrap();
        assert_eq!(
            SweepGrid::new(&[lru, memoize], false).unwrap_err(),
            SweepGridError::MixedPolicies
        );
        let protected = MemoConfig::builder(32)
            .protection(Protection::ParityDetect)
            .build()
            .unwrap();
        assert_eq!(
            SweepGrid::new(&[protected], false).unwrap_err(),
            SweepGridError::UnsupportedProtection
        );
        // The infinite column models Exclude-class traffic.
        assert_eq!(
            SweepGrid::new(&[memoize], true).unwrap_err(),
            SweepGridError::MixedPolicies
        );
    }
}

//! A latency-aware computation unit with an attached memo table (§2.2).
//!
//! [`MemoizedUnit`] models the tandem *(computation unit, MEMO-TABLE)*
//! pair: the operands are forwarded to both in parallel; a hit completes in
//! **one** cycle and aborts the unit, a miss completes at the unit's full
//! latency with the table updated in parallel with write-back (so a miss
//! never adds cycles — the paper's "no penalty" property).

use crate::op::{Op, Value};
use crate::table::Outcome;
use crate::Memoizer;

/// How one operation executed on a [`MemoizedUnit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitExecution {
    /// The (bit-exact) result.
    pub value: Value,
    /// Cycles the operation occupied the unit.
    pub cycles: u32,
    /// How the result was obtained.
    pub outcome: Outcome,
}

/// A multi-cycle computation unit accelerated by a memo table.
///
/// `M` is any [`Memoizer`] — a private [`crate::MemoTable`], the
/// [`crate::InfiniteMemoTable`] bound, or a [`crate::SharedMemoTable`]
/// handle shared with sibling units.
///
/// # Examples
///
/// ```
/// use memo_table::{MemoConfig, MemoTable, MemoizedUnit, Op, Outcome};
///
/// // An fp divider with a 20-cycle latency (cf. Table 1 of the paper).
/// let mut div = MemoizedUnit::new(MemoTable::new(MemoConfig::paper_default()), 20);
///
/// let cold = div.execute(Op::FpDiv(1.0, 3.0));
/// assert_eq!(cold.cycles, 20);
///
/// let warm = div.execute(Op::FpDiv(1.0, 3.0));
/// assert_eq!(warm.cycles, 1); // served by the MEMO-TABLE
/// assert_eq!(warm.value, cold.value);
/// ```
#[derive(Debug, Clone)]
pub struct MemoizedUnit<M> {
    table: M,
    latency: u32,
    trivial_latency: u32,
    busy_cycles: u64,
    executed: u64,
    single_cycle: u64,
    filtered: u64,
}

impl<M: Memoizer> MemoizedUnit<M> {
    /// A unit that takes `latency` cycles per conventional computation.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — a unit needs at least one cycle.
    #[must_use]
    pub fn new(table: M, latency: u32) -> Self {
        assert!(latency > 0, "unit latency must be at least one cycle");
        MemoizedUnit {
            table,
            latency,
            trivial_latency: latency,
            busy_cycles: 0,
            executed: 0,
            single_cycle: 0,
            filtered: 0,
        }
    }

    /// Set a shorter latency for trivial operations that are filtered
    /// before the table ([`crate::TrivialPolicy::Exclude`]): the paper
    /// notes trivial operations "can complete in a few cycles anyhow".
    #[must_use]
    pub fn with_trivial_latency(mut self, cycles: u32) -> Self {
        assert!(cycles > 0, "trivial latency must be at least one cycle");
        self.trivial_latency = cycles;
        self
    }

    /// The conventional latency.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Execute `op`, charging 1 cycle (plus the protection policy's
    /// per-hit penalty, if any) on a table hit, 1 cycle on an
    /// integrated-trivial hit, and the full latency otherwise.
    pub fn execute(&mut self, op: Op) -> UnitExecution {
        let executed = self.table.execute(op);
        let cycles = match executed.outcome {
            Outcome::Hit => {
                self.single_cycle += 1;
                1 + self.table.hit_penalty()
            }
            Outcome::Trivial => {
                self.single_cycle += 1;
                1
            }
            Outcome::Filtered => {
                self.filtered += 1;
                self.trivial_latency
            }
            Outcome::Miss => self.latency,
        };
        self.busy_cycles += u64::from(cycles);
        self.executed += 1;
        UnitExecution { value: executed.value, cycles, outcome: executed.outcome }
    }

    /// Total cycles the unit has been busy.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of operations executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Cycles a plain, non-memoized unit would have needed for the same
    /// stream (every operation at full latency, filtered trivials at the
    /// trivial latency — a plain unit is assumed to have the same trivial
    /// fast path).
    #[must_use]
    pub fn baseline_cycles(&self) -> u64 {
        let regular = self.executed - self.filtered;
        regular * u64::from(self.latency) + self.filtered * u64::from(self.trivial_latency)
    }

    /// The *Speedup Enhanced* of Amdahl's law for this unit (§3.3):
    /// `dc / ((1 − hr)·dc + hr)` where `dc` is the unit latency and `hr`
    /// the observed single-cycle (hit) ratio.
    #[must_use]
    pub fn speedup_enhanced(&self) -> f64 {
        let dc = f64::from(self.latency);
        let hr = self.observed_hit_ratio();
        dc / ((1.0 - hr) * dc + hr)
    }

    /// Fraction of operations served in a single cycle (table hits plus
    /// integrated trivial detections).
    #[must_use]
    pub fn observed_hit_ratio(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.single_cycle as f64 / self.executed as f64
    }

    /// Access the underlying memo table.
    #[must_use]
    pub fn table(&self) -> &M {
        &self.table
    }

    /// Mutable access to the underlying memo table.
    pub fn table_mut(&mut self) -> &mut M {
        &mut self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoConfig, MemoTable, TrivialPolicy};

    fn unit(latency: u32) -> MemoizedUnit<MemoTable> {
        MemoizedUnit::new(MemoTable::new(MemoConfig::paper_default()), latency)
    }

    #[test]
    fn hit_takes_one_cycle_miss_takes_latency() {
        let mut div = unit(39);
        assert_eq!(div.execute(Op::FpDiv(22.0, 7.0)).cycles, 39);
        assert_eq!(div.execute(Op::FpDiv(22.0, 7.0)).cycles, 1);
        assert_eq!(div.busy_cycles(), 40);
        assert_eq!(div.executed(), 2);
    }

    #[test]
    fn results_are_bit_exact() {
        let mut div = unit(13);
        let ops = [Op::FpDiv(1.0, 3.0), Op::FpDiv(-5.5, 0.3), Op::FpDiv(1.0, 3.0)];
        for op in ops {
            assert_eq!(div.execute(op).value, op.compute());
        }
    }

    #[test]
    fn baseline_vs_memoized_cycles() {
        let mut div = unit(13);
        for _ in 0..10 {
            div.execute(Op::FpDiv(9.0, 7.0));
        }
        // 1 miss at 13 cycles + 9 hits at 1 cycle.
        assert_eq!(div.busy_cycles(), 13 + 9);
        assert_eq!(div.baseline_cycles(), 130);
    }

    #[test]
    fn trivial_latency_charged_for_filtered_ops() {
        let mut mul = unit(5).with_trivial_latency(2);
        let e = mul.execute(Op::FpMul(1.0, 4.0));
        assert_eq!(e.outcome, Outcome::Filtered);
        assert_eq!(e.cycles, 2);
    }

    #[test]
    fn integrated_trivials_take_one_cycle() {
        let cfg = MemoConfig::builder(32).trivial(TrivialPolicy::Integrate).build().unwrap();
        let mut mul = MemoizedUnit::new(MemoTable::new(cfg), 5);
        let e = mul.execute(Op::FpMul(1.0, 4.0));
        assert_eq!(e.outcome, Outcome::Trivial);
        assert_eq!(e.cycles, 1);
    }

    #[test]
    fn speedup_enhanced_matches_formula() {
        let mut div = unit(13);
        // 1 miss + 3 hits => hr = 0.75 over non-trivial stream.
        for _ in 0..4 {
            div.execute(Op::FpDiv(9.0, 7.0));
        }
        let hr: f64 = 0.75;
        let expected = 13.0 / ((1.0 - hr) * 13.0 + hr);
        assert!((div.speedup_enhanced() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latency must be at least one cycle")]
    fn zero_latency_rejected() {
        let _ = unit(0);
    }
}

//! A tiny deterministic PRNG (SplitMix64) for fault injection.
//!
//! The repo's reproducibility rule: every stochastic input is derived from
//! an explicit seed through SplitMix64 so each experiment is bit-exact
//! across runs and platforms. `memo-imaging` carries the same generator for
//! synthetic images; this crate cannot depend on it (the dependency points
//! the other way), so the few lines are duplicated here for the
//! [`crate::FaultInjector`] and for property tests.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use memo_table::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent generator for a labelled sub-stream.
    #[must_use]
    pub fn split(&self, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SplitMix64 { state: self.state ^ h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires a non-empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_stable() {
        let root = SplitMix64::new(1);
        let mut x1 = root.split("faults");
        let mut x2 = root.split("faults");
        let mut y = root.split("tags");
        let v = x1.next_u64();
        assert_eq!(v, x2.next_u64());
        assert_ne!(v, y.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }
}

//! # memo-table
//!
//! A software model of the **MEMO-TABLE** proposed in *"Accelerating
//! Multi-Media Processing by Implementing Memoing in Multiplication and
//! Division Units"* (Citron, Feitelson, Rudolph — ASPLOS 1998).
//!
//! A MEMO-TABLE is a small cache-like lookup table placed next to a
//! multi-cycle computation unit (integer multiplier, floating-point
//! multiplier / divider / square-root unit). The operands of each operation
//! are hashed into the table *in parallel* with the conventional
//! computation:
//!
//! * on a **hit** the previously computed result is returned in a single
//!   cycle and the computation unit is aborted;
//! * on a **miss** nothing is lost — the computation completes normally and
//!   the result is inserted into the table for future reuse.
//!
//! This crate provides the full design space explored by the paper:
//!
//! * table geometry: any power-of-two entry count, direct-mapped to fully
//!   associative ([`Assoc`]);
//! * the paper's XOR indexing scheme (§3.1) plus a stronger mixing hash for
//!   ablation ([`HashScheme`]);
//! * full-value or mantissa-only tags (§2.1, Table 10) ([`TagPolicy`]);
//! * trivial-operation handling — memoized, excluded, or detected by an
//!   integrated front-end filter (§3.2, Table 9) ([`TrivialPolicy`]);
//! * commutative dual-order probing for multiplications (§2.2);
//! * LRU / FIFO / random replacement ([`Replacement`]);
//! * an "infinitely large, fully associative" reference table
//!   ([`InfiniteMemoTable`]);
//! * a multi-ported table shared between several computation units (§2.3)
//!   ([`SharedMemoTable`]);
//! * a single-pass stack-distance sweep engine that evaluates an entire
//!   size × associativity grid (plus the infinite column) in one pass over
//!   an operand stream ([`StackSimulator`], [`SweepGrid`]);
//! * a latency-aware memoized functional unit ([`MemoizedUnit`]);
//! * soft-error fault injection and protection policies
//!   ([`FaultInjector`], [`Protection`]) — parity, SEC-DED, or
//!   recompute-and-verify guarding the stored entries.
//!
//! ## Quick start
//!
//! ```
//! use memo_table::{MemoConfig, MemoTable, Memoizer, Op, Outcome};
//!
//! // The paper's default geometry: 32 entries in 8 sets of 4.
//! let mut table = MemoTable::new(MemoConfig::paper_default());
//!
//! let first = table.execute(Op::FpDiv(355.0, 113.0));
//! assert_eq!(first.outcome, Outcome::Miss);
//!
//! // The same operands hit and would complete in a single cycle.
//! let again = table.execute(Op::FpDiv(355.0, 113.0));
//! assert_eq!(again.outcome, Outcome::Hit);
//! assert_eq!(again.value.as_f64(), 355.0 / 113.0);
//! assert_eq!(table.stats().table_hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
mod batch;
mod config;
mod fault;
mod infinite;
mod key;
mod op;
mod ported;
pub mod rng;
mod stack;
mod stats;
mod table;
mod trivial;
mod unit;

pub use batch::{
    batch_width, BatchOutcome, OpBatch, DEFAULT_BATCH_WIDTH, MAX_BATCH_WIDTH, MIN_BATCH_WIDTH,
};
pub use config::{
    Assoc, HashScheme, MemoConfig, MemoConfigBuilder, MemoConfigError, Replacement, TagPolicy,
    TrivialPolicy, STABLE_ENCODED_LEN, STABLE_ENCODING_VERSION,
};
pub use fault::{Fault, FaultConfig, FaultInjector, Protection};
pub use infinite::InfiniteMemoTable;
pub use key::{fp_parts, is_normal_or_zero, Key, KeyHashBuilder, KeyHasher};
pub use op::{Op, OpKind, ParseOpKindError, Value};
pub use ported::{PortStats, SharedMemoTable};
pub use stack::{StackSimulator, SweepGrid, SweepGridError, SweepOutcome};
pub use stats::MemoStats;
pub use table::{Executed, MemoTable, Outcome, Probe};
pub use trivial::{trivial_result, TrivialKind};
pub use unit::{MemoizedUnit, UnitExecution};

/// Common interface implemented by every memo-table flavour.
///
/// Simulators are written against this trait so that a finite
/// [`MemoTable`], the reference [`InfiniteMemoTable`], and a
/// [`SharedMemoTable`] handle can be used interchangeably.
pub trait Memoizer {
    /// Present the operands of `op` to the table *without* computing.
    ///
    /// Returns what the hardware lookup would produce. A trivial operation
    /// under [`TrivialPolicy::Integrate`] reports [`Probe::Trivial`]; under
    /// [`TrivialPolicy::Exclude`] it reports [`Probe::Filtered`] and never
    /// reaches the lookup logic.
    fn probe(&mut self, op: Op) -> Probe;

    /// Record the `result` of `op` after a miss completed its computation.
    ///
    /// Must only be called after a [`Probe::Miss`]; calling it after a hit
    /// would model hardware that re-inserts present entries (harmless but
    /// inaccurate — the stats would double-count insertions).
    fn update(&mut self, op: Op, result: Value);

    /// Probe, compute on miss, and update — the full per-instruction cycle
    /// of the tandem *(computation unit, MEMO-TABLE)* pair (§2.2).
    fn execute(&mut self, op: Op) -> Executed {
        match self.probe(op) {
            Probe::Hit(v) => Executed { value: v, outcome: Outcome::Hit },
            Probe::Trivial(v) => Executed { value: v, outcome: Outcome::Trivial },
            Probe::Filtered => Executed { value: op.compute(), outcome: Outcome::Filtered },
            Probe::Miss => {
                let value = op.compute();
                self.update(op, value);
                Executed { value, outcome: Outcome::Miss }
            }
        }
    }

    /// Execute a whole same-kind lane tile, returning only the per-batch
    /// outcome tally (the per-op results are recomputable and replay-style
    /// callers discard them).
    ///
    /// Must be observably identical to calling [`execute`] on every lane in
    /// order — same statistics, same table state afterwards — for any tile
    /// width, including partial tails. The default does exactly that;
    /// concrete tables override it with a lane-parallel front end
    /// (batched hashing and tag encoding) feeding the same scalar conflict
    /// resolution.
    ///
    /// [`execute`]: Memoizer::execute
    fn execute_batch(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for i in 0..batch.len() {
            match self.execute(batch.op(i)).outcome {
                Outcome::Hit => out.hits += 1,
                Outcome::Trivial => out.trivials += 1,
                Outcome::Filtered | Outcome::Miss => {}
            }
        }
        out
    }

    /// Statistics accumulated since construction or the last [`reset`]
    /// (a copy — `MemoStats` is small and `Copy`).
    ///
    /// [`reset`]: Memoizer::reset
    fn stats(&self) -> MemoStats;

    /// Clear both the stored entries and the statistics.
    fn reset(&mut self);

    /// Extra cycles this table's protection policy adds to every served
    /// hit (see [`Protection::hit_penalty`]); 0 for unprotected tables.
    ///
    /// Surfaced on the trait so latency models ([`MemoizedUnit`], the
    /// cycle accountant in `memo-sim`) can charge protection without
    /// knowing the concrete table type.
    fn hit_penalty(&self) -> u32 {
        0
    }
}

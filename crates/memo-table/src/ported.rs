//! A multi-ported MEMO-TABLE shared between several computation units
//! (§2.3).
//!
//! When a processor implements several instances of the same computation
//! unit, a private table per unit would let recurring calculations be
//! dispatched to different units, computed more than once, and stored more
//! than once. The paper's solution is one larger, multi-ported table shared
//! by all the units, so one unit can reuse work performed by another.
//!
//! [`SharedMemoTable`] models this: cheap clonable handles over one
//! underlying [`MemoTable`], plus a port-contention model — each simulated
//! cycle offers `ports` accesses; accesses beyond that are counted as
//! conflicts (in hardware they would stall one cycle, which `memo-sim`
//! charges when configured to).

use std::cell::RefCell;
use std::rc::Rc;

use crate::op::{Op, Value};
use crate::stats::MemoStats;
use crate::table::{MemoTable, Probe};
use crate::Memoizer;

/// Port-contention counters for a [`SharedMemoTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Total accesses (probes and updates) issued by all sharers.
    pub accesses: u64,
    /// Accesses beyond the port count within a single cycle.
    pub conflicts: u64,
    /// Simulated cycles observed via [`SharedMemoTable::begin_cycle`].
    pub cycles: u64,
}

#[derive(Debug)]
struct Shared {
    table: MemoTable,
    ports: u32,
    used_this_cycle: u32,
    port_stats: PortStats,
}

/// A handle to a memo table shared by several computation units.
///
/// Clone the handle once per unit; all clones see the same entries and
/// statistics. Single-threaded by design (simulators here are
/// single-threaded event loops), hence `Rc<RefCell<…>>` rather than locks.
///
/// # Examples
///
/// ```
/// use memo_table::{MemoConfig, Memoizer, Op, Outcome, SharedMemoTable};
///
/// let unit0 = SharedMemoTable::new(MemoConfig::paper_default(), 2);
/// let mut unit1 = unit0.clone();
/// let mut unit0 = unit0;
///
/// unit0.execute(Op::FpDiv(9.0, 4.0));
/// // The second divider reuses work performed by the first.
/// assert_eq!(unit1.execute(Op::FpDiv(9.0, 4.0)).outcome, Outcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SharedMemoTable {
    inner: Rc<RefCell<Shared>>,
}

impl SharedMemoTable {
    /// Create a shared table with `ports` access ports per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(cfg: crate::MemoConfig, ports: u32) -> Self {
        assert!(ports > 0, "a shared table needs at least one port");
        SharedMemoTable {
            inner: Rc::new(RefCell::new(Shared {
                table: MemoTable::new(cfg),
                ports,
                used_this_cycle: 0,
                port_stats: PortStats::default(),
            })),
        }
    }

    /// Advance the port-contention model by one simulated cycle.
    pub fn begin_cycle(&self) {
        let mut s = self.inner.borrow_mut();
        s.used_this_cycle = 0;
        s.port_stats.cycles += 1;
    }

    /// Port-contention counters.
    #[must_use]
    pub fn port_stats(&self) -> PortStats {
        self.inner.borrow().port_stats
    }

    /// Number of handles currently sharing the table (including this one).
    #[must_use]
    pub fn sharers(&self) -> usize {
        Rc::strong_count(&self.inner)
    }

    /// Snapshot of the underlying table's statistics.
    #[must_use]
    pub fn stats_snapshot(&self) -> MemoStats {
        self.inner.borrow().table.stats()
    }

    /// Hit ratio under the table's trivial policy.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.inner.borrow().table.hit_ratio()
    }

    /// Attach or detach a soft-error process on the shared table (seen by
    /// every sharer — the underlying SRAM is one physical array).
    pub fn set_fault_injector(&mut self, injector: Option<crate::FaultInjector>) {
        self.inner.borrow_mut().table.set_fault_injector(injector);
    }

    fn charge_port(s: &mut Shared) {
        s.port_stats.accesses += 1;
        s.used_this_cycle += 1;
        if s.used_this_cycle > s.ports {
            s.port_stats.conflicts += 1;
        }
    }
}

impl Memoizer for SharedMemoTable {
    fn probe(&mut self, op: Op) -> Probe {
        let mut s = self.inner.borrow_mut();
        Self::charge_port(&mut s);
        s.table.probe(op)
    }

    fn update(&mut self, op: Op, result: Value) {
        let mut s = self.inner.borrow_mut();
        Self::charge_port(&mut s);
        s.table.update(op, result);
    }

    fn stats(&self) -> MemoStats {
        self.stats_snapshot()
    }

    fn reset(&mut self) {
        let mut s = self.inner.borrow_mut();
        s.table.reset();
        s.used_this_cycle = 0;
        s.port_stats = PortStats::default();
    }

    fn hit_penalty(&self) -> u32 {
        self.inner.borrow().table.hit_penalty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Outcome;
    use crate::MemoConfig;

    #[test]
    fn sharers_reuse_each_others_work() {
        let a = SharedMemoTable::new(MemoConfig::paper_default(), 2);
        let mut b = a.clone();
        let mut a = a;
        assert_eq!(a.sharers(), 2);
        assert_eq!(a.execute(Op::FpDiv(6.0, 4.0)).outcome, Outcome::Miss);
        assert_eq!(b.execute(Op::FpDiv(6.0, 4.0)).outcome, Outcome::Hit);
        assert_eq!(a.stats_snapshot().table_hits, 1);
    }

    #[test]
    fn port_conflicts_counted() {
        let t = SharedMemoTable::new(MemoConfig::paper_default(), 1);
        let mut a = t.clone();
        let mut b = t.clone();
        t.begin_cycle();
        a.execute(Op::FpDiv(6.0, 4.0)); // probe + update = 2 accesses
        b.execute(Op::FpDiv(8.0, 4.0)); // 2 more accesses, all past port 1
        let ps = t.port_stats();
        assert_eq!(ps.accesses, 4);
        assert_eq!(ps.conflicts, 3, "only the first access fits the single port");
        t.begin_cycle();
        a.execute(Op::FpDiv(6.0, 4.0)); // hit: probe only
        assert_eq!(t.port_stats().conflicts, 3, "new cycle, port free again");
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = SharedMemoTable::new(MemoConfig::paper_default(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = SharedMemoTable::new(MemoConfig::paper_default(), 2);
        t.execute(Op::FpDiv(6.0, 4.0));
        t.reset();
        assert_eq!(t.stats_snapshot(), MemoStats::new());
        assert_eq!(t.port_stats(), PortStats::default());
        assert_eq!(t.execute(Op::FpDiv(6.0, 4.0)).outcome, Outcome::Miss);
    }
}

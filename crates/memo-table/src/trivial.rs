//! Detection of trivial operations (§2.1, §3.2).
//!
//! Trivial operations — multiplying by 0 or 1, dividing by 1, dividing 0 —
//! complete in a few cycles on a conventional unit, so the paper studies
//! whether they should occupy memo-table entries at all (Table 9). A small
//! detector in front of the table can recognise them and forward the result
//! immediately.

use crate::op::{Op, OpKind, Value};

/// Which trivial pattern an operation matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrivialKind {
    /// One multiplication operand is zero (integer, or fp with the other
    /// operand finite so the result is a well-defined signed zero).
    MulByZero,
    /// One multiplication operand is exactly one.
    MulByOne,
    /// Division by exactly one.
    DivByOne,
    /// Zero divided by a finite non-zero divisor.
    ZeroDividend,
    /// Square root of zero or one.
    SqrtOfZeroOrOne,
}

/// Classify `op`, returning the matched pattern and the (exactly computed)
/// result, or `None` if the operation is non-trivial.
///
/// The returned result is always bit-identical to [`Op::compute`]; the
/// detector only *classifies*, it never changes semantics. Patterns are
/// chosen so the fast-path hardware is simple: cases whose result depends
/// on non-trivial arithmetic of the other operand (e.g. `0 × ∞ = NaN`) are
/// deliberately *not* trivial.
#[must_use]
pub fn trivial_result(op: &Op) -> Option<(TrivialKind, Value)> {
    match *op {
        Op::IntMul(a, b) => {
            if a == 0 || b == 0 {
                Some((TrivialKind::MulByZero, Value::Int(0)))
            } else if a == 1 {
                Some((TrivialKind::MulByOne, Value::Int(b)))
            } else if b == 1 {
                Some((TrivialKind::MulByOne, Value::Int(a)))
            } else {
                None
            }
        }
        Op::FpMul(a, b) => {
            // ×1 preserves the other operand bit-exactly (even NaN payloads
            // on common hardware; we forward the computed product to stay
            // faithful to the host FPU).
            if a == 1.0 || b == 1.0 {
                Some((TrivialKind::MulByOne, op.compute()))
            } else if (a == 0.0 && b.is_finite()) || (b == 0.0 && a.is_finite()) {
                Some((TrivialKind::MulByZero, op.compute()))
            } else {
                None
            }
        }
        Op::FpDiv(a, b) => {
            if b == 1.0 {
                Some((TrivialKind::DivByOne, op.compute()))
            } else if a == 0.0 && b != 0.0 && !b.is_nan() {
                Some((TrivialKind::ZeroDividend, op.compute()))
            } else {
                None
            }
        }
        Op::FpSqrt(a) => {
            if a == 0.0 || a == 1.0 {
                Some((TrivialKind::SqrtOfZeroOrOne, op.compute()))
            } else {
                None
            }
        }
    }
}

/// Column form of [`trivial_result`]'s *classification* over raw operand
/// bits: `out[i]` is `true` exactly when lane `i` is trivial. The branchy
/// per-op cascade becomes straight-line bit tests the optimizer can
/// vectorize; the (rarely needed) trivial *value* is still produced by the
/// scalar path.
///
/// `b` follows the [`crate::OpBatch`] convention: equal length for binary
/// kinds, empty for `FpSqrt`.
pub(crate) fn fill_trivial_lanes(kind: OpKind, a: &[u64], b: &[u64], out: &mut [bool]) {
    /// Bit pattern of `1.0f64` — the only pattern that compares `== 1.0`.
    const ONE: u64 = 0x3FF0_0000_0000_0000;
    /// `x == 0.0` over bits: both zeros have everything but the sign clear.
    #[inline]
    fn is_zero(bits: u64) -> bool {
        bits << 1 == 0
    }
    #[inline]
    fn is_finite(bits: u64) -> bool {
        (bits >> 52) & 0x7ff != 0x7ff
    }
    #[inline]
    fn is_nan(bits: u64) -> bool {
        (bits >> 52) & 0x7ff == 0x7ff && bits << 12 != 0
    }

    let n = a.len();
    match kind {
        OpKind::IntMul => {
            for i in 0..n {
                out[i] = a[i] == 0 || b[i] == 0 || a[i] == 1 || b[i] == 1;
            }
        }
        OpKind::FpMul => {
            for i in 0..n {
                out[i] = a[i] == ONE
                    || b[i] == ONE
                    || (is_zero(a[i]) && is_finite(b[i]))
                    || (is_zero(b[i]) && is_finite(a[i]));
            }
        }
        OpKind::FpDiv => {
            for i in 0..n {
                out[i] = b[i] == ONE || (is_zero(a[i]) && !is_zero(b[i]) && !is_nan(b[i]));
            }
        }
        OpKind::FpSqrt => {
            for i in 0..n {
                out[i] = is_zero(a[i]) || a[i] == ONE;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(op: Op, expect: Option<TrivialKind>) {
        match (trivial_result(&op), expect) {
            (Some((kind, value)), Some(want)) => {
                assert_eq!(kind, want, "{op}");
                assert_eq!(value, op.compute(), "trivial result must match compute: {op}");
            }
            (None, None) => {}
            (got, want) => panic!("{op}: got {got:?}, want {want:?}"),
        }
    }

    #[test]
    fn int_mul_trivials() {
        check(Op::IntMul(0, 42), Some(TrivialKind::MulByZero));
        check(Op::IntMul(42, 0), Some(TrivialKind::MulByZero));
        check(Op::IntMul(1, 42), Some(TrivialKind::MulByOne));
        check(Op::IntMul(42, 1), Some(TrivialKind::MulByOne));
        check(Op::IntMul(-1, 42), None);
        check(Op::IntMul(6, 7), None);
    }

    #[test]
    fn fp_mul_trivials() {
        check(Op::FpMul(1.0, 3.5), Some(TrivialKind::MulByOne));
        check(Op::FpMul(3.5, 1.0), Some(TrivialKind::MulByOne));
        check(Op::FpMul(0.0, 3.5), Some(TrivialKind::MulByZero));
        check(Op::FpMul(-0.0, 3.5), Some(TrivialKind::MulByZero));
        check(Op::FpMul(2.0, 3.5), None);
        // 0 × ∞ = NaN requires the full unit's special-case logic.
        check(Op::FpMul(0.0, f64::INFINITY), None);
        // ∞ × 1 is trivial: forward the other operand.
        check(Op::FpMul(f64::INFINITY, 1.0), Some(TrivialKind::MulByOne));
    }

    #[test]
    fn fp_div_trivials() {
        check(Op::FpDiv(3.5, 1.0), Some(TrivialKind::DivByOne));
        check(Op::FpDiv(0.0, 3.5), Some(TrivialKind::ZeroDividend));
        check(Op::FpDiv(3.5, 2.0), None);
        // 0 / 0 = NaN is not trivial.
        check(Op::FpDiv(0.0, 0.0), None);
        check(Op::FpDiv(0.0, f64::NAN), None);
        // x / 0 = ±∞ handled by the unit's exception logic.
        check(Op::FpDiv(3.5, 0.0), None);
    }

    #[test]
    fn sqrt_trivials() {
        check(Op::FpSqrt(0.0), Some(TrivialKind::SqrtOfZeroOrOne));
        check(Op::FpSqrt(1.0), Some(TrivialKind::SqrtOfZeroOrOne));
        check(Op::FpSqrt(4.0), None);
        check(Op::FpSqrt(-1.0), None);
    }

    #[test]
    fn lane_classification_matches_scalar() {
        let fp: Vec<u64> = [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            3.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE / 2.0,
            -2.0,
        ]
        .iter()
        .map(|x| x.to_bits())
        .collect();
        let ints: Vec<u64> = [0i64, 1, -1, 2, 42, i64::MIN].iter().map(|&x| x as u64).collect();

        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv, OpKind::FpSqrt] {
            let pool = if kind == OpKind::IntMul { &ints } else { &fp };
            let mut a = Vec::new();
            let mut b = Vec::new();
            for &x in pool {
                for &y in pool {
                    a.push(x);
                    b.push(y);
                }
            }
            if kind == OpKind::FpSqrt {
                b.clear();
            }
            let mut out = vec![false; a.len()];
            fill_trivial_lanes(kind, &a, &b, &mut out);
            for i in 0..a.len() {
                let op = match kind {
                    OpKind::IntMul => Op::IntMul(a[i] as i64, b[i] as i64),
                    OpKind::FpMul => Op::FpMul(f64::from_bits(a[i]), f64::from_bits(b[i])),
                    OpKind::FpDiv => Op::FpDiv(f64::from_bits(a[i]), f64::from_bits(b[i])),
                    OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(a[i])),
                };
                assert_eq!(out[i], trivial_result(&op).is_some(), "{op}");
            }
        }
    }

    #[test]
    fn trivial_results_are_bit_exact() {
        // Signed-zero propagation: -0.0 × 3.0 = -0.0 exactly.
        let (_, v) = trivial_result(&Op::FpMul(-0.0, 3.0)).unwrap();
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        let (_, v) = trivial_result(&Op::FpDiv(-0.0, 2.0)).unwrap();
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
    }
}

//! Fixed-width structure-of-arrays operand batches (warp-style execution).
//!
//! The trace-replay loop and the memo-table probe are the hot path under
//! every experiment sweep. Feeding them one [`Op`] at a time pays an enum
//! construction, a virtual dispatch, and a full policy-branch cascade per
//! operation. An [`OpBatch`] instead presents a *lane tile*: one operation
//! kind and two borrowed operand columns (`a`/`b` as raw bit patterns),
//! exactly the layout the RLE-run trace format already stores. Batched
//! consumers hoist the per-kind and per-policy dispatch out of the lane
//! loop, precompute tags / set indices / trivial masks in plain
//! autovectorizable loops over the columns, and fall back to scalar code
//! only where the table state itself is serial (conflict resolution, LRU
//! updates, insertions).
//!
//! Lanes within a batch are always the same kind — batches never straddle
//! an RLE run boundary — and a partial tail batch is just a shorter tile.
//! `std::simd` is nightly-only, so the lane loops are written as scalar
//! loops over slices that the optimizer can vectorize; correctness never
//! depends on vectorization.

use std::sync::OnceLock;

use crate::op::{Op, OpKind};

/// Widest lane tile any batched consumer has to handle; per-batch scratch
/// buffers are stack arrays of this length.
pub const MAX_BATCH_WIDTH: usize = 64;

/// Narrowest useful tile — below this the per-batch setup dominates.
pub const MIN_BATCH_WIDTH: usize = 8;

/// Default tile width when `MEMO_BATCH` is unset.
pub const DEFAULT_BATCH_WIDTH: usize = 64;

/// The batch width in force for this process: the `MEMO_BATCH` environment
/// variable clamped to `[MIN_BATCH_WIDTH, MAX_BATCH_WIDTH]`, or
/// [`DEFAULT_BATCH_WIDTH`] when unset or unparsable. Read once and cached.
#[must_use]
pub fn batch_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        std::env::var("MEMO_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_BATCH_WIDTH, |w| w.clamp(MIN_BATCH_WIDTH, MAX_BATCH_WIDTH))
    })
}

/// A borrowed tile of same-kind operations in structure-of-arrays form.
///
/// `a` and `b` hold raw operand bit patterns ([`Op::operand_bits`]
/// convention: integer operands as two's-complement `u64`, floating-point
/// operands as IEEE-754 bits). Unary operations ([`OpKind::FpSqrt`]) carry
/// an empty `b` column.
#[derive(Debug, Clone, Copy)]
pub struct OpBatch<'a> {
    kind: OpKind,
    a: &'a [u64],
    b: &'a [u64],
}

impl<'a> OpBatch<'a> {
    /// Wrap operand columns as a batch.
    ///
    /// # Panics
    ///
    /// Panics if the column lengths disagree: binary kinds require
    /// `b.len() == a.len()`, unary kinds require `b` to be empty.
    #[must_use]
    pub fn new(kind: OpKind, a: &'a [u64], b: &'a [u64]) -> Self {
        if kind == OpKind::FpSqrt {
            assert!(b.is_empty(), "unary batches carry no b column");
        } else {
            assert_eq!(a.len(), b.len(), "operand columns must have equal length");
        }
        OpBatch { kind, a, b }
    }

    /// The operation kind shared by every lane.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// `true` when the batch has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// First operand column (raw bit patterns).
    #[must_use]
    pub fn a(&self) -> &'a [u64] {
        self.a
    }

    /// Second operand column — empty for unary kinds.
    #[must_use]
    pub fn b(&self) -> &'a [u64] {
        self.b
    }

    /// Rebuild lane `i` as a scalar [`Op`].
    #[must_use]
    pub fn op(&self, i: usize) -> Op {
        match self.kind {
            OpKind::IntMul => Op::IntMul(self.a[i] as i64, self.b[i] as i64),
            OpKind::FpMul => Op::FpMul(f64::from_bits(self.a[i]), f64::from_bits(self.b[i])),
            OpKind::FpDiv => Op::FpDiv(f64::from_bits(self.a[i]), f64::from_bits(self.b[i])),
            OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(self.a[i])),
        }
    }

    /// A sub-tile of `len` lanes starting at `start` (tail chunking).
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> OpBatch<'a> {
        OpBatch {
            kind: self.kind,
            a: &self.a[start..start + len],
            b: if self.b.is_empty() { self.b } else { &self.b[start..start + len] },
        }
    }
}

/// Result bits of one lane without materializing an [`Op`] or a
/// [`crate::Value`] — bit-identical to `batch.op(i).compute().to_bits()`.
#[must_use]
pub(crate) fn compute_bits(kind: OpKind, a: u64, b: u64) -> u64 {
    match kind {
        OpKind::IntMul => (a as i64).wrapping_mul(b as i64) as u64,
        OpKind::FpMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        OpKind::FpDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        OpKind::FpSqrt => f64::from_bits(a).sqrt().to_bits(),
    }
}

/// Per-batch outcome tally: how many lanes were served in a single cycle.
///
/// Cycle accountants charge a whole batch from these counts instead of
/// inspecting one [`crate::Outcome`] per op; `Filtered` and `Miss` lanes
/// both run at the unit's full latency, so only the two single-cycle
/// outcomes need distinguishing (protection penalties apply to `hits`
/// only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Lanes served by the table ([`crate::Outcome::Hit`]).
    pub hits: u64,
    /// Lanes served by the integrated trivial detector
    /// ([`crate::Outcome::Trivial`]).
    pub trivials: u64,
}

impl BatchOutcome {
    /// Lanes that avoided the full-latency computation.
    #[must_use]
    pub fn avoided(&self) -> u64 {
        self.hits + self.trivials
    }

    /// Accumulate another tile's tally.
    pub fn absorb(&mut self, other: BatchOutcome) {
        self.hits += other.hits;
        self.trivials += other.trivials;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_rebuilds_scalar_ops() {
        let a = [3.5f64.to_bits(), (-0.0f64).to_bits()];
        let b = [2.0f64.to_bits(), 7.25f64.to_bits()];
        let batch = OpBatch::new(OpKind::FpMul, &a, &b);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.op(0), Op::FpMul(3.5, 2.0));
        assert_eq!(batch.op(1), Op::FpMul(-0.0, 7.25));

        let ia = [5i64 as u64, (-3i64) as u64];
        let ib = [7i64 as u64, 11i64 as u64];
        let batch = OpBatch::new(OpKind::IntMul, &ia, &ib);
        assert_eq!(batch.op(1), Op::IntMul(-3, 11));

        let sq = [2.0f64.to_bits()];
        let batch = OpBatch::new(OpKind::FpSqrt, &sq, &[]);
        assert_eq!(batch.op(0), Op::FpSqrt(2.0));
    }

    #[test]
    fn slice_takes_a_tail() {
        let a: Vec<u64> = (0..10).map(|i| f64::from(i).to_bits()).collect();
        let batch = OpBatch::new(OpKind::FpSqrt, &a, &[]);
        let tail = batch.slice(7, 3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.op(0), Op::FpSqrt(7.0));
    }

    #[test]
    fn compute_bits_matches_op_compute() {
        let ops = [
            Op::IntMul(-7, 13),
            Op::IntMul(i64::MAX, 3),
            Op::FpMul(3.25, -0.125),
            Op::FpMul(0.0, f64::INFINITY),
            Op::FpDiv(9.5, 0.0),
            Op::FpDiv(f64::NAN, 2.0),
            Op::FpSqrt(7.0),
            Op::FpSqrt(-1.0),
        ];
        for op in ops {
            let (a, b) = op.operand_bits();
            assert_eq!(
                compute_bits(op.kind(), a, b),
                op.compute().to_bits(),
                "lane compute must be bit-identical for {op}"
            );
        }
    }

    #[test]
    fn outcome_tallies_accumulate() {
        let mut total = BatchOutcome::default();
        total.absorb(BatchOutcome { hits: 3, trivials: 1 });
        total.absorb(BatchOutcome { hits: 2, trivials: 0 });
        assert_eq!(total, BatchOutcome { hits: 5, trivials: 1 });
        assert_eq!(total.avoided(), 6);
    }
}

//! The operations a MEMO-TABLE can memoize.
//!
//! The paper instruments integer multiplication, floating-point
//! multiplication and floating-point division (§3.1), and names square root
//! as the first future extension (§4); all four are modelled here.

use std::fmt;

/// A single dynamic arithmetic operation, operands included.
///
/// `Op` is the unit of traffic presented to a memo table: the pair
/// *(operation kind, operand values)*. Instruction addresses are
/// deliberately absent — the paper memoizes *values*, not instructions
/// (§1.1, contrast with Sodani & Sohi's reuse buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Integer multiplication (two's-complement, wrapping — as the SPARC
    /// `smul` produces the low 64 bits).
    IntMul(i64, i64),
    /// IEEE-754 double-precision multiplication.
    FpMul(f64, f64),
    /// IEEE-754 double-precision division (dividend, divisor).
    FpDiv(f64, f64),
    /// IEEE-754 double-precision square root (future-work extension, §4).
    FpSqrt(f64),
}

/// The kind of an [`Op`], without its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer multiplication.
    IntMul,
    /// Floating-point multiplication.
    FpMul,
    /// Floating-point division.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
}

impl OpKind {
    /// All kinds, in the order the paper reports them.
    pub const ALL: [OpKind; 4] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv, OpKind::FpSqrt];

    /// `true` for the commutative operations (multiplications), whose
    /// lookups must compare operands in both orders (§2.2).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, OpKind::IntMul | OpKind::FpMul)
    }

    /// `true` if the operands and result are IEEE-754 doubles.
    #[must_use]
    pub fn is_fp(self) -> bool {
        !matches!(self, OpKind::IntMul)
    }

    /// Short lowercase label used in experiment tables
    /// (`imul`, `fmul`, `fdiv`, `fsqrt`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpKind::IntMul => "imul",
            OpKind::FpMul => "fmul",
            OpKind::FpDiv => "fdiv",
            OpKind::FpSqrt => "fsqrt",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A string did not name an [`OpKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown operation kind {:?} (expected imul, fmul, fdiv or fsqrt)",
            self.input
        )
    }
}

impl std::error::Error for ParseOpKindError {}

impl std::str::FromStr for OpKind {
    type Err = ParseOpKindError;

    /// Parse the [`OpKind::label`] form — the spelling query strings and
    /// CLI flags use.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "imul" => Ok(OpKind::IntMul),
            "fmul" => Ok(OpKind::FpMul),
            "fdiv" => Ok(OpKind::FpDiv),
            "fsqrt" => Ok(OpKind::FpSqrt),
            other => Err(ParseOpKindError { input: other.to_string() }),
        }
    }
}

/// The result of an [`Op`]: either an integer or a floating-point value.
///
/// Comparison is **bit-exact** for floating-point payloads (`-0.0 != 0.0`
/// under `==` of `f64`, but the two are *different* `Value`s here, and two
/// NaNs with the same payload are *equal*) because a memo table must be
/// transparent at the bit level.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// An integer result.
    Int(i64),
    /// A floating-point result.
    Fp(f64),
}

impl Value {
    /// Raw 64-bit pattern: two's complement for integers, IEEE-754 bits for
    /// floats. This is exactly what the hardware entry would store.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Int(i) => i as u64,
            Value::Fp(f) => f.to_bits(),
        }
    }

    /// Reconstruct a value of the kind produced by `kind` from raw bits.
    #[must_use]
    pub fn from_bits(kind: OpKind, bits: u64) -> Self {
        if kind.is_fp() {
            Value::Fp(f64::from_bits(bits))
        } else {
            Value::Int(bits as i64)
        }
    }

    /// The floating-point payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer; use [`Value::as_i64`] for those.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Fp(f) => f,
            Value::Int(i) => panic!("expected fp value, found int {i}"),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is floating-point; use [`Value::as_f64`] for those.
    #[must_use]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Fp(f) => panic!("expected int value, found fp {f}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Fp(a), Value::Fp(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Fp(x) => write!(f, "{x}"),
        }
    }
}

impl Op {
    /// The kind of this operation.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        match self {
            Op::IntMul(..) => OpKind::IntMul,
            Op::FpMul(..) => OpKind::FpMul,
            Op::FpDiv(..) => OpKind::FpDiv,
            Op::FpSqrt(..) => OpKind::FpSqrt,
        }
    }

    /// Perform the operation on a conventional computation unit.
    ///
    /// This is the ground truth against which memoized execution must be
    /// bit-exact (the crate's central invariant, enforced by property tests).
    #[must_use]
    pub fn compute(&self) -> Value {
        match *self {
            Op::IntMul(a, b) => Value::Int(a.wrapping_mul(b)),
            Op::FpMul(a, b) => Value::Fp(a * b),
            Op::FpDiv(a, b) => Value::Fp(a / b),
            Op::FpSqrt(a) => Value::Fp(a.sqrt()),
        }
    }

    /// The operands as raw 64-bit patterns `(first, second)`.
    ///
    /// Unary operations return the operand twice; together with the kind
    /// tag this keeps unary and binary keys disjoint.
    #[must_use]
    pub fn operand_bits(&self) -> (u64, u64) {
        match *self {
            Op::IntMul(a, b) => (a as u64, b as u64),
            Op::FpMul(a, b) | Op::FpDiv(a, b) => (a.to_bits(), b.to_bits()),
            Op::FpSqrt(a) => (a.to_bits(), a.to_bits()),
        }
    }

    /// The same operation with operands swapped, when it is commutative.
    #[must_use]
    pub fn swapped(&self) -> Option<Op> {
        match *self {
            Op::IntMul(a, b) => Some(Op::IntMul(b, a)),
            Op::FpMul(a, b) => Some(Op::FpMul(b, a)),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::IntMul(a, b) => write!(f, "imul {a}, {b}"),
            Op::FpMul(a, b) => write!(f, "fmul {a}, {b}"),
            Op::FpDiv(a, b) => write!(f, "fdiv {a}, {b}"),
            Op::FpSqrt(a) => write!(f, "fsqrt {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_parses_its_own_labels() {
        for kind in OpKind::ALL {
            assert_eq!(kind.label().parse::<OpKind>(), Ok(kind));
        }
        let err = "mul".parse::<OpKind>().unwrap_err();
        assert!(err.to_string().contains("mul"));
    }

    #[test]
    fn kinds_match_constructors() {
        assert_eq!(Op::IntMul(2, 3).kind(), OpKind::IntMul);
        assert_eq!(Op::FpMul(2.0, 3.0).kind(), OpKind::FpMul);
        assert_eq!(Op::FpDiv(2.0, 3.0).kind(), OpKind::FpDiv);
        assert_eq!(Op::FpSqrt(2.0).kind(), OpKind::FpSqrt);
    }

    #[test]
    fn compute_matches_native_semantics() {
        assert_eq!(Op::IntMul(6, 7).compute(), Value::Int(42));
        assert_eq!(Op::IntMul(i64::MAX, 2).compute(), Value::Int(i64::MAX.wrapping_mul(2)));
        assert_eq!(Op::FpMul(1.5, 2.0).compute(), Value::Fp(3.0));
        assert_eq!(Op::FpDiv(1.0, 3.0).compute(), Value::Fp(1.0 / 3.0));
        assert_eq!(Op::FpSqrt(9.0).compute(), Value::Fp(3.0));
    }

    #[test]
    fn value_equality_is_bitwise_for_fp() {
        assert_ne!(Value::Fp(0.0), Value::Fp(-0.0));
        assert_eq!(Value::Fp(f64::NAN), Value::Fp(f64::NAN));
        assert_ne!(Value::Fp(2.0), Value::Int(2));
    }

    #[test]
    fn value_bits_roundtrip() {
        for v in [Value::Int(-5), Value::Int(i64::MIN), Value::Fp(-0.0), Value::Fp(1.25)] {
            let kind = match v {
                Value::Int(_) => OpKind::IntMul,
                Value::Fp(_) => OpKind::FpMul,
            };
            assert_eq!(Value::from_bits(kind, v.to_bits()), v);
        }
    }

    #[test]
    fn swapped_only_for_commutative() {
        assert_eq!(Op::IntMul(1, 2).swapped(), Some(Op::IntMul(2, 1)));
        assert_eq!(Op::FpMul(1.0, 2.0).swapped(), Some(Op::FpMul(2.0, 1.0)));
        assert_eq!(Op::FpDiv(1.0, 2.0).swapped(), None);
        assert_eq!(Op::FpSqrt(1.0).swapped(), None);
    }

    #[test]
    fn commutativity_flags() {
        assert!(OpKind::IntMul.is_commutative());
        assert!(OpKind::FpMul.is_commutative());
        assert!(!OpKind::FpDiv.is_commutative());
        assert!(!OpKind::FpSqrt.is_commutative());
    }

    #[test]
    fn display_labels() {
        assert_eq!(OpKind::IntMul.to_string(), "imul");
        assert_eq!(Op::FpDiv(1.0, 2.0).to_string(), "fdiv 1, 2");
    }

    #[test]
    #[should_panic(expected = "expected fp value")]
    fn as_f64_panics_on_int() {
        let _ = Value::Int(3).as_f64();
    }
}

//! Statistics collected by every memo-table flavour.

use crate::config::TrivialPolicy;
use std::fmt;
use std::ops::AddAssign;

/// Counters describing the traffic a memo table has seen.
///
/// The paper's two headline indicators derive from these: the **hit ratio**
/// (how many multi-cycle operations were avoided) and, together with cycle
/// accounting in `memo-sim`, the **speedup**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Every operation presented, before any filtering.
    pub ops_seen: u64,
    /// Operations classified trivial by the detector (regardless of policy).
    pub trivial_seen: u64,
    /// Operations that actually probed the lookup table.
    pub table_lookups: u64,
    /// Probes that found a matching entry and reconstructed a result.
    pub table_hits: u64,
    /// Hits that matched on the *swapped* operand order (commutative probe).
    pub commutative_hits: u64,
    /// Probes that bypassed the table because the operands (or, at insert
    /// time, the result) cannot be represented — only possible with
    /// mantissa-only tags.
    pub bypasses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Valid entries overwritten to make room.
    pub evictions: u64,
    /// Faults applied to stored entries by the attached
    /// [`FaultInjector`](crate::FaultInjector): bit flips in values or
    /// tags, plus stuck-at reads that actually changed a read value.
    pub faults_injected: u64,
    /// Corruptions the protection policy detected (the entry was
    /// invalidated and the hit downgraded to a miss).
    pub faults_detected: u64,
    /// Corruptions SEC-DED corrected in place (the hit survived).
    pub faults_corrected: u64,
    /// Corruptions served to the consumer undetected — silent data
    /// corruption (always under [`Protection::None`](crate::Protection),
    /// even-bit errors under parity).
    pub faults_silent: u64,
}

impl MemoStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Probes that missed (`table_lookups − table_hits`).
    #[must_use]
    pub fn table_misses(&self) -> u64 {
        self.table_lookups - self.table_hits
    }

    /// Raw lookup hit ratio: `table_hits / table_lookups`.
    ///
    /// Returns 0 when the table was never probed.
    #[must_use]
    pub fn lookup_hit_ratio(&self) -> f64 {
        ratio(self.table_hits, self.table_lookups)
    }

    /// The hit ratio *as the paper reports it* for a given trivial policy:
    ///
    /// * [`TrivialPolicy::Memoize`] — hits over all operations ("all");
    /// * [`TrivialPolicy::Exclude`] — hits over non-trivial operations
    ///   ("non", the paper's default);
    /// * [`TrivialPolicy::Integrate`] — trivial detections count as hits
    ///   over all operations ("intgr").
    #[must_use]
    pub fn hit_ratio(&self, policy: TrivialPolicy) -> f64 {
        match policy {
            TrivialPolicy::Memoize | TrivialPolicy::Exclude => self.lookup_hit_ratio(),
            TrivialPolicy::Integrate => {
                ratio(self.trivial_seen + self.table_hits, self.ops_seen)
            }
        }
    }

    /// Fraction of all operations that were trivial (the "trv" column of
    /// Table 9).
    #[must_use]
    pub fn trivial_fraction(&self) -> f64 {
        ratio(self.trivial_seen, self.ops_seen)
    }

    /// Total corruption events observed at read time
    /// (`detected + corrected + silent`).
    #[must_use]
    pub fn faults_observed(&self) -> u64 {
        self.faults_detected + self.faults_corrected + self.faults_silent
    }

    /// Silent-data-corruption rate: silent faults per table hit served.
    ///
    /// Returns 0 when no hits were served.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        ratio(self.faults_silent, self.table_hits)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl AddAssign for MemoStats {
    fn add_assign(&mut self, rhs: Self) {
        self.ops_seen += rhs.ops_seen;
        self.trivial_seen += rhs.trivial_seen;
        self.table_lookups += rhs.table_lookups;
        self.table_hits += rhs.table_hits;
        self.commutative_hits += rhs.commutative_hits;
        self.bypasses += rhs.bypasses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.faults_injected += rhs.faults_injected;
        self.faults_detected += rhs.faults_detected;
        self.faults_corrected += rhs.faults_corrected;
        self.faults_silent += rhs.faults_silent;
    }
}

impl fmt::Display for MemoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops ({} trivial), {} lookups, {} hits ({:.1}%), {} insertions, {} evictions",
            self.ops_seen,
            self.trivial_seen,
            self.table_lookups,
            self.table_hits,
            100.0 * self.lookup_hit_ratio(),
            self.insertions,
            self.evictions,
        )?;
        if self.faults_injected > 0 || self.faults_observed() > 0 {
            write!(
                f,
                ", faults: {} injected / {} detected / {} corrected / {} silent",
                self.faults_injected,
                self.faults_detected,
                self.faults_corrected,
                self.faults_silent,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = MemoStats::new();
        assert_eq!(s.lookup_hit_ratio(), 0.0);
        assert_eq!(s.hit_ratio(TrivialPolicy::Integrate), 0.0);
        assert_eq!(s.trivial_fraction(), 0.0);
    }

    #[test]
    fn hit_ratio_per_policy() {
        let s = MemoStats {
            ops_seen: 100,
            trivial_seen: 20,
            table_lookups: 80,
            table_hits: 40,
            ..MemoStats::default()
        };
        // Exclude: 40 hits over 80 non-trivial lookups.
        assert_eq!(s.hit_ratio(TrivialPolicy::Exclude), 0.5);
        // Integrate: (20 trivial + 40 hits) / 100 ops.
        assert_eq!(s.hit_ratio(TrivialPolicy::Integrate), 0.6);
        assert_eq!(s.trivial_fraction(), 0.2);
        assert_eq!(s.table_misses(), 40);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = MemoStats { ops_seen: 1, table_hits: 1, table_lookups: 1, ..Default::default() };
        let b = MemoStats { ops_seen: 2, table_hits: 0, table_lookups: 2, ..Default::default() };
        a += b;
        assert_eq!(a.ops_seen, 3);
        assert_eq!(a.table_lookups, 3);
        assert!((a.lookup_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!MemoStats::new().to_string().is_empty());
    }

    #[test]
    fn fault_counters_accumulate_and_display() {
        let mut a = MemoStats {
            table_hits: 10,
            faults_injected: 4,
            faults_detected: 2,
            faults_corrected: 1,
            faults_silent: 1,
            ..Default::default()
        };
        assert_eq!(a.faults_observed(), 4);
        assert!((a.sdc_rate() - 0.1).abs() < 1e-12);
        a += a;
        assert_eq!(a.faults_injected, 8);
        assert_eq!(a.faults_silent, 2);
        assert!(a.to_string().contains("faults: 8 injected"));
        assert!(!MemoStats::new().to_string().contains("faults:"));
    }
}

//! Property-based tests of the memo-table's central invariants.
//!
//! The paper's correctness claim is *transparency*: an execution through a
//! (computation unit + MEMO-TABLE) tandem produces bit-identical results to
//! the plain unit, for every configuration in the design space.

use memo_table::{
    Assoc, HashScheme, InfiniteMemoTable, MemoConfig, MemoTable, Memoizer, Op, Replacement,
    TagPolicy, TrivialPolicy,
};
use proptest::prelude::*;

/// Operand pool small enough to force plenty of reuse.
fn pooled_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        // Values with shared mantissas across exponents, signs, specials.
        prop_oneof![
            Just(0.0f64),
            Just(-0.0),
            Just(1.0),
            Just(-1.0),
            Just(1.5),
            Just(3.0),
            Just(-3.7),
            Just(0.1),
            Just(1.7e300),
            Just(2.5e-300),
            Just(f64::INFINITY),
            Just(f64::NAN),
            Just(f64::MIN_POSITIVE / 8.0), // subnormal
        ],
        any::<f64>(),
        // Small grid: byte-like pixel values.
        (0u8..=255).prop_map(f64::from),
    ]
}

fn pooled_i64() -> impl Strategy<Value = i64> {
    prop_oneof![Just(0i64), Just(1), Just(-1), -20i64..20, any::<i64>()]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (pooled_i64(), pooled_i64()).prop_map(|(a, b)| Op::IntMul(a, b)),
        (pooled_f64(), pooled_f64()).prop_map(|(a, b)| Op::FpMul(a, b)),
        (pooled_f64(), pooled_f64()).prop_map(|(a, b)| Op::FpDiv(a, b)),
        pooled_f64().prop_map(Op::FpSqrt),
    ]
}

fn arb_config() -> impl Strategy<Value = MemoConfig> {
    (
        prop_oneof![Just(2usize), Just(8), Just(32), Just(64)],
        prop_oneof![
            Just(Assoc::DirectMapped),
            Just(Assoc::Ways(2)),
            Just(Assoc::Ways(4)),
            Just(Assoc::Full)
        ],
        prop_oneof![Just(TagPolicy::FullValue), Just(TagPolicy::MantissaOnly)],
        prop_oneof![
            Just(TrivialPolicy::Memoize),
            Just(TrivialPolicy::Exclude),
            Just(TrivialPolicy::Integrate)
        ],
        prop_oneof![Just(Replacement::Lru), Just(Replacement::Fifo), Just(Replacement::Random)],
        prop_oneof![Just(HashScheme::PaperXor), Just(HashScheme::FoldMix)],
        any::<bool>(),
    )
        .prop_filter_map("valid geometry", |(e, a, t, tr, r, h, c)| {
            MemoConfig::builder(e)
                .assoc(a)
                .tag(t)
                .trivial(tr)
                .replacement(r)
                .hash(h)
                .commutative(c)
                .build()
                .ok()
        })
}

proptest! {
    /// THE invariant: memoized execution is bit-exact vs. plain computation,
    /// for every configuration and any operand stream.
    #[test]
    fn transparency(cfg in arb_config(), ops in prop::collection::vec(arb_op(), 1..300)) {
        let mut table = MemoTable::new(cfg);
        for op in ops {
            let memoized = table.execute(op);
            let truth = op.compute();
            prop_assert_eq!(
                memoized.value.to_bits(),
                truth.to_bits(),
                "divergence on {} under {:?}",
                op,
                cfg
            );
        }
    }

    /// The infinite table is bit-exact too.
    #[test]
    fn transparency_infinite(
        tag in prop_oneof![Just(TagPolicy::FullValue), Just(TagPolicy::MantissaOnly)],
        ops in prop::collection::vec(arb_op(), 1..300),
    ) {
        let mut table = InfiniteMemoTable::with_policies(tag, TrivialPolicy::Exclude, true);
        for op in ops {
            prop_assert_eq!(table.execute(op).value.to_bits(), op.compute().to_bits());
        }
    }

    /// An unbounded table never hits less often than any finite table with
    /// the same policies.
    #[test]
    fn infinite_dominates_finite(cfg in arb_config(), ops in prop::collection::vec(arb_op(), 1..300)) {
        let mut inf = InfiniteMemoTable::with_policies(cfg.tag(), cfg.trivial(), cfg.commutative());
        let mut fin = MemoTable::new(cfg);
        for op in ops {
            inf.execute(op);
            fin.execute(op);
        }
        prop_assert!(inf.stats().table_hits >= fin.stats().table_hits);
    }

    /// Fully-associative LRU obeys the inclusion property: doubling the
    /// capacity never loses hits.
    #[test]
    fn lru_full_assoc_inclusion(ops in prop::collection::vec(arb_op(), 1..400)) {
        let mut small = MemoTable::new(
            MemoConfig::builder(8).assoc(Assoc::Full).build().unwrap(),
        );
        let mut large = MemoTable::new(
            MemoConfig::builder(16).assoc(Assoc::Full).build().unwrap(),
        );
        for op in ops {
            small.execute(op);
            large.execute(op);
        }
        prop_assert!(large.stats().table_hits >= small.stats().table_hits);
    }

    /// Bookkeeping invariants that must hold for any stream.
    #[test]
    fn stats_are_consistent(cfg in arb_config(), ops in prop::collection::vec(arb_op(), 1..300)) {
        let mut table = MemoTable::new(cfg);
        let n = ops.len() as u64;
        for op in ops {
            table.execute(op);
        }
        let s = table.stats();
        prop_assert_eq!(s.ops_seen, n);
        prop_assert!(s.table_hits <= s.table_lookups);
        prop_assert!(s.commutative_hits <= s.table_hits);
        prop_assert!(s.trivial_seen <= s.ops_seen);
        prop_assert!(s.table_lookups <= s.ops_seen);
        prop_assert!(s.evictions <= s.insertions);
        prop_assert!(table.len() <= cfg.entries());
        // Every insertion beyond capacity must have evicted.
        prop_assert!(s.insertions - s.evictions <= cfg.entries() as u64);
        let hr = table.hit_ratio();
        prop_assert!((0.0..=1.0).contains(&hr));
    }

    /// Replaying the exact same stream after a reset gives the exact same
    /// statistics (the table is deterministic).
    #[test]
    fn deterministic_replay(cfg in arb_config(), ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut table = MemoTable::new(cfg);
        for op in &ops {
            table.execute(*op);
        }
        let first = table.stats();
        table.reset();
        for op in &ops {
            table.execute(*op);
        }
        prop_assert_eq!(first, table.stats());
    }

    /// A second pass over a repeating stream on an infinite table hits on
    /// every non-trivial operation that the tag policy can represent.
    #[test]
    fn infinite_second_pass_hits(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut table = InfiniteMemoTable::new();
        for op in &ops {
            table.execute(*op);
        }
        let after_first = table.stats();
        for op in &ops {
            table.execute(*op);
        }
        let s = table.stats();
        // Second-pass lookups that could be stored must all hit: misses can
        // only grow by operations that were never inserted (none under
        // full-value tags).
        prop_assert_eq!(s.table_misses(), after_first.table_misses());
    }
}

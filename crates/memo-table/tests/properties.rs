//! Property-style tests of the memo-table's central invariants, driven by
//! deterministic SplitMix64 operand streams (the repo builds offline, so
//! the generators are hand-rolled rather than proptest strategies).
//!
//! The paper's correctness claim is *transparency*: an execution through a
//! (computation unit + MEMO-TABLE) tandem produces bit-identical results to
//! the plain unit, for every configuration in the design space — including,
//! in this PR, every soft-error [`Protection`] policy.

use memo_table::rng::SplitMix64;
use memo_table::{
    Assoc, FaultConfig, FaultInjector, HashScheme, InfiniteMemoTable, MemoConfig, MemoTable,
    Memoizer, Op, Protection, Replacement, TagPolicy, TrivialPolicy,
};

/// Operand pool small enough to force plenty of reuse, wide enough to cover
/// specials (signed zero, NaN, infinities, subnormals, huge/tiny exponents).
fn pooled_f64(r: &mut SplitMix64) -> f64 {
    const SPECIALS: [f64; 13] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        1.5,
        3.0,
        -3.7,
        0.1,
        1.7e300,
        2.5e-300,
        f64::INFINITY,
        f64::NAN,
        f64::MIN_POSITIVE / 8.0, // subnormal
    ];
    match r.next_below(4) {
        0 => SPECIALS[r.next_below(SPECIALS.len() as u64) as usize],
        1 => f64::from_bits(r.next_u64()), // arbitrary bit pattern
        _ => r.next_below(256) as f64,     // byte-like pixel values
    }
}

fn pooled_i64(r: &mut SplitMix64) -> i64 {
    match r.next_below(4) {
        0 => [0i64, 1, -1][r.next_below(3) as usize],
        1 => r.next_below(40) as i64 - 20,
        _ => r.next_u64() as i64,
    }
}

fn arb_op(r: &mut SplitMix64) -> Op {
    match r.next_below(4) {
        0 => Op::IntMul(pooled_i64(r), pooled_i64(r)),
        1 => Op::FpMul(pooled_f64(r), pooled_f64(r)),
        2 => Op::FpDiv(pooled_f64(r), pooled_f64(r)),
        _ => Op::FpSqrt(pooled_f64(r)),
    }
}

fn arb_ops(r: &mut SplitMix64, max: u64) -> Vec<Op> {
    let n = 1 + r.next_below(max) as usize;
    (0..n).map(|_| arb_op(r)).collect()
}

/// Draw a random valid configuration from the whole design space.
fn arb_config(r: &mut SplitMix64) -> MemoConfig {
    loop {
        let entries = [2usize, 8, 32, 64][r.next_below(4) as usize];
        let assoc = [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Full]
            [r.next_below(4) as usize];
        let tag = [TagPolicy::FullValue, TagPolicy::MantissaOnly][r.next_below(2) as usize];
        let trivial = [TrivialPolicy::Memoize, TrivialPolicy::Exclude, TrivialPolicy::Integrate]
            [r.next_below(3) as usize];
        let replacement =
            [Replacement::Lru, Replacement::Fifo, Replacement::Random][r.next_below(3) as usize];
        let hash = [HashScheme::PaperXor, HashScheme::FoldMix][r.next_below(2) as usize];
        let commutative = r.next_below(2) == 0;
        if let Ok(cfg) = MemoConfig::builder(entries)
            .assoc(assoc)
            .tag(tag)
            .trivial(trivial)
            .replacement(replacement)
            .hash(hash)
            .commutative(commutative)
            .build()
        {
            return cfg;
        }
    }
}

const ROUNDS: u64 = 48;

/// THE invariant: memoized execution is bit-exact vs. plain computation,
/// for every configuration and any operand stream.
#[test]
fn transparency() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("transparency");
        let cfg = arb_config(&mut r);
        let mut table = MemoTable::new(cfg);
        for op in arb_ops(&mut r, 300) {
            let memoized = table.execute(op);
            let truth = op.compute();
            assert_eq!(
                memoized.value.to_bits(),
                truth.to_bits(),
                "divergence on {op} under {cfg:?}"
            );
        }
    }
}

/// Transparency holds under *every* protection policy when fault injection
/// is disabled: the protection data path must be invisible on clean SRAM.
#[test]
fn transparency_under_every_protection_policy() {
    for policy in Protection::ALL {
        for seed in 0..ROUNDS / 2 {
            let mut r = SplitMix64::new(seed).split("protected-transparency");
            let entries = [8usize, 32][r.next_below(2) as usize];
            let tag = [TagPolicy::FullValue, TagPolicy::MantissaOnly][r.next_below(2) as usize];
            let cfg =
                MemoConfig::builder(entries).tag(tag).protection(policy).build().unwrap();
            // An attached-but-disabled injector must also be a no-op.
            let mut table = MemoTable::new(cfg)
                .with_fault_injector(FaultInjector::new(FaultConfig::disabled()));
            for op in arb_ops(&mut r, 300) {
                let memoized = table.execute(op);
                assert_eq!(
                    memoized.value.to_bits(),
                    op.compute().to_bits(),
                    "divergence on {op} under {policy}"
                );
            }
            let s = table.stats();
            assert_eq!(s.faults_injected, 0);
            assert_eq!(s.faults_observed(), 0, "no faults: nothing to detect under {policy}");
        }
    }
}

/// Parity-protected tables never serve a corrupted value under single-bit
/// faults: every flipped entry is detected and downgraded to a miss.
#[test]
fn parity_never_serves_single_bit_corruption() {
    for seed in 0..ROUNDS / 2 {
        let mut r = SplitMix64::new(seed).split("parity-faults");
        let cfg = MemoConfig::builder(32).protection(Protection::ParityDetect).build().unwrap();
        let mut table = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(seed ^ 0xF00D, 0.5)));
        for op in arb_ops(&mut r, 400) {
            let memoized = table.execute(op);
            assert_eq!(
                memoized.value.to_bits(),
                op.compute().to_bits(),
                "parity served a corrupted value for {op}"
            );
        }
        assert_eq!(table.stats().faults_silent, 0, "single-bit flips cannot escape parity");
    }
}

/// SEC-DED likewise serves only exact values under single-bit faults — by
/// correcting them rather than discarding the entry.
#[test]
fn ecc_never_serves_single_bit_corruption() {
    for seed in 0..ROUNDS / 2 {
        let mut r = SplitMix64::new(seed).split("ecc-faults");
        let cfg = MemoConfig::builder(32).protection(Protection::EccSecDed).build().unwrap();
        let mut table = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(seed ^ 0xBEEF, 0.5)));
        for op in arb_ops(&mut r, 400) {
            let memoized = table.execute(op);
            assert_eq!(memoized.value.to_bits(), op.compute().to_bits());
        }
        let s = table.stats();
        assert_eq!(s.faults_silent, 0);
        assert_eq!(s.faults_corrected, s.faults_injected, "every single flip is corrected");
    }
}

/// The infinite table is bit-exact too.
#[test]
fn transparency_infinite() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("transparency-infinite");
        let tag = [TagPolicy::FullValue, TagPolicy::MantissaOnly][r.next_below(2) as usize];
        let mut table = InfiniteMemoTable::with_policies(tag, TrivialPolicy::Exclude, true);
        for op in arb_ops(&mut r, 300) {
            assert_eq!(table.execute(op).value.to_bits(), op.compute().to_bits());
        }
    }
}

/// An unbounded table never hits less often than any finite table with the
/// same policies.
#[test]
fn infinite_dominates_finite() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("dominates");
        let cfg = arb_config(&mut r);
        let mut inf = InfiniteMemoTable::with_policies(cfg.tag(), cfg.trivial(), cfg.commutative());
        let mut fin = MemoTable::new(cfg);
        for op in arb_ops(&mut r, 300) {
            inf.execute(op);
            fin.execute(op);
        }
        assert!(inf.stats().table_hits >= fin.stats().table_hits);
    }
}

/// Fully-associative LRU obeys the inclusion property: doubling the
/// capacity never loses hits.
#[test]
fn lru_full_assoc_inclusion() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("inclusion");
        let mut small =
            MemoTable::new(MemoConfig::builder(8).assoc(Assoc::Full).build().unwrap());
        let mut large =
            MemoTable::new(MemoConfig::builder(16).assoc(Assoc::Full).build().unwrap());
        for op in arb_ops(&mut r, 400) {
            small.execute(op);
            large.execute(op);
        }
        assert!(large.stats().table_hits >= small.stats().table_hits);
    }
}

/// Bookkeeping invariants that must hold for any stream.
#[test]
fn stats_are_consistent() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("stats");
        let cfg = arb_config(&mut r);
        let ops = arb_ops(&mut r, 300);
        let n = ops.len() as u64;
        let mut table = MemoTable::new(cfg);
        for op in ops {
            table.execute(op);
        }
        let s = table.stats();
        assert_eq!(s.ops_seen, n);
        assert!(s.table_hits <= s.table_lookups);
        assert!(s.commutative_hits <= s.table_hits);
        assert!(s.trivial_seen <= s.ops_seen);
        assert!(s.table_lookups <= s.ops_seen);
        assert!(s.evictions <= s.insertions);
        assert!(table.len() <= cfg.entries());
        // Every insertion beyond capacity must have evicted.
        assert!(s.insertions - s.evictions <= cfg.entries() as u64);
        let hr = table.hit_ratio();
        assert!((0.0..=1.0).contains(&hr));
    }
}

/// Replaying the exact same stream after a reset gives the exact same
/// statistics (the table is deterministic) — fault process included.
#[test]
fn deterministic_replay() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("replay");
        let cfg = arb_config(&mut r);
        let ops = arb_ops(&mut r, 200);
        let mut table = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(seed, 0.2)));
        for op in &ops {
            table.execute(*op);
        }
        let first = table.stats();
        table.reset();
        for op in &ops {
            table.execute(*op);
        }
        assert_eq!(first, table.stats());
    }
}

/// A second pass over a repeating stream on an infinite table hits on every
/// non-trivial operation that the tag policy can represent.
#[test]
fn infinite_second_pass_hits() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("second-pass");
        let ops = arb_ops(&mut r, 200);
        let mut table = InfiniteMemoTable::new();
        for op in &ops {
            table.execute(*op);
        }
        let after_first = table.stats();
        for op in &ops {
            table.execute(*op);
        }
        let s = table.stats();
        // Second-pass lookups that could be stored must all hit: misses can
        // only grow by operations that were never inserted (none under
        // full-value tags).
        assert_eq!(s.table_misses(), after_first.table_misses());
    }
}

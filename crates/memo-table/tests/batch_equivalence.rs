//! Property tests: the batched execution paths must be *observably
//! identical* to the scalar ones — same statistics, same table state,
//! same per-op outcome tallies — for every configuration in the design
//! space, every tile width (including ragged tails), and operand streams
//! that exercise commutative-pair orientation, trivial operands, and
//! mantissa-hostile values.
//!
//! The oracle is the scalar `Memoizer::execute` loop (also reachable as
//! the trait's provided `execute_batch` default); the subject is each
//! table's lane-parallel override driven through uneven batch slices.

use memo_table::rng::SplitMix64;
use memo_table::{
    Assoc, BatchOutcome, HashScheme, InfiniteMemoTable, MemoConfig, MemoStats, MemoTable, Memoizer, OpBatch, OpKind, Outcome, Protection, Replacement, StackSimulator, SweepGrid, TagPolicy,
    TrivialPolicy,
};

/// Deterministic same-kind operand columns with the hazards the batched
/// front end must classify exactly like the scalar one:
///
/// * **reuse** — earlier pairs are replayed so hits occur at every depth;
/// * **orientation** — replayed commutative pairs are emitted in *swapped*
///   order about half the time, exercising the second-probe / canonical-key
///   logic and the orientation bit kept by the stack simulator;
/// * **trivial operands** — 0 / ±0 / 1 at a healthy rate;
/// * **mantissa-hostile values** — NaN, infinities, subnormals, negative
///   sqrt inputs, and magnitudes that overflow the mantissa-only
///   recombination, forcing encode/decode bypasses.
fn stream(kind: OpKind, seed: u64, len: usize) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SplitMix64::new(seed).split(kind.label());
    let mut a = Vec::with_capacity(len);
    let mut b = Vec::with_capacity(len);
    let mut history: Vec<(u64, u64)> = Vec::new();

    let fp_value = |rng: &mut SplitMix64| -> u64 {
        match rng.next_u64() % 16 {
            0 => 0.0f64.to_bits(),
            1 => (-0.0f64).to_bits(),
            2 => 1.0f64.to_bits(),
            3 => f64::INFINITY.to_bits(),
            4 => f64::NAN.to_bits(),
            5 => (f64::MIN_POSITIVE / 2.0).to_bits(), // subnormal
            6 => 1.5e300f64.to_bits(),                // exponent-sum overflow
            7 => 1.5e-300f64.to_bits(),               // exponent-sum underflow
            _ => {
                // A small lattice of normal values so reuse happens even
                // without explicit history replay.
                let frac = (rng.next_u64() % 8) as f64 / 8.0;
                let exp = (rng.next_u64() % 7) as i32 - 3;
                let sign = if rng.next_u64().is_multiple_of(4) { -1.0 } else { 1.0 };
                (sign * (1.0 + frac) * f64::powi(2.0, exp)).to_bits()
            }
        }
    };
    let int_value = |rng: &mut SplitMix64| -> u64 {
        const POOL: [i64; 10] = [0, 1, -1, 2, 3, 7, 42, -5, 255, i64::MIN];
        POOL[(rng.next_u64() % POOL.len() as u64) as usize] as u64
    };

    for _ in 0..len {
        let replay = !history.is_empty() && rng.next_u64().is_multiple_of(4);
        let (x, y) = if replay {
            let (px, py) = history[(rng.next_u64() as usize) % history.len()];
            if rng.next_u64().is_multiple_of(2) {
                (py, px) // swapped orientation
            } else {
                (px, py)
            }
        } else if kind == OpKind::IntMul {
            (int_value(&mut rng), int_value(&mut rng))
        } else {
            (fp_value(&mut rng), fp_value(&mut rng))
        };
        history.push((x, y));
        a.push(x);
        if kind != OpKind::FpSqrt {
            b.push(y);
        }
    }
    (a, b)
}

/// Scalar oracle: per-op `execute` loop, tallying outcomes like
/// `BatchOutcome` does.
fn run_scalar(table: &mut dyn Memoizer, batch: &OpBatch<'_>) -> BatchOutcome {
    let mut out = BatchOutcome::default();
    for i in 0..batch.len() {
        match table.execute(batch.op(i)).outcome {
            Outcome::Hit => out.hits += 1,
            Outcome::Trivial => out.trivials += 1,
            Outcome::Filtered | Outcome::Miss => {}
        }
    }
    out
}

/// Subject: `execute_batch` over deliberately uneven tile widths so both
/// full tiles and partial tails (down to single-lane batches) are hit.
fn run_batched(table: &mut dyn Memoizer, batch: &OpBatch<'_>) -> BatchOutcome {
    const WIDTHS: [usize; 8] = [1, 5, 64, 7, 33, 2, 64, 19];
    let mut out = BatchOutcome::default();
    let mut start = 0;
    let mut wi = 0;
    while start < batch.len() {
        let w = WIDTHS[wi % WIDTHS.len()].min(batch.len() - start);
        out.absorb(table.execute_batch(&batch.slice(start, w)));
        start += w;
        wi += 1;
    }
    out
}

/// Drive the same stream through a scalar-oracle table and a batched
/// table, then verify stats, tallies, and (via a shared follow-up scalar
/// pass) that the *stored state* of both tables is identical too.
fn assert_equivalent(
    mut scalar: Box<dyn Memoizer>,
    mut batched: Box<dyn Memoizer>,
    kind: OpKind,
    a: &[u64],
    b: &[u64],
    label: &str,
) {
    let batch = OpBatch::new(kind, a, b);
    let want = run_scalar(scalar.as_mut(), &batch);
    let got = run_batched(batched.as_mut(), &batch);
    assert_eq!(got, want, "{label}: outcome tallies diverged");
    assert_eq!(batched.stats(), scalar.stats(), "{label}: stats diverged");

    // State probe: replay a deterministic slice of the stream through both
    // tables *scalar*. Any divergence in stored entries / recency /
    // insertion order shows up as differing stats here.
    let probe_len = batch.len().min(96);
    let probe = batch.slice(batch.len() - probe_len, probe_len);
    let want2 = run_scalar(scalar.as_mut(), &probe);
    let got2 = run_scalar(batched.as_mut(), &probe);
    assert_eq!(got2, want2, "{label}: post-pass tallies diverged (state mismatch)");
    assert_eq!(batched.stats(), scalar.stats(), "{label}: post-pass stats diverged");
}

const TRIVIALS: [TrivialPolicy; 3] =
    [TrivialPolicy::Exclude, TrivialPolicy::Integrate, TrivialPolicy::Memoize];

/// Full cross of the axes the issue names — (assoc, protection,
/// trivial-filter) — with the secondary axes (tag, hash, commutative,
/// replacement) rotated deterministically so every value of each appears
/// against many primary combinations.
#[test]
fn finite_table_batched_equals_scalar_across_configs() {
    let assocs = [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Full];
    let tags = [TagPolicy::FullValue, TagPolicy::MantissaOnly];
    let hashes = [HashScheme::PaperXor, HashScheme::FoldMix];
    let replacements = [Replacement::Lru, Replacement::Fifo, Replacement::Random];

    let mut rotor = 0usize;
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0001, 480);
        for assoc in assocs {
            for protection in Protection::ALL {
                for trivial in TRIVIALS {
                    let tag = tags[rotor % tags.len()];
                    let hash = hashes[(rotor / 2) % hashes.len()];
                    let commutative = !rotor.is_multiple_of(3);
                    let replacement = replacements[rotor % replacements.len()];
                    rotor += 1;

                    let cfg = MemoConfig::builder(32)
                        .assoc(assoc)
                        .tag(tag)
                        .trivial(trivial)
                        .replacement(replacement)
                        .hash(hash)
                        .commutative(commutative)
                        .protection(protection)
                        .build()
                        .expect("valid config");
                    let label = format!("{} {}", kind.label(), cfg.canonical());
                    assert_equivalent(
                        Box::new(MemoTable::new(cfg)),
                        Box::new(MemoTable::new(cfg)),
                        kind,
                        &a,
                        &b,
                        &label,
                    );
                }
            }
        }
    }
}

/// Dedicated full cross of the secondary axes (tag × hash × commutative ×
/// replacement) at a fixed small geometry, where conflict pressure is
/// highest and the commutative second probe fires most often.
#[test]
fn finite_table_secondary_axes_full_cross() {
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0002, 480);
        for tag in [TagPolicy::FullValue, TagPolicy::MantissaOnly] {
            for hash in [HashScheme::PaperXor, HashScheme::FoldMix] {
                for commutative in [false, true] {
                    for replacement in
                        [Replacement::Lru, Replacement::Fifo, Replacement::Random]
                    {
                        let cfg = MemoConfig::builder(8)
                            .assoc(Assoc::Ways(2))
                            .tag(tag)
                            .trivial(TrivialPolicy::Exclude)
                            .replacement(replacement)
                            .hash(hash)
                            .commutative(commutative)
                            .build()
                            .expect("valid config");
                        let label = format!("{} {}", kind.label(), cfg.canonical());
                        assert_equivalent(
                            Box::new(MemoTable::new(cfg)),
                            Box::new(MemoTable::new(cfg)),
                            kind,
                            &a,
                            &b,
                            &label,
                        );
                    }
                }
            }
        }
    }
}

/// The infinite reference table must match too — it has its own batched
/// override (and its own hasher), so it gets its own sweep over policies.
#[test]
fn infinite_table_batched_equals_scalar() {
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0003, 480);
        for tag in [TagPolicy::FullValue, TagPolicy::MantissaOnly] {
            for trivial in TRIVIALS {
                for commutative in [false, true] {
                    for protection in Protection::ALL {
                        let make = || {
                            Box::new(
                                InfiniteMemoTable::with_policies(tag, trivial, commutative)
                                    .with_protection(protection),
                            )
                        };
                        let label = format!(
                            "infinite {} tag={tag:?} trivial={trivial:?} \
                             commutative={commutative} protection={protection:?}",
                            kind.label()
                        );
                        assert_equivalent(make(), make(), kind, &a, &b, &label);
                    }
                }
            }
        }
    }
}

/// The fused stack-distance sweep: `access_batch` must produce the exact
/// per-configuration stats `access` does, across the whole grid plus the
/// infinite column, for both tag policies (the mantissa path can poison
/// exactness mid-stream — the batched path must stop at the same op).
#[test]
fn stack_simulator_batched_equals_scalar() {
    let assocs = [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Full];
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0004, 480);
        let batch = OpBatch::new(kind, &a, &b);
        for tag in [TagPolicy::FullValue, TagPolicy::MantissaOnly] {
            for commutative in [false, true] {
                let configs: Vec<MemoConfig> = [8usize, 32, 128]
                    .iter()
                    .flat_map(|&entries| {
                        assocs.iter().map(move |&assoc| {
                            MemoConfig::builder(entries)
                                .assoc(assoc)
                                .tag(tag)
                                .commutative(commutative)
                                .build()
                                .expect("valid config")
                        })
                    })
                    .collect();
                // The infinite column is only exact for the policies the
                // reference table models (FullValue, commutative).
                let include_infinite = tag == TagPolicy::FullValue && commutative;
                let grid = SweepGrid::new(&configs, include_infinite).expect("valid grid");

                let mut scalar = StackSimulator::new(&grid);
                for i in 0..batch.len() {
                    scalar.access(batch.op(i));
                }
                let mut batched = StackSimulator::new(&grid);
                const WIDTHS: [usize; 6] = [3, 64, 1, 17, 64, 9];
                let mut start = 0;
                let mut wi = 0;
                while start < batch.len() {
                    let w = WIDTHS[wi % WIDTHS.len()].min(batch.len() - start);
                    batched.access_batch(&batch.slice(start, w));
                    start += w;
                    wi += 1;
                }

                let want = scalar.finish();
                let got = batched.finish();
                let label =
                    format!("sweep {} tag={tag:?} commutative={commutative}", kind.label());
                assert_eq!(got.exact, want.exact, "{label}: exactness flag diverged");
                assert_eq!(
                    got.finite, want.finite,
                    "{label}: finite grid stats diverged"
                );
                assert_eq!(got.infinite, want.infinite, "{label}: infinite column diverged");
            }
        }
    }
}

/// Single-lane batches are the degenerate tail case: they must behave
/// exactly like scalar `execute`, op by op, for a hostile stream.
#[test]
fn width_one_batches_match_scalar_op_by_op() {
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0005, 200);
        let batch = OpBatch::new(kind, &a, &b);
        let cfg = MemoConfig::paper_default();
        let mut scalar = MemoTable::new(cfg);
        let mut batched = MemoTable::new(cfg);
        for i in 0..batch.len() {
            let lane = batch.slice(i, 1);
            let want = match scalar.execute(lane.op(0)).outcome {
                Outcome::Hit => BatchOutcome { hits: 1, trivials: 0 },
                Outcome::Trivial => BatchOutcome { hits: 0, trivials: 1 },
                _ => BatchOutcome::default(),
            };
            let got = batched.execute_batch(&lane);
            assert_eq!(got, want, "{} lane {i}", kind.label());
            assert_eq!(
                Memoizer::stats(&batched),
                Memoizer::stats(&scalar),
                "{} lane {i}",
                kind.label()
            );
        }
    }
}

/// Sanity anchor so a bug that zeroes both sides can't pass silently:
/// the streams must actually produce hits, trivials, commutative hits,
/// and (under mantissa tags) bypasses.
#[test]
fn streams_exercise_all_outcome_classes() {
    let mut saw = MemoStats::default();
    for kind in OpKind::ALL {
        let (a, b) = stream(kind, 0x1998_0001, 480);
        let cfg = MemoConfig::builder(32)
            .assoc(Assoc::Ways(4))
            .tag(TagPolicy::MantissaOnly)
            .trivial(TrivialPolicy::Integrate)
            .commutative(true)
            .build()
            .expect("valid config");
        let mut table = MemoTable::new(cfg);
        let batch = OpBatch::new(kind, &a, &b);
        run_batched(&mut table, &batch);
        let s = Memoizer::stats(&table);
        saw.table_hits += s.table_hits;
        saw.trivial_seen += s.trivial_seen;
        saw.commutative_hits += s.commutative_hits;
        saw.bypasses += s.bypasses;
        saw.evictions += s.evictions;
        saw.insertions += s.insertions;
    }
    assert!(saw.table_hits > 0, "no hits: stream too cold");
    assert!(saw.trivial_seen > 0, "no trivials in stream");
    assert!(saw.commutative_hits > 0, "no swapped-orientation hits");
    assert!(saw.bypasses > 0, "no mantissa bypasses");
    assert!(saw.evictions > 0, "no capacity pressure");
    assert!(saw.insertions > 0, "no insertions");
}

//! Property-style tests: the assembler/disassembler round-trip, and
//! interpreter robustness over pseudo-random programs (SplitMix64 streams
//! replace proptest; the repo builds offline).

use memo_isa::{assemble, Cpu, Inst, IsaError};
use memo_sim::{CountingSink, NullSink};
use memo_table::rng::SplitMix64;

fn arb_reg(r: &mut SplitMix64) -> u8 {
    r.next_below(32) as u8
}

/// Branch targets stay within a fixed window so regenerated labels exist.
fn arb_inst(r: &mut SplitMix64, max_target: usize) -> Inst {
    let t = r.next_below(max_target as u64 + 1) as usize;
    match r.next_below(19) {
        0 => Inst::Add(arb_reg(r), arb_reg(r), arb_reg(r)),
        1 => Inst::Sub(arb_reg(r), arb_reg(r), arb_reg(r)),
        2 => Inst::Addi(arb_reg(r), arb_reg(r), r.next_below(200) as i64 - 100),
        3 => Inst::Li(arb_reg(r), r.next_below(2000) as i64 - 1000),
        4 => Inst::Mul(arb_reg(r), arb_reg(r), arb_reg(r)),
        5 => Inst::Xor(arb_reg(r), arb_reg(r), arb_reg(r)),
        6 => Inst::Ld(arb_reg(r), arb_reg(r), r.next_below(256) as i64 * 8),
        7 => Inst::St(arb_reg(r), arb_reg(r), r.next_below(256) as i64 * 8),
        8 => Inst::Ldf(arb_reg(r), arb_reg(r), r.next_below(256) as i64 * 8),
        9 => Inst::Lif(arb_reg(r), f64::from_bits(r.next_u64())),
        10 => Inst::Fadd(arb_reg(r), arb_reg(r), arb_reg(r)),
        11 => Inst::Fmul(arb_reg(r), arb_reg(r), arb_reg(r)),
        12 => Inst::Fdiv(arb_reg(r), arb_reg(r), arb_reg(r)),
        13 => Inst::Fsqrt(arb_reg(r), arb_reg(r)),
        14 => Inst::Beq(arb_reg(r), arb_reg(r), t),
        15 => Inst::Blt(arb_reg(r), arb_reg(r), t),
        16 => Inst::Jmp(t),
        17 => Inst::Nop,
        _ => Inst::Halt,
    }
}

fn arb_insts(r: &mut SplitMix64, max_target: usize, max_len: u64) -> Vec<Inst> {
    let n = 1 + r.next_below(max_len) as usize;
    (0..n).map(|_| arb_inst(r, max_target)).collect()
}

const ROUNDS: u64 = 32;

/// Disassembling and reassembling reproduces the exact instruction
/// sequence (bit-exact floats included).
#[test]
fn assembler_roundtrip() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("roundtrip");
        let insts = arb_insts(&mut r, 20, 19);
        // Build source by hand through Display (the disassembler).
        let program = {
            // Indirect construction: emit source first, then parse.
            let mut src = String::new();
            for (i, inst) in insts.iter().enumerate() {
                src.push_str(&format!("L{i}: {inst}\n"));
            }
            for i in insts.len()..=20 {
                src.push_str(&format!("L{i}: halt\n"));
            }
            assemble(&src).expect("generated source assembles")
        };
        let regenerated = assemble(&program.to_source()).expect("roundtrip assembles");
        let n = program.len();
        assert_eq!(&regenerated.instructions()[..n], program.instructions());

        // Float payloads must round-trip bit-exactly.
        for (a, b) in program.instructions().iter().zip(regenerated.instructions()) {
            if let (Inst::Lif(_, x), Inst::Lif(_, y)) = (a, b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

/// The interpreter never panics on arbitrary (bounded-target) programs:
/// it either halts, faults cleanly, or runs out of fuel.
#[test]
fn interpreter_is_total() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("total");
        let insts = arb_insts(&mut r, 30, 29);
        let mut src = String::new();
        for (i, inst) in insts.iter().enumerate() {
            src.push_str(&format!("L{i}: {inst}\n"));
        }
        for i in insts.len()..=30 {
            src.push_str(&format!("L{i}: halt\n"));
        }
        let program = assemble(&src).expect("assembles");
        let mut cpu = Cpu::new(64 * 1024);
        match cpu.run(&program, &mut NullSink, 10_000) {
            Ok(_)
            | Err(
                IsaError::MemoryFault { .. }
                | IsaError::DivideByZero
                | IsaError::OutOfFuel
                | IsaError::RanOffEnd,
            ) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}

/// Event counts equal retired instruction counts by category.
#[test]
fn events_match_retirement() {
    for seed in 0..ROUNDS {
        let n = 1 + SplitMix64::new(seed).split("retire").next_below(49);
        let src = format!(
            "li r1, {n}\n li r2, 0\n lif f1, 3.0\n lif f2, 7.0\n \
             loop: fmul f3, f1, f2\n addi r2, r2, 1\n blt r2, r1, loop\n halt"
        );
        let program = assemble(&src).expect("assembles");
        let mut cpu = Cpu::new(1024);
        let mut sink = CountingSink::new();
        cpu.run(&program, &mut sink, 1_000_000).expect("halts");
        assert_eq!(sink.mix().fp_mul, n);
        assert_eq!(sink.mix().branches, n);
        // Every retired instruction produced exactly one event except halt.
        assert_eq!(sink.mix().total(), cpu.retired() - 1);
    }
}

/// Every bundled kernel program survives assemble → disassemble →
/// re-assemble with an identical instruction stream. Region detection
/// (crate `memo-region`) keys off these encodings; this locks them down.
#[test]
fn bundled_programs_roundtrip() {
    let sources = [
        ("dot_product", memo_isa::programs::dot_product(16)),
        ("normalize", memo_isa::programs::normalize(12, 3.5)),
        ("newton_sqrt", memo_isa::programs::newton_sqrt(8)),
        ("matmul", memo_isa::programs::matmul(5)),
        ("convolve3", memo_isa::programs::convolve3(9)),
    ];
    for (name, src) in sources {
        let original = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let regenerated = assemble(&original.to_source())
            .unwrap_or_else(|e| panic!("{name} roundtrip: {e}"));
        assert_eq!(
            &regenerated.instructions()[..original.len()],
            original.instructions(),
            "{name}: instruction stream must survive the round-trip"
        );
        // `to_source` appends one guard halt for the one-past-the-end label.
        assert_eq!(regenerated.len(), original.len() + 1, "{name}");
        assert_eq!(regenerated.instructions()[original.len()], Inst::Halt, "{name}");
        // A second trip is a fixed point.
        let third = assemble(&regenerated.to_source()).expect("second roundtrip");
        assert_eq!(&third.instructions()[..regenerated.len()], regenerated.instructions(), "{name}");
    }
}

//! Property tests: the assembler/disassembler round-trip, and interpreter
//! robustness over arbitrary programs.

use memo_isa::{assemble, Cpu, Inst, IsaError};
use memo_sim::{CountingSink, NullSink};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..32
}

/// Branch targets stay within a fixed window so regenerated labels exist.
fn arb_inst(max_target: usize) -> impl Strategy<Value = Inst> {
    let t = 0..=max_target;
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Add(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Sub(a, b, c)),
        (arb_reg(), arb_reg(), -100i64..100).prop_map(|(a, b, i)| Inst::Addi(a, b, i)),
        (arb_reg(), -1000i64..1000).prop_map(|(a, i)| Inst::Li(a, i)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Mul(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Xor(a, b, c)),
        (arb_reg(), arb_reg(), 0i64..256).prop_map(|(a, b, o)| Inst::Ld(a, b, o * 8)),
        (arb_reg(), arb_reg(), 0i64..256).prop_map(|(a, b, o)| Inst::St(a, b, o * 8)),
        (arb_reg(), arb_reg(), 0i64..256).prop_map(|(a, b, o)| Inst::Ldf(a, b, o * 8)),
        (arb_reg(), any::<f64>()).prop_map(|(a, v)| Inst::Lif(a, v)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Fadd(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Fmul(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Inst::Fdiv(a, b, c)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::Fsqrt(a, b)),
        (arb_reg(), arb_reg(), t.clone()).prop_map(|(a, b, t)| Inst::Beq(a, b, t)),
        (arb_reg(), arb_reg(), t.clone()).prop_map(|(a, b, t)| Inst::Blt(a, b, t)),
        t.clone().prop_map(Inst::Jmp),
        Just(Inst::Nop),
        Just(Inst::Halt),
    ]
}

proptest! {
    /// Disassembling and reassembling reproduces the exact instruction
    /// sequence (bit-exact floats included).
    #[test]
    fn assembler_roundtrip(insts in prop::collection::vec(arb_inst(20), 1..20)) {
        // Build source by hand through Display (the disassembler).
        let program = {
            // Indirect construction: emit source first, then parse.
            let mut src = String::new();
            for (i, inst) in insts.iter().enumerate() {
                src.push_str(&format!("L{i}: {inst}\n"));
            }
            for i in insts.len()..=20 {
                src.push_str(&format!("L{i}: halt\n"));
            }
            assemble(&src).expect("generated source assembles")
        };
        let regenerated = assemble(&program.to_source()).expect("roundtrip assembles");
        let n = program.len();
        prop_assert_eq!(&regenerated.instructions()[..n], program.instructions());

        // Float payloads must round-trip bit-exactly.
        for (a, b) in program.instructions().iter().zip(regenerated.instructions()) {
            if let (Inst::Lif(_, x), Inst::Lif(_, y)) = (a, b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The interpreter never panics on arbitrary (bounded-target) programs:
    /// it either halts, faults cleanly, or runs out of fuel.
    #[test]
    fn interpreter_is_total(insts in prop::collection::vec(arb_inst(30), 1..30)) {
        let mut src = String::new();
        for (i, inst) in insts.iter().enumerate() {
            src.push_str(&format!("L{i}: {inst}\n"));
        }
        for i in insts.len()..=30 {
            src.push_str(&format!("L{i}: halt\n"));
        }
        let program = assemble(&src).expect("assembles");
        let mut cpu = Cpu::new(64 * 1024);
        match cpu.run(&program, &mut NullSink, 10_000) {
            Ok(_) => {}
            Err(
                IsaError::MemoryFault { .. }
                | IsaError::DivideByZero
                | IsaError::OutOfFuel
                | IsaError::RanOffEnd,
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// Event counts equal retired instruction counts by category.
    #[test]
    fn events_match_retirement(n in 1u64..50) {
        let src = format!(
            "li r1, {n}\n li r2, 0\n lif f1, 3.0\n lif f2, 7.0\n \
             loop: fmul f3, f1, f2\n addi r2, r2, 1\n blt r2, r1, loop\n halt"
        );
        let program = assemble(&src).expect("assembles");
        let mut cpu = Cpu::new(1024);
        let mut sink = CountingSink::new();
        cpu.run(&program, &mut sink, 1_000_000).expect("halts");
        prop_assert_eq!(sink.mix().fp_mul, n);
        prop_assert_eq!(sink.mix().branches, n);
        // Every retired instruction produced exactly one event except halt.
        prop_assert_eq!(sink.mix().total(), cpu.retired() - 1);
    }
}

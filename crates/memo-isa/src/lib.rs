//! # memo-isa
//!
//! A SPARC-flavoured miniature instruction set, assembler, and tracing
//! interpreter — the stand-in for Shade, the instruction-level simulator
//! the paper used to collect its traces (§3).
//!
//! Shade executed SPARC binaries natively and broke on specific
//! instructions to record register values into software MEMO-TABLEs. Our
//! interpreter does the equivalent for programs written in its own
//! assembly: every executed instruction is streamed as a
//! [`memo_sim::Event`] — loads and stores with addresses, multiplies and
//! divides with operand values — into any [`memo_sim::EventSink`], so the
//! same measurement machinery (hit-ratio probes, the cycle accountant)
//! runs on real programs rather than instrumented Rust kernels.
//!
//! ## Example
//!
//! ```
//! use memo_isa::{assemble, Cpu};
//! use memo_sim::{CountingSink, EventSink};
//!
//! let program = assemble(
//!     r#"
//!         li   r1, 10        ; loop counter
//!         lif  f1, 3.0
//!         lif  f2, 21.0
//!     loop:
//!         fdiv f3, f2, f1    ; 21 / 3, over and over
//!         subi r1, r1, 1
//!         bgt  r1, r0, loop
//!         halt
//!     "#,
//! )?;
//!
//! let mut sink = CountingSink::new();
//! let mut cpu = Cpu::new(64 * 1024);
//! cpu.run(&program, &mut sink, 10_000)?;
//! assert_eq!(sink.mix().fp_div, 10);
//! assert_eq!(cpu.freg(3), 7.0);
//! # Ok::<(), memo_isa::IsaError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod asm;
mod cpu;
mod disasm;
mod inst;
pub mod programs;

pub use asm::assemble;
pub use cpu::{Cpu, ExitReason, Step};
pub use inst::{Inst, IsaError, Program};

//! A two-pass text assembler.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//!     li   r1, 100          ; comments run to end of line
//! loop:                     ; labels end with ':'
//!     ldf  f1, r2, 0        ; load double from [r2 + 0]
//!     fmul f1, f1, f1
//!     stf  f1, r2, 0
//!     addi r2, r2, 8
//!     subi r1, r1, 1
//!     bgt  r1, r0, loop
//!     halt
//! ```

use crate::inst::{Inst, IsaError, Program};

/// Assemble source text into a [`Program`].
///
/// # Errors
///
/// [`IsaError::Parse`] with the offending line on any syntax error;
/// [`IsaError::UnknownLabel`] if a branch targets an undefined label.
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut labels: Vec<(String, usize)> = Vec::new();
    let mut statements: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(IsaError::Parse {
                    line: lineno + 1,
                    message: format!("malformed label in {line:?}"),
                });
            }
            labels.push((label.to_string(), statements.len()));
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            statements.push((lineno + 1, rest.to_string()));
        }
    }

    // Pass 2: encode instructions, resolving labels.
    let resolve = |name: &str| -> Result<usize, IsaError> {
        labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, i)| i)
            .ok_or_else(|| IsaError::UnknownLabel(name.to_string()))
    };

    let mut insts = Vec::with_capacity(statements.len());
    for (lineno, stmt) in &statements {
        insts.push(parse_statement(*lineno, stmt, &resolve)?);
    }
    Ok(Program { insts, labels })
}

fn parse_statement(
    line: usize,
    stmt: &str,
    resolve: &dyn Fn(&str) -> Result<usize, IsaError>,
) -> Result<Inst, IsaError> {
    let err = |message: String| IsaError::Parse { line, message };
    let (mnemonic, rest) = match stmt.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (stmt, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };

    let want = |n: usize| -> Result<(), IsaError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!("{mnemonic} expects {n} operands, found {}", ops.len())))
        }
    };
    let ireg = |s: &str| -> Result<u8, IsaError> {
        s.strip_prefix('r')
            .and_then(|d| d.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| IsaError::BadRegister(s.to_string()))
    };
    let freg = |s: &str| -> Result<u8, IsaError> {
        s.strip_prefix('f')
            .and_then(|d| d.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| IsaError::BadRegister(s.to_string()))
    };
    let int = |s: &str| -> Result<i64, IsaError> {
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            i64::from_str_radix(hex, 16).ok()
        } else {
            s.parse::<i64>().ok()
        };
        parsed.ok_or_else(|| err(format!("bad integer literal {s:?}")))
    };
    let fp = |s: &str| -> Result<f64, IsaError> {
        s.parse::<f64>().map_err(|_| err(format!("bad float literal {s:?}")))
    };

    let inst = match mnemonic.to_ascii_lowercase().as_str() {
        "add" => {
            want(3)?;
            Inst::Add(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "sub" => {
            want(3)?;
            Inst::Sub(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "addi" => {
            want(3)?;
            Inst::Addi(ireg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "subi" => {
            want(3)?;
            Inst::Subi(ireg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "and" => {
            want(3)?;
            Inst::And(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "or" => {
            want(3)?;
            Inst::Or(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "xor" => {
            want(3)?;
            Inst::Xor(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "sll" => {
            want(3)?;
            Inst::Sll(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "srl" => {
            want(3)?;
            Inst::Srl(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "li" => {
            want(2)?;
            Inst::Li(ireg(ops[0])?, int(ops[1])?)
        }
        "mul" => {
            want(3)?;
            Inst::Mul(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "div" => {
            want(3)?;
            Inst::Div(ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?)
        }
        "ld" => {
            want(3)?;
            Inst::Ld(ireg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "st" => {
            want(3)?;
            Inst::St(ireg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "ldf" => {
            want(3)?;
            Inst::Ldf(freg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "stf" => {
            want(3)?;
            Inst::Stf(freg(ops[0])?, ireg(ops[1])?, int(ops[2])?)
        }
        "lif" => {
            want(2)?;
            Inst::Lif(freg(ops[0])?, fp(ops[1])?)
        }
        "fadd" => {
            want(3)?;
            Inst::Fadd(freg(ops[0])?, freg(ops[1])?, freg(ops[2])?)
        }
        "fsub" => {
            want(3)?;
            Inst::Fsub(freg(ops[0])?, freg(ops[1])?, freg(ops[2])?)
        }
        "fmul" => {
            want(3)?;
            Inst::Fmul(freg(ops[0])?, freg(ops[1])?, freg(ops[2])?)
        }
        "fdiv" => {
            want(3)?;
            Inst::Fdiv(freg(ops[0])?, freg(ops[1])?, freg(ops[2])?)
        }
        "fsqrt" => {
            want(2)?;
            Inst::Fsqrt(freg(ops[0])?, freg(ops[1])?)
        }
        "fmov" => {
            want(2)?;
            Inst::Fmov(freg(ops[0])?, freg(ops[1])?)
        }
        "itof" => {
            want(2)?;
            Inst::Itof(freg(ops[0])?, ireg(ops[1])?)
        }
        "ftoi" => {
            want(2)?;
            Inst::Ftoi(ireg(ops[0])?, freg(ops[1])?)
        }
        "beq" => {
            want(3)?;
            Inst::Beq(ireg(ops[0])?, ireg(ops[1])?, resolve(ops[2])?)
        }
        "bne" => {
            want(3)?;
            Inst::Bne(ireg(ops[0])?, ireg(ops[1])?, resolve(ops[2])?)
        }
        "blt" => {
            want(3)?;
            Inst::Blt(ireg(ops[0])?, ireg(ops[1])?, resolve(ops[2])?)
        }
        "bgt" => {
            want(3)?;
            Inst::Bgt(ireg(ops[0])?, ireg(ops[1])?, resolve(ops[2])?)
        }
        "fblt" => {
            want(3)?;
            Inst::Fblt(freg(ops[0])?, freg(ops[1])?, resolve(ops[2])?)
        }
        "jmp" => {
            want(1)?;
            Inst::Jmp(resolve(ops[0])?)
        }
        "nop" => {
            want(0)?;
            Inst::Nop
        }
        "halt" => {
            want(0)?;
            Inst::Halt
        }
        other => return Err(err(format!("unknown mnemonic {other:?}"))),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_small_program() {
        let p = assemble(
            "start: li r1, 5\n  addi r1, r1, -2 ; comment\n  bgt r1, r0, start\n  halt",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.instructions()[0], Inst::Li(1, 5));
        assert_eq!(p.instructions()[2], Inst::Bgt(1, 0, 0));
    }

    #[test]
    fn labels_may_share_a_line_or_stand_alone() {
        let p = assemble("a:\nb: nop\n jmp a\n halt").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
        assert_eq!(p.instructions()[1], Inst::Jmp(0));
    }

    #[test]
    fn hex_and_float_literals() {
        let p = assemble("li r2, 0x40\n lif f1, -2.5\n halt").unwrap();
        assert_eq!(p.instructions()[0], Inst::Li(2, 0x40));
        assert_eq!(p.instructions()[1], Inst::Lif(1, -2.5));
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let err = assemble("frobnicate r1, r2").unwrap_err();
        assert!(matches!(err, IsaError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_register_and_operand_count() {
        assert!(matches!(assemble("li r32, 1").unwrap_err(), IsaError::BadRegister(_)));
        assert!(matches!(assemble("li f1, 1").unwrap_err(), IsaError::BadRegister(_)));
        assert!(matches!(assemble("add r1, r2").unwrap_err(), IsaError::Parse { .. }));
    }

    #[test]
    fn rejects_unknown_label() {
        assert_eq!(assemble("jmp nowhere").unwrap_err(), IsaError::UnknownLabel("nowhere".into()));
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("jmp end\n nop\n end: halt").unwrap();
        assert_eq!(p.instructions()[0], Inst::Jmp(2));
    }
}

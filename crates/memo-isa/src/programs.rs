//! Ready-made assembly programs, used by the examples and integration
//! tests (and handy as ISA smoke tests).
//!
//! Each builder returns assembly source; the data-layout conventions are
//! documented per program.

/// Dot product of two `n`-element double vectors.
///
/// Layout: vector A at address 0, vector B at `8·n`; the result is left in
/// `f0` and stored at address `16·n`.
#[must_use]
pub fn dot_product(n: usize) -> String {
    format!(
        r#"
        ; dot product: f0 = sum(A[i] * B[i])
        li   r1, 0            ; i
        li   r2, {n}          ; n
        li   r3, 0            ; &A[0]
        li   r4, {b_base}     ; &B[0]
        lif  f0, 0.0
    loop:
        ldf  f1, r3, 0
        ldf  f2, r4, 0
        fmul f3, f1, f2
        fadd f0, f0, f3
        addi r3, r3, 8
        addi r4, r4, 8
        addi r1, r1, 1
        blt  r1, r2, loop
        li   r5, {out}
        stf  f0, r5, 0
        halt
    "#,
        n = n,
        b_base = 8 * n,
        out = 16 * n,
    )
}

/// Normalize `n` doubles at address 0 in place by a constant divisor —
/// the canonical memoizable division loop (byte-valued data divided by
/// the same constant repeats constantly).
#[must_use]
pub fn normalize(n: usize, divisor: f64) -> String {
    format!(
        r#"
        ; X[i] = X[i] / divisor
        li   r1, 0
        li   r2, {n}
        li   r3, 0
        lif  f9, {divisor}
    loop:
        ldf  f1, r3, 0
        fdiv f2, f1, f9
        stf  f2, r3, 0
        addi r3, r3, 8
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    "#,
    )
}

/// Square root of `n` doubles at address 0, written to `8·n`, via five
/// Newton–Raphson iterations (divisions — the `vsqrt` pattern at ISA
/// level).
#[must_use]
pub fn newton_sqrt(n: usize) -> String {
    format!(
        r#"
        ; Y[i] = sqrt(X[i]) by Newton iteration on the divider
        li   r1, 0
        li   r2, {n}
        li   r3, 0
        li   r4, {out}
        lif  f8, 0.5
        lif  f7, 1.0
    loop:
        ldf  f1, r3, 0
        fadd f2, f1, f7       ; x0 = (a + 1) / 2
        fmul f2, f2, f8
        fdiv f3, f1, f2       ; five iterations (the naive seed converges
        fadd f2, f2, f3       ; slowly for large inputs)
        fmul f2, f2, f8
        fdiv f3, f1, f2
        fadd f2, f2, f3
        fmul f2, f2, f8
        fdiv f3, f1, f2
        fadd f2, f2, f3
        fmul f2, f2, f8
        fdiv f3, f1, f2
        fadd f2, f2, f3
        fmul f2, f2, f8
        fdiv f3, f1, f2
        fadd f2, f2, f3
        fmul f2, f2, f8
        stf  f2, r4, 0
        addi r3, r3, 8
        addi r4, r4, 8
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    "#,
        n = n,
        out = 8 * n,
    )
}

/// `n × n` double matrix multiply `C = A·B`.
///
/// Layout: A at 0, B at `8·n²`, C at `16·n²`, all row-major. Address
/// arithmetic uses the integer multiplier (`mul`), giving the classic
/// row-invariant imul reuse pattern the paper measures on scientific
/// codes.
#[must_use]
pub fn matmul(n: usize) -> String {
    format!(
        r#"
        ; C[i][j] = sum_k A[i][k] * B[k][j]
        li   r10, {n}         ; n
        li   r11, 8           ; element size
        li   r1, 0            ; i
    iloop:
        li   r2, 0            ; j
    jloop:
        lif  f0, 0.0          ; acc
        li   r3, 0            ; k
    kloop:
        ; &A[i][k] = (i*n + k) * 8
        mul  r4, r1, r10
        add  r4, r4, r3
        mul  r4, r4, r11
        ldf  f1, r4, 0
        ; &B[k][j] = B_base + (k*n + j) * 8
        mul  r5, r3, r10
        add  r5, r5, r2
        mul  r5, r5, r11
        ldf  f2, r5, {b_base}
        fmul f3, f1, f2
        fadd f0, f0, f3
        addi r3, r3, 1
        blt  r3, r10, kloop
        ; &C[i][j]
        mul  r6, r1, r10
        add  r6, r6, r2
        mul  r6, r6, r11
        stf  f0, r6, {c_base}
        addi r2, r2, 1
        blt  r2, r10, jloop
        addi r1, r1, 1
        blt  r1, r10, iloop
        halt
    "#,
        n = n,
        b_base = 8 * n * n,
        c_base = 16 * n * n,
    )
}

/// 3-tap horizontal convolution `Y[i] = (X[i-1] + 2·X[i] + X[i+1]) / 4`
/// over `n` doubles at address 0, written to `8·n` (borders copied).
///
/// The ×2 multiplies of byte-valued data and the ÷4 normalization are
/// dense memo-table food — the ISA-level analogue of `vdiff`.
#[must_use]
pub fn convolve3(n: usize) -> String {
    assert!(n >= 3, "convolution needs at least 3 samples");
    format!(
        r#"
        li   r1, 1            ; i
        li   r2, {last}       ; n-1
        li   r3, 8            ; &X[1]
        lif  f8, 2.0
        lif  f9, 4.0
    loop:
        ldf  f1, r3, -8
        ldf  f2, r3, 0
        ldf  f3, r3, 8
        fmul f4, f2, f8       ; 2*X[i]
        fadd f5, f1, f4
        fadd f5, f5, f3
        fdiv f6, f5, f9       ; /4
        stf  f6, r3, {out_off}
        addi r3, r3, 8
        addi r1, r1, 1
        blt  r1, r2, loop
        ; copy borders
        ldf  f1, r0, 0
        li   r4, {out}
        stf  f1, r4, 0
        li   r5, {last_in}
        ldf  f2, r5, 0
        stf  f2, r5, {out_off}
        halt
    "#,
        last = n - 1,
        out = 8 * n,
        out_off = 8 * n,
        last_in = 8 * (n - 1),
    )
}

#[cfg(test)]
mod tests {
    use crate::{assemble, Cpu};
    use memo_sim::{CountingSink, NullSink};

    #[test]
    fn dot_product_matches_reference() {
        let n = 16;
        let program = assemble(&super::dot_product(n)).unwrap();
        let mut cpu = Cpu::new(64 * 1024);
        let mut expect = 0.0;
        for i in 0..n {
            let a = i as f64 + 0.5;
            let b = 2.0 - i as f64 * 0.1;
            cpu.write_f64((i * 8) as u64, a).unwrap();
            cpu.write_f64(((n + i) * 8) as u64, b).unwrap();
            expect += a * b;
        }
        cpu.run(&program, &mut NullSink, 100_000).unwrap();
        assert!((cpu.freg(0) - expect).abs() < 1e-12);
        assert!((cpu.read_f64((16 * n) as u64).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn normalize_divides_in_place() {
        let n = 8;
        let program = assemble(&super::normalize(n, 4.0)).unwrap();
        let mut cpu = Cpu::new(4096);
        for i in 0..n {
            cpu.write_f64((i * 8) as u64, (i * 3) as f64).unwrap();
        }
        let mut sink = CountingSink::new();
        cpu.run(&program, &mut sink, 100_000).unwrap();
        for i in 0..n {
            assert_eq!(cpu.read_f64((i * 8) as u64).unwrap(), (i * 3) as f64 / 4.0);
        }
        assert_eq!(sink.mix().fp_div, n as u64);
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 5;
        let program = assemble(&super::matmul(n)).unwrap();
        let mut cpu = Cpu::new(64 * 1024);
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n * n];
        for i in 0..n * n {
            a[i] = (i % 7) as f64 + 0.5;
            b[i] = (i % 5) as f64 - 1.0;
            cpu.write_f64((i * 8) as u64, a[i]).unwrap();
            cpu.write_f64(((n * n + i) * 8) as u64, b[i]).unwrap();
        }
        let mut sink = CountingSink::new();
        cpu.run(&program, &mut sink, 10_000_000).unwrap();
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                let got = cpu.read_f64(((2 * n * n + i * n + j) * 8) as u64).unwrap();
                assert!((got - want).abs() < 1e-9, "C[{i}][{j}] = {got} vs {want}");
            }
        }
        assert_eq!(sink.mix().fp_mul, (n * n * n) as u64);
        assert!(sink.mix().int_mul > 0, "address arithmetic uses the integer multiplier");
    }

    #[test]
    fn convolve3_smooths() {
        let n = 8;
        let program = assemble(&super::convolve3(n)).unwrap();
        let mut cpu = Cpu::new(4096);
        let data = [0.0, 0.0, 4.0, 0.0, 0.0, 8.0, 8.0, 8.0];
        for (i, v) in data.iter().enumerate() {
            cpu.write_f64((i * 8) as u64, *v).unwrap();
        }
        cpu.run(&program, &mut NullSink, 100_000).unwrap();
        // Interior points follow the kernel.
        for i in 1..n - 1 {
            let want = (data[i - 1] + 2.0 * data[i] + data[i + 1]) / 4.0;
            let got = cpu.read_f64(((n + i) * 8) as u64).unwrap();
            assert!((got - want).abs() < 1e-12, "Y[{i}] = {got} vs {want}");
        }
        // Borders copied.
        assert_eq!(cpu.read_f64((n * 8) as u64).unwrap(), data[0]);
        assert_eq!(cpu.read_f64(((2 * n - 1) * 8) as u64).unwrap(), data[n - 1]);
    }

    #[test]
    fn newton_sqrt_converges_at_isa_level() {
        let n = 6;
        let program = assemble(&super::newton_sqrt(n)).unwrap();
        let mut cpu = Cpu::new(4096);
        let values = [1.0, 4.0, 9.0, 2.0, 100.0, 0.25];
        for (i, v) in values.iter().enumerate() {
            cpu.write_f64((i * 8) as u64, *v).unwrap();
        }
        cpu.run(&program, &mut NullSink, 100_000).unwrap();
        for (i, v) in values.iter().enumerate() {
            let got = cpu.read_f64(((n + i) * 8) as u64).unwrap();
            assert!(
                (got - v.sqrt()).abs() / v.sqrt().max(0.5) < 0.05,
                "sqrt({v}) ≈ {got}"
            );
        }
    }
}

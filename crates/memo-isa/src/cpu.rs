//! The tracing interpreter.

use memo_sim::EventSink;

use crate::inst::{Inst, IsaError, Program};

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// A `halt` instruction was executed.
    Halted,
}

/// Where control flows after executing a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execution continues at this program counter.
    Next(usize),
    /// The instruction was `halt`.
    Halted,
}

/// The machine: 32 integer registers (`r0` hardwired to zero), 32 doubles,
/// and a flat byte-addressed memory.
///
/// [`Cpu::run`] streams every executed instruction into an
/// [`EventSink`] — exactly the information Shade gave the paper's
/// software MEMO-TABLEs.
#[derive(Debug, Clone)]
pub struct Cpu {
    iregs: [i64; 32],
    fregs: [f64; 32],
    mem: Vec<u8>,
    retired: u64,
}

impl Cpu {
    /// A machine with `memory_bytes` of zeroed memory.
    #[must_use]
    pub fn new(memory_bytes: usize) -> Self {
        Cpu {
            iregs: [0; 32],
            fregs: [0.0; 32],
            mem: vec![0; memory_bytes],
            retired: 0,
        }
    }

    /// Integer register value (`r0` is always 0).
    #[must_use]
    pub fn reg(&self, r: u8) -> i64 {
        self.iregs[r as usize]
    }

    /// Set an integer register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: u8, value: i64) {
        if r != 0 {
            self.iregs[r as usize] = value;
        }
    }

    /// Floating-point register value.
    #[must_use]
    pub fn freg(&self, f: u8) -> f64 {
        self.fregs[f as usize]
    }

    /// Set a floating-point register.
    pub fn set_freg(&mut self, f: u8, value: f64) {
        self.fregs[f as usize] = value;
    }

    /// Dynamic instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Account `n` instructions as architecturally retired without
    /// executing them. Region-bypass drivers (crate `memo-region`) call
    /// this when a table hit skips a block's body, so the retired count
    /// stays indistinguishable from plain execution.
    pub fn retire(&mut self, n: u64) {
        self.retired += n;
    }

    /// The full memory image (for differential state comparison).
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    /// Read a double from memory (for test assertions and data setup).
    ///
    /// # Errors
    ///
    /// [`IsaError::MemoryFault`] if out of range.
    pub fn read_f64(&self, addr: u64) -> Result<f64, IsaError> {
        let bytes = self.read8(addr)?;
        Ok(f64::from_le_bytes(bytes))
    }

    /// Write a double into memory.
    ///
    /// # Errors
    ///
    /// [`IsaError::MemoryFault`] if out of range.
    pub fn write_f64(&mut self, addr: u64, value: f64) -> Result<(), IsaError> {
        self.write8(addr, value.to_le_bytes())
    }

    /// Read a 64-bit integer from memory.
    ///
    /// # Errors
    ///
    /// [`IsaError::MemoryFault`] if out of range.
    pub fn read_i64(&self, addr: u64) -> Result<i64, IsaError> {
        Ok(i64::from_le_bytes(self.read8(addr)?))
    }

    /// Write a 64-bit integer into memory.
    ///
    /// # Errors
    ///
    /// [`IsaError::MemoryFault`] if out of range.
    pub fn write_i64(&mut self, addr: u64, value: i64) -> Result<(), IsaError> {
        self.write8(addr, value.to_le_bytes())
    }

    fn read8(&self, addr: u64) -> Result<[u8; 8], IsaError> {
        let a = addr as usize;
        self.mem
            .get(a..a + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or(IsaError::MemoryFault { addr })
    }

    fn write8(&mut self, addr: u64, bytes: [u8; 8]) -> Result<(), IsaError> {
        let a = addr as usize;
        match self.mem.get_mut(a..a + 8) {
            Some(slot) => {
                slot.copy_from_slice(&bytes);
                Ok(())
            }
            None => Err(IsaError::MemoryFault { addr }),
        }
    }

    fn ea(&self, base: u8, offset: i64) -> u64 {
        (self.reg(base) + offset) as u64
    }

    /// Execute `program` until `halt`, streaming events into `sink`.
    ///
    /// `fuel` bounds the number of dynamic instructions (a loop guard for
    /// buggy programs).
    ///
    /// # Errors
    ///
    /// [`IsaError::OutOfFuel`], [`IsaError::MemoryFault`],
    /// [`IsaError::DivideByZero`], or [`IsaError::RanOffEnd`].
    pub fn run<S: EventSink + ?Sized>(
        &mut self,
        program: &Program,
        sink: &mut S,
        fuel: u64,
    ) -> Result<ExitReason, IsaError> {
        let mut pc = 0usize;
        for _ in 0..fuel {
            match self.step(program, pc, sink)? {
                Step::Next(next) => pc = next,
                Step::Halted => return Ok(ExitReason::Halted),
            }
        }
        Err(IsaError::OutOfFuel)
    }

    /// Execute the single instruction at `pc`, streaming its events into
    /// `sink`, and report where control flows next.
    ///
    /// This is the building block [`Cpu::run`] loops over; region-aware
    /// drivers call it directly to interleave table probes with plain
    /// execution without duplicating instruction semantics.
    ///
    /// # Errors
    ///
    /// [`IsaError::MemoryFault`], [`IsaError::DivideByZero`], or
    /// [`IsaError::RanOffEnd`] when `pc` is past the last instruction.
    pub fn step<S: EventSink + ?Sized>(
        &mut self,
        program: &Program,
        pc: usize,
        sink: &mut S,
    ) -> Result<Step, IsaError> {
        let Some(&inst) = program.insts.get(pc) else {
            return Err(IsaError::RanOffEnd);
        };
        self.retired += 1;
        let mut pc = pc + 1;
        match inst {
            Inst::Add(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a).wrapping_add(self.reg(b)));
            }
            Inst::Sub(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a).wrapping_sub(self.reg(b)));
            }
            Inst::Addi(d, a, imm) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a).wrapping_add(imm));
            }
            Inst::Subi(d, a, imm) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a).wrapping_sub(imm));
            }
            Inst::And(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a) & self.reg(b));
            }
            Inst::Or(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a) | self.reg(b));
            }
            Inst::Xor(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a) ^ self.reg(b));
            }
            Inst::Sll(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, self.reg(a) << (self.reg(b) & 63));
            }
            Inst::Srl(d, a, b) => {
                sink.int_ops(1);
                self.set_reg(d, ((self.reg(a) as u64) >> (self.reg(b) & 63)) as i64);
            }
            Inst::Li(d, imm) => {
                sink.int_ops(1);
                self.set_reg(d, imm);
            }
            Inst::Mul(d, a, b) => {
                let v = sink.imul(self.reg(a), self.reg(b));
                self.set_reg(d, v);
            }
            Inst::Div(d, a, b) => {
                // The integer divider shares the multi-cycle datapath;
                // modelled as an integer-ALU burst plus the quotient.
                let divisor = self.reg(b);
                if divisor == 0 {
                    return Err(IsaError::DivideByZero);
                }
                sink.int_ops(4);
                self.set_reg(d, self.reg(a).wrapping_div(divisor));
            }
            Inst::Ld(d, base, off) => {
                let addr = self.ea(base, off);
                sink.load(addr);
                let v = self.read_i64(addr)?;
                self.set_reg(d, v);
            }
            Inst::St(base, src, off) => {
                let addr = self.ea(base, off);
                sink.store(addr);
                self.write_i64(addr, self.reg(src))?;
            }
            Inst::Ldf(d, base, off) => {
                let addr = self.ea(base, off);
                sink.load(addr);
                let v = self.read_f64(addr)?;
                self.set_freg(d, v);
            }
            Inst::Stf(src, base, off) => {
                let addr = self.ea(base, off);
                sink.store(addr);
                self.write_f64(addr, self.freg(src))?;
            }
            Inst::Lif(d, imm) => {
                sink.int_ops(1);
                self.set_freg(d, imm);
            }
            Inst::Fadd(d, a, b) => {
                let v = sink.fadd(self.freg(a), self.freg(b));
                self.set_freg(d, v);
            }
            Inst::Fsub(d, a, b) => {
                let v = sink.fsub(self.freg(a), self.freg(b));
                self.set_freg(d, v);
            }
            Inst::Fmul(d, a, b) => {
                let v = sink.fmul(self.freg(a), self.freg(b));
                self.set_freg(d, v);
            }
            Inst::Fdiv(d, a, b) => {
                let v = sink.fdiv(self.freg(a), self.freg(b));
                self.set_freg(d, v);
            }
            Inst::Fsqrt(d, a) => {
                let v = sink.fsqrt(self.freg(a));
                self.set_freg(d, v);
            }
            Inst::Fmov(d, a) => {
                sink.int_ops(1);
                self.set_freg(d, self.freg(a));
            }
            Inst::Itof(d, a) => {
                sink.int_ops(1);
                self.set_freg(d, self.reg(a) as f64);
            }
            Inst::Ftoi(d, a) => {
                sink.int_ops(1);
                self.set_reg(d, self.freg(a) as i64);
            }
            Inst::Beq(a, b, target) => {
                sink.branch();
                if self.reg(a) == self.reg(b) {
                    pc = target;
                }
            }
            Inst::Bne(a, b, target) => {
                sink.branch();
                if self.reg(a) != self.reg(b) {
                    pc = target;
                }
            }
            Inst::Blt(a, b, target) => {
                sink.branch();
                if self.reg(a) < self.reg(b) {
                    pc = target;
                }
            }
            Inst::Bgt(a, b, target) => {
                sink.branch();
                if self.reg(a) > self.reg(b) {
                    pc = target;
                }
            }
            Inst::Fblt(a, b, target) => {
                sink.branch();
                if self.freg(a) < self.freg(b) {
                    pc = target;
                }
            }
            Inst::Jmp(target) => {
                sink.branch();
                pc = target;
            }
            Inst::Nop => sink.annulled(),
            Inst::Halt => return Ok(Step::Halted),
        }
        Ok(Step::Next(pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use memo_sim::{CountingSink, NullSink};

    fn run(src: &str) -> (Cpu, CountingSink) {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new(4096);
        let mut sink = CountingSink::new();
        cpu.run(&p, &mut sink, 100_000).unwrap();
        (cpu, sink)
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _) = run("li r0, 99\n halt");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn integer_alu_semantics() {
        let (cpu, _) = run(
            "li r1, 6\n li r2, 7\n add r3, r1, r2\n sub r4, r2, r1\n mul r5, r1, r2\n \
             xor r6, r1, r2\n li r7, 2\n sll r8, r1, r7\n srl r9, r8, r7\n div r10, r5, r2\n halt",
        );
        assert_eq!(cpu.reg(3), 13);
        assert_eq!(cpu.reg(4), 1);
        assert_eq!(cpu.reg(5), 42);
        assert_eq!(cpu.reg(6), 1);
        assert_eq!(cpu.reg(8), 24);
        assert_eq!(cpu.reg(9), 6);
        assert_eq!(cpu.reg(10), 6);
    }

    #[test]
    fn fp_semantics_and_events() {
        let (cpu, sink) = run(
            "lif f1, 9.0\n lif f2, 2.0\n fadd f3, f1, f2\n fsub f4, f1, f2\n \
             fmul f5, f1, f2\n fdiv f6, f1, f2\n fsqrt f7, f1\n itof f8, r0\n halt",
        );
        assert_eq!(cpu.freg(3), 11.0);
        assert_eq!(cpu.freg(4), 7.0);
        assert_eq!(cpu.freg(5), 18.0);
        assert_eq!(cpu.freg(6), 4.5);
        assert_eq!(cpu.freg(7), 3.0);
        assert_eq!(cpu.freg(8), 0.0);
        let m = sink.mix();
        assert_eq!((m.fp_mul, m.fp_div, m.fp_sqrt, m.fp_add), (1, 1, 1, 2));
    }

    #[test]
    fn memory_roundtrip_through_loads_and_stores() {
        let (cpu, sink) = run("li r1, 64\n lif f1, 2.5\n stf f1, r1, 0\n ldf f2, r1, 0\n \
             li r2, -7\n st r1, r2, 8\n ld r3, r1, 8\n halt");
        assert_eq!(cpu.freg(2), 2.5);
        assert_eq!(cpu.reg(3), -7);
        assert_eq!(sink.mix().loads, 2);
        assert_eq!(sink.mix().stores, 2);
    }

    #[test]
    fn loop_executes_expected_count() {
        let (cpu, sink) =
            run("li r1, 0\n li r2, 10\n loop: addi r1, r1, 1\n blt r1, r2, loop\n halt");
        assert_eq!(cpu.reg(1), 10);
        assert_eq!(sink.mix().branches, 10);
    }

    #[test]
    fn faults_are_reported() {
        let p = assemble("li r1, 100000\n ld r2, r1, 0\n halt").unwrap();
        let mut cpu = Cpu::new(4096);
        assert_eq!(
            cpu.run(&p, &mut NullSink, 100).unwrap_err(),
            IsaError::MemoryFault { addr: 100_000 }
        );

        let p = assemble("li r1, 5\n div r2, r1, r0\n halt").unwrap();
        let mut cpu = Cpu::new(4096);
        assert_eq!(
            cpu.run(&p, &mut NullSink, 100).unwrap_err(),
            IsaError::DivideByZero
        );

        let p = assemble("jmp spin\n spin: jmp spin").unwrap();
        let mut cpu = Cpu::new(64);
        assert_eq!(
            cpu.run(&p, &mut NullSink, 1000).unwrap_err(),
            IsaError::OutOfFuel
        );

        let p = assemble("nop").unwrap();
        let mut cpu = Cpu::new(64);
        assert_eq!(
            cpu.run(&p, &mut NullSink, 10).unwrap_err(),
            IsaError::RanOffEnd
        );
    }

    #[test]
    fn retired_counts_dynamic_instructions() {
        let (cpu, _) = run("li r1, 3\n loop: subi r1, r1, 1\n bgt r1, r0, loop\n halt");
        // li + 3×(subi+bgt) + halt = 8.
        assert_eq!(cpu.retired(), 8);
    }
}

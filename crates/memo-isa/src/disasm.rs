//! Disassembly: `Display` for instructions and source regeneration for
//! whole programs, so assembler output can be round-tripped
//! (`assemble(program.to_source()) == program` — property-tested).

use std::fmt;

use crate::inst::{Inst, Program};

/// Label name used for instruction index `i` when regenerating source.
fn loc(i: usize) -> String {
    format!("L{i}")
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Add(d, a, b) => write!(f, "add r{d}, r{a}, r{b}"),
            Inst::Sub(d, a, b) => write!(f, "sub r{d}, r{a}, r{b}"),
            Inst::Addi(d, a, i) => write!(f, "addi r{d}, r{a}, {i}"),
            Inst::Subi(d, a, i) => write!(f, "subi r{d}, r{a}, {i}"),
            Inst::And(d, a, b) => write!(f, "and r{d}, r{a}, r{b}"),
            Inst::Or(d, a, b) => write!(f, "or r{d}, r{a}, r{b}"),
            Inst::Xor(d, a, b) => write!(f, "xor r{d}, r{a}, r{b}"),
            Inst::Sll(d, a, b) => write!(f, "sll r{d}, r{a}, r{b}"),
            Inst::Srl(d, a, b) => write!(f, "srl r{d}, r{a}, r{b}"),
            Inst::Li(d, i) => write!(f, "li r{d}, {i}"),
            Inst::Mul(d, a, b) => write!(f, "mul r{d}, r{a}, r{b}"),
            Inst::Div(d, a, b) => write!(f, "div r{d}, r{a}, r{b}"),
            Inst::Ld(d, b, o) => write!(f, "ld r{d}, r{b}, {o}"),
            Inst::St(b, s, o) => write!(f, "st r{b}, r{s}, {o}"),
            Inst::Ldf(d, b, o) => write!(f, "ldf f{d}, r{b}, {o}"),
            Inst::Stf(s, b, o) => write!(f, "stf f{s}, r{b}, {o}"),
            // `{:?}` prints f64 with enough digits to round-trip exactly.
            Inst::Lif(d, v) => write!(f, "lif f{d}, {v:?}"),
            Inst::Fadd(d, a, b) => write!(f, "fadd f{d}, f{a}, f{b}"),
            Inst::Fsub(d, a, b) => write!(f, "fsub f{d}, f{a}, f{b}"),
            Inst::Fmul(d, a, b) => write!(f, "fmul f{d}, f{a}, f{b}"),
            Inst::Fdiv(d, a, b) => write!(f, "fdiv f{d}, f{a}, f{b}"),
            Inst::Fsqrt(d, a) => write!(f, "fsqrt f{d}, f{a}"),
            Inst::Fmov(d, a) => write!(f, "fmov f{d}, f{a}"),
            Inst::Itof(d, a) => write!(f, "itof f{d}, r{a}"),
            Inst::Ftoi(d, a) => write!(f, "ftoi r{d}, f{a}"),
            Inst::Beq(a, b, t) => write!(f, "beq r{a}, r{b}, {}", loc(t)),
            Inst::Bne(a, b, t) => write!(f, "bne r{a}, r{b}, {}", loc(t)),
            Inst::Blt(a, b, t) => write!(f, "blt r{a}, r{b}, {}", loc(t)),
            Inst::Bgt(a, b, t) => write!(f, "bgt r{a}, r{b}, {}", loc(t)),
            Inst::Fblt(a, b, t) => write!(f, "fblt f{a}, f{b}, {}", loc(t)),
            Inst::Jmp(t) => write!(f, "jmp {}", loc(t)),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

impl Program {
    /// Regenerate assembly source that assembles back to this program
    /// (labels are canonicalized to `L<index>`).
    #[must_use]
    pub fn to_source(&self) -> String {
        // Every instruction index gets a label so any branch target works.
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            out.push_str(&format!("{}: {inst}\n", loc(i)));
        }
        // A trailing label for branches that target one-past-the-end.
        out.push_str(&format!("{}: halt\n", loc(self.insts.len())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn display_prints_canonical_forms() {
        assert_eq!(Inst::Li(3, -7).to_string(), "li r3, -7");
        assert_eq!(Inst::Fdiv(1, 2, 3).to_string(), "fdiv f1, f2, f3");
        assert_eq!(Inst::Blt(1, 2, 5).to_string(), "blt r1, r2, L5");
        assert_eq!(Inst::Lif(0, 0.1).to_string(), "lif f0, 0.1");
    }

    #[test]
    fn source_roundtrip_preserves_instructions() {
        let original = assemble(
            "li r1, 5\nstart: subi r1, r1, 1\n lif f1, 2.5\n fmul f2, f1, f1\n \
             bgt r1, r0, start\n halt",
        )
        .unwrap();
        let regenerated = assemble(&original.to_source()).unwrap();
        // Instructions match up to the appended trailing halt.
        assert_eq!(
            &regenerated.instructions()[..original.len()],
            original.instructions()
        );
    }

    #[test]
    fn float_literals_roundtrip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5] {
            let p = assemble(&format!("lif f1, {v:?}\n halt")).unwrap();
            assert_eq!(p.instructions()[0], Inst::Lif(1, v));
        }
    }
}

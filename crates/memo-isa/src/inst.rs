//! Instruction definitions and program container.

use std::fmt;

/// Errors from assembling or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum IsaError {
    /// A line could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A branch referenced an unknown label.
    UnknownLabel(String),
    /// A register outside `r0..r31` / `f0..f31`.
    BadRegister(String),
    /// Memory access outside the configured memory size.
    MemoryFault {
        /// Offending byte address.
        addr: u64,
    },
    /// Division of an integer by zero (fp division follows IEEE-754 and
    /// never faults).
    DivideByZero,
    /// The fuel limit expired before `halt`.
    OutOfFuel,
    /// Execution fell off the end of the program.
    RanOffEnd,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IsaError::UnknownLabel(l) => write!(f, "unknown label {l:?}"),
            IsaError::BadRegister(r) => write!(f, "bad register {r:?}"),
            IsaError::MemoryFault { addr } => write!(f, "memory access fault at {addr:#x}"),
            IsaError::DivideByZero => write!(f, "integer division by zero"),
            IsaError::OutOfFuel => write!(f, "fuel exhausted before halt"),
            IsaError::RanOffEnd => write!(f, "execution ran past the last instruction"),
        }
    }
}

impl std::error::Error for IsaError {}

/// One decoded instruction.
///
/// Register operands are indices into the 32-entry integer (`r`) or
/// floating-point (`f`) files; `r0` is hardwired to zero, as on SPARC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    // --- integer ALU (single cycle) ---
    /// `rd ← rs1 + rs2`
    Add(u8, u8, u8),
    /// `rd ← rs1 − rs2`
    Sub(u8, u8, u8),
    /// `rd ← rs1 + imm`
    Addi(u8, u8, i64),
    /// `rd ← rs1 − imm`
    Subi(u8, u8, i64),
    /// `rd ← rs1 & rs2`
    And(u8, u8, u8),
    /// `rd ← rs1 | rs2`
    Or(u8, u8, u8),
    /// `rd ← rs1 ^ rs2`
    Xor(u8, u8, u8),
    /// `rd ← rs1 << (rs2 & 63)`
    Sll(u8, u8, u8),
    /// `rd ← (rs1 as u64) >> (rs2 & 63)`
    Srl(u8, u8, u8),
    /// `rd ← imm`
    Li(u8, i64),

    // --- multi-cycle integer (streams an `Arith` event) ---
    /// `rd ← rs1 × rs2` (wrapping; the integer multiplier)
    Mul(u8, u8, u8),
    /// `rd ← rs1 / rs2` (integer divider; faults on zero)
    Div(u8, u8, u8),

    // --- memory ---
    /// `rd ← mem[rs1 + offset]` (64-bit integer load)
    Ld(u8, u8, i64),
    /// `mem[rs1 + offset] ← rs2`
    St(u8, u8, i64),
    /// `fd ← mem[rs1 + offset]` (double load)
    Ldf(u8, u8, i64),
    /// `mem[rs1 + offset] ← fs`
    Stf(u8, u8, i64),

    // --- floating point ---
    /// `fd ← imm`
    Lif(u8, f64),
    /// `fd ← fs1 + fs2`
    Fadd(u8, u8, u8),
    /// `fd ← fs1 − fs2`
    Fsub(u8, u8, u8),
    /// `fd ← fs1 × fs2` (the fp multiplier — `Arith` event)
    Fmul(u8, u8, u8),
    /// `fd ← fs1 ÷ fs2` (the fp divider — `Arith` event)
    Fdiv(u8, u8, u8),
    /// `fd ← √fs1` (`Arith` event)
    Fsqrt(u8, u8),
    /// `fd ← fs1`
    Fmov(u8, u8),
    /// `fd ← rs1 as f64`
    Itof(u8, u8),
    /// `rd ← fs1 as i64` (truncating)
    Ftoi(u8, u8),

    // --- control ---
    /// Branch to `target` if `rs1 == rs2`.
    Beq(u8, u8, usize),
    /// Branch if `rs1 != rs2`.
    Bne(u8, u8, usize),
    /// Branch if `rs1 < rs2` (signed).
    Blt(u8, u8, usize),
    /// Branch if `rs1 > rs2` (signed).
    Bgt(u8, u8, usize),
    /// Branch if `fs1 < fs2`.
    Fblt(u8, u8, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// No operation (annulled delay slot — streams `Annulled`).
    Nop,
    /// Stop execution.
    Halt,
}

/// An assembled program: instructions plus the label map (kept for
/// diagnostics and round-trip tests).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
    pub(crate) labels: Vec<(String, usize)>,
}

impl Program {
    /// The decoded instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolve a label to its instruction index.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.iter().find(|(n, _)| n == name).map(|&(_, i)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = IsaError::Parse { line: 3, message: "bad mnemonic".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(IsaError::MemoryFault { addr: 0x40 }.to_string().contains("0x40"));
    }

    #[test]
    fn program_label_lookup() {
        let p = Program {
            insts: vec![Inst::Nop, Inst::Halt],
            labels: vec![("start".into(), 0), ("end".into(), 1)],
        };
        assert_eq!(p.label("end"), Some(1));
        assert_eq!(p.label("nope"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}

//! Tables 2, 3, 4 — the benchmark-suite inventories.

use memo_workloads::{mm, sci};

use crate::format::TextTable;

/// Render Table 2 (Perfect Club applications).
#[must_use]
pub fn render_table2() -> String {
    let mut t = TextTable::new(&["application", "description"]);
    for app in sci::perfect_apps() {
        t.row(vec![app.name.to_uppercase(), app.description.to_string()]);
    }
    format!("Table 2: Description of the Perfect Benchmark applications\n{}", t.render())
}

/// Render Table 3 (SPEC CFP95 applications).
#[must_use]
pub fn render_table3() -> String {
    let mut t = TextTable::new(&["application", "description"]);
    for app in sci::spec_apps() {
        t.row(vec![app.name.to_string(), app.description.to_string()]);
    }
    format!("Table 3: Description of the SPEC CFP95 applications\n{}", t.render())
}

/// Render Table 4 (multi-media applications).
#[must_use]
pub fn render_table4() -> String {
    let mut t = TextTable::new(&["application", "description"]);
    for app in mm::apps() {
        t.row(vec![app.name.to_string(), app.description.to_string()]);
    }
    format!("Table 4: Description of MM applications\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn inventories_are_complete() {
        let t2 = super::render_table2();
        assert!(t2.contains("ADM") && t2.contains("SPEC77"));
        let t3 = super::render_table3();
        assert!(t3.contains("tomcatv") && t3.contains("wave5"));
        let t4 = super::render_table4();
        assert!(t4.contains("vspatial") && t4.contains("venhpatch"));
        assert_eq!(t4.lines().count(), 2 + 1 + 18);
    }
}

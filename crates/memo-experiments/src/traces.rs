//! Process-wide record-once trace cache.
//!
//! Every kernel/input pair is executed natively **exactly once per
//! process**; all sweep points, all experiments — including the scorecard,
//! which re-derives earlier tables — replay the cached trace. Traces are
//! shared immutably (`Arc`), so parallel sweep tasks read them without
//! copies; banks remain per-task.
//!
//! Granularity: MM traces are stored *per corpus image* so single-image
//! experiments (Table 8, Figure 2) and corpus-level experiments (Table 7,
//! the policy tables) share the same recordings — replaying the per-image
//! traces in corpus order through one bank is exactly the native
//! corpus-level stream. Cycle-accounting experiments use [`EventTrace`]s
//! of the full instruction stream instead, since they need loads,
//! branches, and the instruction mix.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use memo_imaging::synth::{self, CorpusImage};
use memo_sim::{EventTrace, OpTrace, TraceRecorderSink};
use memo_workloads::mm::MmApp;
use memo_workloads::sci::SciApp;
use memo_workloads::suite::record_sci_trace;

use crate::ExpConfig;

type Key = (&'static str, usize);

/// A lazily-filled, per-key-once cache. The outer map lock is held only
/// to fetch the per-key cell; recording happens under the per-key
/// [`OnceLock`], so concurrent requests for *different* keys record in
/// parallel and concurrent requests for the *same* key record once.
struct TraceCache<V> {
    map: Mutex<HashMap<Key, Arc<OnceLock<V>>>>,
}

impl<V: Clone> TraceCache<V> {
    fn new() -> Self {
        TraceCache { map: Mutex::new(HashMap::new()) }
    }

    fn get_or_record(&self, key: Key, record: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.map.lock().expect("trace cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(record).clone()
    }
}

fn corpus_cache() -> &'static TraceCache<Arc<Vec<CorpusImage>>> {
    static CACHE: OnceLock<TraceCache<Arc<Vec<CorpusImage>>>> = OnceLock::new();
    CACHE.get_or_init(TraceCache::new)
}

fn mm_cache() -> &'static TraceCache<Arc<Vec<OpTrace>>> {
    static CACHE: OnceLock<TraceCache<Arc<Vec<OpTrace>>>> = OnceLock::new();
    CACHE.get_or_init(TraceCache::new)
}

fn sci_cache() -> &'static TraceCache<Arc<OpTrace>> {
    static CACHE: OnceLock<TraceCache<Arc<OpTrace>>> = OnceLock::new();
    CACHE.get_or_init(TraceCache::new)
}

fn mm_event_cache() -> &'static TraceCache<Arc<EventTrace>> {
    static CACHE: OnceLock<TraceCache<Arc<EventTrace>>> = OnceLock::new();
    CACHE.get_or_init(TraceCache::new)
}

/// The Table 8 image corpus at `scale`, synthesized once per process.
#[must_use]
pub fn corpus(scale: usize) -> Arc<Vec<CorpusImage>> {
    corpus_cache().get_or_record(("corpus", scale), || Arc::new(synth::corpus(scale)))
}

/// The operand traces of one MM application, one per corpus image in
/// corpus order. Replaying them sequentially through one bank reproduces
/// the corpus-level stream; indexing reproduces a single-image run.
///
/// Record-once extends **across processes** when a persistent store is
/// installed ([`crate::store`]): the kernel runs natively only if the
/// store has no archive for this `(app, scale)` key, and the recording is
/// written back so the next process replays from disk.
#[must_use]
pub fn mm_traces(cfg: ExpConfig, app: &MmApp) -> Arc<Vec<OpTrace>> {
    mm_cache().get_or_record((app.name, cfg.image_scale), || {
        let key = format!("traces/mm/{}/{}", app.name, cfg.image_scale);
        let corpus = corpus(cfg.image_scale);
        if let Some(traces) = crate::store::load_traces(&key) {
            if traces.len() == corpus.len() {
                return Arc::new(traces);
            }
            // Image-count mismatch: a stale or foreign archive. Re-record.
        }
        let traces: Vec<OpTrace> = corpus
            .iter()
            .map(|c| {
                let mut rec = TraceRecorderSink::new();
                app.run(&mut rec, &c.image);
                rec.into_trace()
            })
            .collect();
        crate::store::save_traces(&key, &traces);
        Arc::new(traces)
    })
}

/// The operand trace of one scientific kernel at `cfg.sci_n`.
///
/// Like [`mm_traces`], consults the installed persistent store before
/// recording natively, and writes fresh recordings back.
#[must_use]
pub fn sci_trace(cfg: ExpConfig, app: &SciApp) -> Arc<OpTrace> {
    sci_cache().get_or_record((app.name, cfg.sci_n), || {
        let key = format!("traces/sci/{}/{}", app.name, cfg.sci_n);
        if let Some(mut traces) = crate::store::load_traces(&key) {
            if traces.len() == 1 {
                return Arc::new(traces.remove(0));
            }
        }
        let trace = record_sci_trace(app, cfg.sci_n);
        crate::store::save_traces(&key, std::slice::from_ref(&trace));
        Arc::new(trace)
    })
}

/// The full instruction-event stream of one MM application over the
/// corpus — for cycle-accounting replays (Tables 11–13, protection
/// overhead, pipeline models).
#[must_use]
pub fn mm_event_trace(cfg: ExpConfig, app: &MmApp) -> Arc<EventTrace> {
    mm_event_cache().get_or_record((app.name, cfg.image_scale), || {
        let corpus = corpus(cfg.image_scale);
        let mut trace = EventTrace::new();
        for c in corpus.iter() {
            app.run(&mut trace, &c.image);
        }
        Arc::new(trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_sim::{MemoBank, NullSink};
    use memo_table::OpKind;
    use memo_workloads::suite::{measure_mm_app, replay_ratios, SweepSpec};
    use memo_workloads::{mm, sci};

    #[test]
    fn cached_traces_are_shared() {
        let cfg = ExpConfig::quick();
        let app = mm::find("vgpwl").unwrap();
        let a = mm_traces(cfg, &app);
        let b = mm_traces(cfg, &app);
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        assert_eq!(a.len(), corpus(cfg.image_scale).len());
    }

    #[test]
    fn corpus_level_replay_matches_native_measurement() {
        let cfg = ExpConfig::quick();
        let app = mm::find("vspatial").unwrap();
        let corpus = corpus(cfg.image_scale);
        let inputs: Vec<_> = corpus.iter().map(|c| &c.image).collect();
        let spec = SweepSpec::paper_default();
        let native = measure_mm_app(&app, &inputs, spec);
        let traces = mm_traces(cfg, &app);
        assert_eq!(native, replay_ratios(traces.iter(), spec));
    }

    #[test]
    fn sci_trace_counts_real_ops() {
        let cfg = ExpConfig::quick();
        let app = *sci::all_apps().first().unwrap();
        let t = sci_trace(cfg, &app);
        assert!(!t.is_empty());
        let total: usize = OpKind::ALL.iter().map(|&k| t.count(k)).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn event_trace_contains_arith_and_memory_traffic() {
        let cfg = ExpConfig::quick();
        let app = mm::find("vgauss").unwrap();
        let t = mm_event_trace(cfg, &app);
        assert!(!t.is_empty());
        // Replay works on any sink; a probing bank sees the arith stream.
        t.replay_into(&mut NullSink);
        let mut probe = memo_workloads::suite::MemoProbeSink::with_bank(MemoBank::paper_default());
        t.replay_into(&mut probe);
        let seen = probe.bank().stats(OpKind::FpDiv).map_or(0, |s| s.ops_seen);
        assert!(seen > 0, "vgauss divides");
    }
}

//! Soft-error fault tolerance of the MEMO-TABLE (robustness study).
//!
//! The paper assumes the memo SRAM is perfect: a hit is served verbatim.
//! A particle strike that flips a stored result bit breaks exactly the
//! property the whole design rests on — bit-exact transparency — and does
//! so *silently*, because the conventional unit never recomputes a hit.
//!
//! This module quantifies that exposure and the cost of closing it:
//!
//! * [`sweep`] — fault rate × [`Protection`] policy over the MM and
//!   scientific suites, reporting end-to-end silent-data-corruption (SDC)
//!   rates, hit ratios, and the injector/detector counters;
//! * [`protection_speedups`] — how much of the memoization speedup each
//!   policy retains once its per-hit cycle charge is accounted;
//! * [`breaker_demo`] — the circuit breaker taking a faulty table slot
//!   offline after repeated detections (graceful degradation to the
//!   conventional unit);
//! * [`check_transparency`] — the differential checker: every MM kernel
//!   re-run with table-served arithmetic must produce a bit-identical
//!   image, and every scientific kernel's served values must match native
//!   computation op-for-op, whenever injection is disabled.

use memo_sim::{
    CpuModel, CycleAccountant, Event, EventSink, MemoBank, MemoizedSink, MemoryHierarchy,
    NullSink,
};
use memo_table::{FaultConfig, FaultInjector, MemoConfig, MemoTable, OpKind, Protection};
use memo_workloads::suite::mm_inputs;
use memo_workloads::{mm, sci};

use crate::error::find_mm;
use crate::format::{ratio, TextTable};
use crate::{parallel, traces, ExpConfig, ExperimentError};

/// The operation kinds memoized throughout the fault studies.
pub const MEMO_KINDS: [OpKind; 4] =
    [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv, OpKind::FpSqrt];

/// Per-lookup single-bit upset probabilities swept by [`sweep`]. Vastly
/// above any physical rate, deliberately: the point is to separate the
/// policies, not to model a particular altitude.
pub const FAULT_RATES: [f64; 3] = [0.0, 0.01, 0.1];

/// Division-heavy applications used for the speedup-retention study.
pub const SPEEDUP_SAMPLE: [&str; 3] = ["vspatial", "vgauss", "vgpwl"];

/// Human label for a protection policy.
#[must_use]
pub fn protection_label(p: Protection) -> String {
    match p {
        Protection::None => "none".to_string(),
        Protection::ParityDetect => "parity".to_string(),
        Protection::EccSecDed => "ecc sec-ded".to_string(),
        Protection::VerifyOnHit { verify_cycles } => format!("verify({verify_cycles}c)"),
    }
}

fn protected_config(protection: Protection) -> MemoConfig {
    // 32-entry 4-way is the paper's default geometry; always valid.
    MemoConfig::builder(32).protection(protection).build().expect("32/4 is valid")
}

/// Build a bank of protected tables, one per kind in [`MEMO_KINDS`], each
/// with its own deterministic injector stream (the seed is split per slot
/// so the streams are independent but replayable).
#[must_use]
pub fn faulty_bank(protection: Protection, rate: f64, seed: u64) -> MemoBank {
    let mut bank = MemoBank::none();
    for (i, &kind) in MEMO_KINDS.iter().enumerate() {
        let fault_cfg = if rate > 0.0 {
            FaultConfig::single_bit(
                seed ^ 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1),
                rate,
            )
        } else {
            FaultConfig::disabled()
        };
        let table = MemoTable::new(protected_config(protection))
            .with_fault_injector(FaultInjector::new(fault_cfg));
        bank = bank.with_table(kind, table);
    }
    bank
}

// ---------------------------------------------------------------------------
// DiffSink — the differential observer
// ---------------------------------------------------------------------------

/// An [`EventSink`] that executes every multi-cycle operation twice — once
/// through a memo bank, once natively — and counts bit-level divergence.
/// The kernel always consumes the native result, so its control flow never
/// depends on (possibly corrupted) table output: the sink is a pure
/// observer of end-to-end silent corruption.
#[derive(Debug)]
pub struct DiffSink {
    bank: MemoBank,
    served: u64,
    mismatches: u64,
}

impl DiffSink {
    /// Wrap a bank.
    #[must_use]
    pub fn new(bank: MemoBank) -> Self {
        DiffSink { bank, served: 0, mismatches: 0 }
    }

    /// Operations compared so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Operations whose table-served value differed from native.
    #[must_use]
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// The bank (for fault statistics).
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// Tear down the sink and keep the bank.
    #[must_use]
    pub fn into_bank(self) -> MemoBank {
        self.bank
    }
}

impl EventSink for DiffSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.served += 1;
            if self.bank.execute(op).value != op.compute() {
                self.mismatches += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The fault-rate × protection sweep
// ---------------------------------------------------------------------------

/// One (protection, fault-rate) cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultCell {
    /// Table protection policy.
    pub protection: Protection,
    /// Per-lookup single-bit upset probability.
    pub fault_rate: f64,
    /// End-to-end SDC rate: served operations whose value diverged from
    /// native computation, over all served operations.
    pub sdc_rate: f64,
    /// Pooled hit ratio across the memoized kinds (hits / lookups).
    pub hit_ratio: f64,
    /// Bit flips the injector planted.
    pub faults_injected: u64,
    /// Corrupted hits the policy detected (entry invalidated, miss).
    pub faults_detected: u64,
    /// Corrupted hits ECC repaired in place.
    pub faults_corrected: u64,
    /// Corrupted hits served to the consumer unnoticed.
    pub faults_silent: u64,
}

fn pooled_cell(protection: Protection, rate: f64, sink: &DiffSink) -> FaultCell {
    let mut hits = 0;
    let mut lookups = 0;
    let (mut inj, mut det, mut corr, mut silent) = (0, 0, 0, 0);
    for &kind in &MEMO_KINDS {
        if let Some(s) = sink.bank().stats(kind) {
            hits += s.table_hits;
            lookups += s.table_lookups;
            inj += s.faults_injected;
            det += s.faults_detected;
            corr += s.faults_corrected;
            silent += s.faults_silent;
        }
    }
    FaultCell {
        protection,
        fault_rate: rate,
        sdc_rate: if sink.served() == 0 {
            0.0
        } else {
            sink.mismatches() as f64 / sink.served() as f64
        },
        hit_ratio: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        faults_injected: inj,
        faults_detected: det,
        faults_corrected: corr,
        faults_silent: silent,
    }
}

/// Replay every kernel of both suites — recorded once, process-wide —
/// into `sink`, in the same order the native loops ran them (MM apps over
/// the corpus, then the scientific suites). The [`DiffSink`] only
/// observes arithmetic events, so an operand-trace replay reproduces its
/// counters exactly.
fn replay_suites(cfg: ExpConfig, sink: &mut impl EventSink) {
    for app in &mm::apps() {
        for trace in traces::mm_traces(cfg, app).iter() {
            trace.replay_events(sink);
        }
    }
    for app in &sci::all_apps() {
        traces::sci_trace(cfg, app).replay_events(sink);
    }
}

/// Sweep fault rate × protection policy over the full MM corpus and the
/// scientific suites, measuring end-to-end SDC and hit-ratio impact.
/// Each nonzero cell replays the shared recordings against its own faulty
/// bank. At rate 0 the injector is disabled and every policy's read path
/// is a no-op on clean entries — parity always passes, ECC never
/// corrects, verification always matches — so the four clean cells are
/// provably identical and share one replay.
#[must_use]
pub fn sweep(cfg: ExpConfig) -> Vec<FaultCell> {
    let mut grid: Vec<(Protection, f64)> = vec![(Protection::None, 0.0)];
    grid.extend(
        Protection::ALL
            .iter()
            .flat_map(|&protection| FAULT_RATES.iter().map(move |&rate| (protection, rate)))
            .filter(|&(_, rate)| rate > 0.0),
    );
    let computed = parallel::par_map(grid, |(protection, rate)| {
        let mut sink = DiffSink::new(faulty_bank(protection, rate, 0xFA17));
        replay_suites(cfg, &mut sink);
        pooled_cell(protection, rate, &sink)
    });
    let clean = computed[0];
    let mut nonzero = computed.into_iter().skip(1);
    let mut out = Vec::with_capacity(Protection::ALL.len() * FAULT_RATES.len());
    for &protection in &Protection::ALL {
        for &rate in &FAULT_RATES {
            out.push(if rate > 0.0 {
                nonzero.next().expect("one computed cell per nonzero grid point")
            } else {
                FaultCell { protection, ..clean }
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Speedup retained under protection
// ---------------------------------------------------------------------------

/// Speedup of the division-heavy sample under one protection policy.
#[derive(Debug, Clone, Copy)]
pub struct ProtectionSpeedup {
    /// The policy.
    pub protection: Protection,
    /// Mean measured speedup over [`SPEEDUP_SAMPLE`] (39-cycle divider).
    pub speedup: f64,
}

/// Measure how much of the memoization speedup survives each policy's
/// per-hit cycle charge (clean tables — the cost is the read-path logic,
/// not the faults).
///
/// On clean tables a policy changes *only* the per-hit cycle charge
/// ([`Protection::hit_penalty`]) — the hit pattern itself is identical,
/// since parity always passes, ECC never corrects, and verification
/// always matches. One unprotected replay per application therefore
/// yields every policy's cycle count exactly: the protected machine's
/// total is the unprotected total plus `table hits × penalty`.
///
/// # Errors
///
/// Fails if a [`SPEEDUP_SAMPLE`] name is missing from the registry.
pub fn protection_speedups(cfg: ExpConfig) -> Result<Vec<ProtectionSpeedup>, ExperimentError> {
    let apps =
        SPEEDUP_SAMPLE.iter().map(|name| find_mm(name)).collect::<Result<Vec<_>, _>>()?;
    // (baseline cycles, unprotected memoized cycles, table hits) per app.
    let measured: Vec<(u64, u64, u64)> = parallel::par_map(apps, |app| {
        let mut acc = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            faulty_bank(Protection::None, 0.0, 0),
        );
        traces::mm_event_trace(cfg, &app).replay_into(&mut acc);
        let hits = MEMO_KINDS
            .iter()
            .filter_map(|&k| acc.bank().stats(k))
            .map(|s| s.table_hits)
            .sum();
        let report = acc.report();
        (report.baseline().total(), report.memoized().total(), hits)
    });
    Ok(Protection::ALL
        .iter()
        .map(|&protection| {
            let penalty = u64::from(protection.hit_penalty());
            let total: f64 = measured
                .iter()
                .map(|&(baseline, memoized, hits)| {
                    baseline as f64 / (memoized + hits * penalty) as f64
                })
                .sum();
            ProtectionSpeedup { protection, speedup: total / SPEEDUP_SAMPLE.len() as f64 }
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Outcome of the circuit-breaker demonstration.
#[derive(Debug, Clone, Copy)]
pub struct BreakerDemo {
    /// Detections required to trip a slot.
    pub threshold: u64,
    /// How many of the four table slots tripped.
    pub tripped_slots: usize,
    /// Total detections across the bank when the run ended.
    pub faults_detected: u64,
}

/// Drive parity-protected tables at an unrealistically hostile fault rate
/// behind a circuit breaker: every slot should exceed the detection
/// threshold and be taken offline, degrading to the conventional unit.
#[must_use]
pub fn breaker_demo(cfg: ExpConfig) -> BreakerDemo {
    let threshold = 8;
    let bank = faulty_bank(Protection::ParityDetect, 0.5, 0xB2EA).with_circuit_breaker(threshold);
    let mut sink = DiffSink::new(bank);
    replay_suites(cfg, &mut sink);
    let bank = sink.into_bank();
    let tripped = MEMO_KINDS.iter().filter(|&&k| bank.breaker_tripped(k)).count();
    let detected = MEMO_KINDS
        .iter()
        .filter_map(|&k| bank.stats(k))
        .map(|s| s.faults_detected)
        .sum();
    BreakerDemo { threshold, tripped_slots: tripped, faults_detected: detected }
}

// ---------------------------------------------------------------------------
// Differential transparency
// ---------------------------------------------------------------------------

/// What the differential checker covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransparencyReport {
    /// MM kernels whose output images were bit-compared.
    pub mm_apps: usize,
    /// Scientific kernels whose served values were op-compared.
    pub sci_apps: usize,
    /// Total operations served through tables during the check.
    pub ops_compared: u64,
}

/// The differential transparency checker. With injection disabled, every
/// MM kernel must produce a bit-identical output image when its arithmetic
/// is served by memo tables, and every scientific kernel's served values
/// must match native computation op-for-op — under every protection
/// policy's read path (the ECC corrector and parity checker must be
/// no-ops on clean entries).
///
/// # Errors
///
/// Returns [`ExperimentError::Transparency`] naming the first diverging
/// kernel.
pub fn check_transparency(cfg: ExpConfig) -> Result<TransparencyReport, ExperimentError> {
    let corpus = mm_inputs(cfg.image_scale);
    let mut report = TransparencyReport::default();

    for app in &mm::apps() {
        for (protection, c) in Protection::ALL.iter().cycle().zip(&corpus) {
            let expected = app.run(&mut NullSink, &c.image);
            let mut memo = MemoizedSink::new(faulty_bank(*protection, 0.0, 0));
            let got = app.run(&mut memo, &c.image);
            if expected != got {
                return Err(ExperimentError::Transparency {
                    app: app.name.to_string(),
                    detail: format!(
                        "memoized output image differs from native under {} protection",
                        protection_label(*protection)
                    ),
                });
            }
            report.ops_compared += MEMO_KINDS
                .iter()
                .filter_map(|&k| memo.bank().stats(k))
                .map(|s| s.ops_seen)
                .sum::<u64>();
        }
        report.mm_apps += 1;
    }

    for app in &sci::all_apps() {
        let mut diff = DiffSink::new(faulty_bank(Protection::EccSecDed, 0.0, 0));
        app.run(&mut diff, cfg.sci_n);
        if diff.mismatches() > 0 {
            return Err(ExperimentError::Transparency {
                app: app.name.to_string(),
                detail: format!(
                    "{} of {} served values diverged from native computation",
                    diff.mismatches(),
                    diff.served()
                ),
            });
        }
        report.ops_compared += diff.served();
        report.sci_apps += 1;
    }

    Ok(report)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Render the full fault-tolerance report.
///
/// # Errors
///
/// Fails if a sampled app is unregistered or transparency is violated.
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let mut out = String::from(
        "Fault tolerance: single-bit soft errors in the MEMO-TABLE SRAM\n\
         (injection rates are per lookup, far above physical rates, to\n\
         separate the policies; all streams are deterministic)\n\n",
    );

    let mut t = TextTable::new(&[
        "protection",
        "fault rate",
        "hit",
        "SDC rate",
        "injected",
        "detected",
        "corrected",
        "silent",
    ]);
    for cell in sweep(cfg) {
        t.row(vec![
            protection_label(cell.protection),
            format!("{:.3}", cell.fault_rate),
            ratio(Some(cell.hit_ratio)),
            format!("{:.5}", cell.sdc_rate),
            cell.faults_injected.to_string(),
            cell.faults_detected.to_string(),
            cell.faults_corrected.to_string(),
            cell.faults_silent.to_string(),
        ]);
    }
    out.push_str(&format!("SDC sweep (MM corpus + scientific suites)\n{}\n", t.render()));

    let mut t = TextTable::new(&["protection", "speedup retained (39c divider)"]);
    for p in protection_speedups(cfg)? {
        t.row(vec![protection_label(p.protection), format!("{:.3}x", p.speedup)]);
    }
    out.push_str(&format!(
        "Cost of protection (clean tables, division-heavy sample)\n{}\n",
        t.render()
    ));

    let b = breaker_demo(cfg);
    out.push_str(&format!(
        "Circuit breaker: {}/{} slots taken offline after {} detections \
         (threshold {} per slot)\n\n",
        b.tripped_slots,
        MEMO_KINDS.len(),
        b.faults_detected,
        b.threshold,
    ));

    let tr = check_transparency(cfg)?;
    out.push_str(&format!(
        "Differential transparency: {} MM kernels bit-identical, {} scientific \
         kernels op-identical ({} table-served operations compared)\n",
        tr.mm_apps, tr.sci_apps, tr.ops_compared,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sample(sink: &mut DiffSink) {
        let cfg = ExpConfig::quick();
        for name in SPEEDUP_SAMPLE {
            let app = mm::find(name).expect("sample registered");
            for trace in traces::mm_traces(cfg, &app).iter() {
                trace.replay_events(sink);
            }
        }
    }

    #[test]
    fn unprotected_tables_suffer_silent_corruption() {
        let mut sink = DiffSink::new(faulty_bank(Protection::None, 0.1, 3));
        run_sample(&mut sink);
        assert!(sink.mismatches() > 0, "faults must reach the consumer");
        let cell = pooled_cell(Protection::None, 0.1, &sink);
        assert!(cell.sdc_rate > 0.0);
        assert!(cell.faults_silent > 0);
        assert_eq!(cell.faults_detected, 0, "no detector fitted");
    }

    #[test]
    fn parity_and_ecc_stop_single_bit_sdc() {
        for protection in [Protection::ParityDetect, Protection::EccSecDed] {
            let mut sink = DiffSink::new(faulty_bank(protection, 0.1, 3));
            run_sample(&mut sink);
            assert_eq!(
                sink.mismatches(),
                0,
                "{} must stop single-bit SDC",
                protection_label(protection)
            );
            let cell = pooled_cell(protection, 0.1, &sink);
            assert!(cell.faults_injected > 0, "the injector must have fired");
            assert!(
                cell.faults_detected + cell.faults_corrected > 0,
                "the policy must have acted"
            );
            assert_eq!(cell.faults_silent, 0);
        }
    }

    #[test]
    fn ecc_keeps_more_hits_than_parity() {
        // Parity downgrades every detected fault to a miss; ECC repairs it
        // and keeps the hit. Same injector seed, same stream.
        let mut parity = DiffSink::new(faulty_bank(Protection::ParityDetect, 0.1, 3));
        run_sample(&mut parity);
        let mut ecc = DiffSink::new(faulty_bank(Protection::EccSecDed, 0.1, 3));
        run_sample(&mut ecc);
        let p = pooled_cell(Protection::ParityDetect, 0.1, &parity);
        let e = pooled_cell(Protection::EccSecDed, 0.1, &ecc);
        assert!(e.faults_corrected > 0);
        assert!(
            e.hit_ratio >= p.hit_ratio,
            "ecc {} vs parity {}",
            e.hit_ratio,
            p.hit_ratio
        );
    }

    #[test]
    fn verification_cycles_tax_the_speedup() {
        let speedups = protection_speedups(ExpConfig::quick()).unwrap();
        let by = |p: Protection| {
            speedups
                .iter()
                .find(|s| s.protection == p)
                .map(|s| s.speedup)
                .expect("policy swept")
        };
        let none = by(Protection::None);
        let parity = by(Protection::ParityDetect);
        let ecc = by(Protection::EccSecDed);
        let verify = by(Protection::VerifyOnHit { verify_cycles: 4 });
        // Parity overlaps the compare: free. ECC charges 1 cycle per hit,
        // verify charges 4 — the ordering must be visible.
        assert!((parity - none).abs() < 1e-9, "parity {parity} vs none {none}");
        assert!(ecc < none, "ecc {ecc} must pay its read-path cycle vs {none}");
        assert!(verify < ecc, "verify {verify} must cost more than ecc {ecc}");
        assert!(verify > 1.0, "even verified memoing must still pay off: {verify}");
    }

    #[test]
    fn breaker_takes_hostile_slots_offline() {
        let b = breaker_demo(ExpConfig::quick());
        assert!(b.tripped_slots > 0, "at least one slot must trip");
        assert!(b.faults_detected >= b.threshold);
    }

    #[test]
    fn transparency_holds_with_faults_disabled() {
        let report = check_transparency(ExpConfig::quick()).unwrap();
        assert_eq!(report.mm_apps, mm::apps().len());
        assert_eq!(report.sci_apps, sci::all_apps().len());
        assert!(report.ops_compared > 0);
    }

    #[test]
    fn sweep_separates_the_policies() {
        let cells = sweep(ExpConfig::quick());
        assert_eq!(cells.len(), Protection::ALL.len() * FAULT_RATES.len());
        for cell in &cells {
            if cell.fault_rate == 0.0 {
                assert_eq!(cell.faults_injected, 0);
                assert_eq!(cell.sdc_rate, 0.0, "{}", protection_label(cell.protection));
            }
            match cell.protection {
                Protection::None => assert_eq!(cell.faults_detected, 0),
                _ => assert_eq!(
                    cell.faults_silent, 0,
                    "{} leaks under single-bit faults",
                    protection_label(cell.protection)
                ),
            }
        }
        // The headline: unprotected tables corrupt results; parity doesn't.
        let none_hot = cells
            .iter()
            .find(|c| c.protection == Protection::None && c.fault_rate == 0.1)
            .expect("swept");
        assert!(none_hot.sdc_rate > 0.0);
    }
}

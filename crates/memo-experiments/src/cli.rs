//! Shared command-line handling for the experiment binaries.
//!
//! The twenty-odd table/figure binaries take no positional arguments and
//! at most a couple of flags; before this module an unknown flag was
//! silently ignored, so `table5 --sacle=2` happily ran at default scale.
//! Every binary now calls [`enforce`] first: `--help`/`-h` prints usage
//! and exits 0, anything unrecognized prints usage to stderr and exits 2
//! (the conventional usage-error code).

/// What to do with a parsed argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// All arguments recognized — run the binary.
    Run,
    /// `--help`/`-h` requested.
    Help,
    /// An argument was not recognized.
    Reject(String),
}

/// Classify `args` (without the program name) against `flags`, the
/// binary's accepted flags. A flag spec ending in `=` accepts an inline
/// value (`--entries=8,16`); any other spec must match exactly.
pub fn validate<I: IntoIterator<Item = String>>(flags: &[(&str, &str)], args: I) -> Decision {
    for arg in args {
        if arg == "--help" || arg == "-h" {
            return Decision::Help;
        }
        let known = flags.iter().any(|(spec, _)| {
            if let Some(prefix) = spec.strip_suffix('=') {
                arg.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('='))
            } else {
                arg == *spec
            }
        });
        if !known {
            return Decision::Reject(arg);
        }
    }
    Decision::Run
}

/// Render the usage text for `bin`.
#[must_use]
pub fn usage(bin: &str, about: &str, flags: &[(&str, &str)]) -> String {
    let mut out = format!("{about}\n\nUsage: {bin} [OPTIONS]\n\nOptions:\n");
    for (spec, help) in flags.iter().chain(&[("--help, -h", "print this help and exit")]) {
        let spec = spec.strip_suffix('=').map_or_else(|| spec.to_string(), |p| format!("{p}=<v>"));
        out.push_str(&format!("  {spec:<18} {help}\n"));
    }
    out.push_str(
        "\nEnvironment:\n  MEMO_SCALE=<n>     image downscale divisor (default 4)\n  \
         MEMO_SCI_N=<n>     scientific-kernel problem size (default 32)\n  \
         MEMO_JOBS=<n>      sweep-executor worker count (default: all cores)\n",
    );
    out
}

/// Validate the process arguments, exiting on `--help` (code 0) or on an
/// unknown flag (usage to stderr, code 2). Call first thing in `main`.
pub fn enforce(bin: &str, about: &str, flags: &[(&str, &str)]) {
    match validate(flags, std::env::args().skip(1)) {
        Decision::Run => {}
        Decision::Help => {
            println!("{}", usage(bin, about, flags));
            std::process::exit(0);
        }
        Decision::Reject(arg) => {
            eprintln!("{bin}: unrecognized argument {arg:?}\n\n{}", usage(bin, about, flags));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_run() {
        assert_eq!(validate(&[], strings(&[])), Decision::Run);
    }

    #[test]
    fn help_beats_unknown() {
        assert_eq!(validate(&[], strings(&["--help"])), Decision::Help);
        assert_eq!(validate(&[], strings(&["-h", "--bogus"])), Decision::Help);
    }

    #[test]
    fn unknown_flag_rejected_with_its_spelling() {
        assert_eq!(
            validate(&[("--csv", "")], strings(&["--sacle=2"])),
            Decision::Reject("--sacle=2".to_string())
        );
    }

    #[test]
    fn exact_and_value_flags() {
        let flags = [("--csv", ""), ("--entries=", "")];
        assert_eq!(validate(&flags, strings(&["--csv"])), Decision::Run);
        assert_eq!(validate(&flags, strings(&["--entries=8,16"])), Decision::Run);
        // A value flag still needs its `=`.
        assert_eq!(
            validate(&flags, strings(&["--entries"])),
            Decision::Reject("--entries".to_string())
        );
        // An exact flag does not take a value.
        assert_eq!(
            validate(&flags, strings(&["--csv=yes"])),
            Decision::Reject("--csv=yes".to_string())
        );
    }

    #[test]
    fn usage_lists_flags_and_env() {
        let text = usage("table5", "Regenerates Table 5.", &[("--entries=", "sweep sizes")]);
        assert!(text.contains("Usage: table5"));
        assert!(text.contains("--entries=<v>"));
        assert!(text.contains("MEMO_SCALE"));
        assert!(text.contains("--help"));
    }
}

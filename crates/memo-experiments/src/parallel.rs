//! A dependency-free parallel sweep executor.
//!
//! Sweep drivers fan independent tasks (one bank per task, traces shared
//! immutably) over a [`std::thread::scope`] worker pool. Results are
//! written into per-index slots, so the output order — and therefore every
//! rendered table — is **byte-identical** to the serial path regardless of
//! worker count or scheduling (asserted by the `parallel_equivalence`
//! integration test).
//!
//! The worker count comes from the `MEMO_JOBS` environment variable,
//! falling back to [`std::thread::available_parallelism`]. `MEMO_JOBS=1`
//! forces the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count: `MEMO_JOBS` if set and valid, else the machine's
/// available parallelism, else 1 (shared with the `memo-serve` worker
/// pool via [`crate::env::jobs`]).
#[must_use]
pub fn jobs() -> usize {
    crate::env::jobs()
}

/// Apply `f` to every item on the [`jobs`] worker pool, returning results
/// in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (`1` runs inline on the
/// calling thread). Workers claim items from a shared queue and deposit
/// each result in its item's slot — deterministic output order with
/// dynamic load balancing.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .expect("task mutex poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(item);
                *results[i].lock().expect("result mutex poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.clone().into_iter().map(|i| i * i).collect();
        for workers in [1, 2, 4, 8] {
            let parallel = par_map_jobs(workers, items.clone(), |i| i * i);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_jobs::<usize, usize, _>(4, vec![], |i| i), vec![]);
        assert_eq!(par_map_jobs(4, vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items() {
        assert_eq!(par_map_jobs(64, vec![1, 2, 3], |i: usize| i * 10), vec![10, 20, 30]);
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn stateful_tasks_stay_independent() {
        // Each task owns its state (as sweep tasks own their banks); results
        // must not depend on scheduling.
        let items: Vec<u64> = (0..32).collect();
        let expect: Vec<u64> = items.iter().map(|&seed| {
            let mut x = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            x
        }).collect();
        let got = par_map_jobs(8, items, |seed| {
            let mut x = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            x
        });
        assert_eq!(got, expect);
    }
}

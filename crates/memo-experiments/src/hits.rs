//! Tables 5, 6, 7 — hit ratios per application, 32-entry 4-way vs.
//! "infinite" MEMO-TABLEs.

use memo_table::OpKind;
use memo_workloads::mm::MmApp;
use memo_workloads::sci::SciApp;
use memo_workloads::suite::{replay_stats_fused, HitRatios, SweepSpec};
use memo_workloads::{mm, sci};

use crate::format::{ratio, TextTable};
use crate::{parallel, results, traces, ExpConfig};

/// One application's row: finite-table and infinite-table hit ratios.
#[derive(Debug, Clone)]
pub struct HitRow {
    /// Application name.
    pub name: String,
    /// 32-entry 4-way table results.
    pub finite: HitRatios,
    /// Unbounded-table results.
    pub infinite: HitRatios,
}

/// A rendered hit-ratio table plus its column averages.
#[derive(Debug, Clone)]
pub struct HitTable {
    /// Which paper table this reproduces ("Table 5" …).
    pub title: String,
    /// Per-application rows.
    pub rows: Vec<HitRow>,
    /// Column averages over present cells, `(finite, infinite)`.
    pub averages: (HitRatios, HitRatios),
}

const KINDS: [OpKind; 3] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];

fn finite_spec() -> SweepSpec {
    SweepSpec::paper_default()
}

fn infinite_spec() -> SweepSpec {
    SweepSpec::infinite(&KINDS)
}

/// One sci row: record the kernel once; one fused pass per kind serves
/// the finite point and the infinite column together.
fn sci_row(cfg: ExpConfig, app: &SciApp, upper: bool) -> HitRow {
    let trace = traces::sci_trace(cfg, app);
    let both = replay_stats_fused([&*trace], &[finite_spec(), infinite_spec()]);
    HitRow {
        name: if upper { app.name.to_uppercase() } else { app.name.to_string() },
        finite: both[0].ratios(),
        infinite: both[1].ratios(),
    }
}

fn average(rows: &[HitRow], pick: impl Fn(&HitRow) -> HitRatios) -> HitRatios {
    let mut out = [None; 3];
    for (slot, kind) in KINDS.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().filter_map(|r| pick(r).get(*kind)).collect();
        if !vals.is_empty() {
            out[slot] = Some(vals.iter().sum::<f64>() / vals.len() as f64);
        }
    }
    HitRatios { int_mul: out[0], fp_mul: out[1], fp_div: out[2] }
}

fn build(title: &str, rows: Vec<HitRow>) -> HitTable {
    let averages = (average(&rows, |r| r.finite), average(&rows, |r| r.infinite));
    HitTable { title: title.to_string(), rows, averages }
}

/// Table 5 — the Perfect Club suite.
#[must_use]
pub fn table5(cfg: ExpConfig) -> HitTable {
    results::cached("table5", cfg, || {
        let rows = parallel::par_map(sci::perfect_apps(), |app| sci_row(cfg, &app, true));
        build("Table 5: Hit ratios for the Perfect benchmarks", rows)
    })
}

/// Table 6 — SPEC CFP95.
#[must_use]
pub fn table6(cfg: ExpConfig) -> HitTable {
    results::cached("table6", cfg, || {
        let rows = parallel::par_map(sci::spec_apps(), |app| sci_row(cfg, &app, false));
        build("Table 6: Hit ratios for the SPEC CFP95 benchmarks", rows)
    })
}

/// Table 7 — the multi-media suite over the Table 8 image corpus.
#[must_use]
pub fn table7(cfg: ExpConfig) -> HitTable {
    results::cached("table7", cfg, || {
        let rows = parallel::par_map(mm::apps(), |app: MmApp| {
            let app_traces = traces::mm_traces(cfg, &app);
            let both = replay_stats_fused(app_traces.iter(), &[finite_spec(), infinite_spec()]);
            HitRow {
                name: app.name.to_string(),
                finite: both[0].ratios(),
                infinite: both[1].ratios(),
            }
        });
        build("Table 7: Hit ratios for Multi-Media applications", rows)
    })
}

impl HitTable {
    /// Render in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "application",
            "imul/32",
            "fmul/32",
            "fdiv/32",
            "imul/inf",
            "fmul/inf",
            "fdiv/inf",
        ]);
        let cells = |r: &HitRatios| {
            vec![ratio(r.int_mul), ratio(r.fp_mul), ratio(r.fp_div)]
        };
        for row in &self.rows {
            let mut line = vec![row.name.clone()];
            line.extend(cells(&row.finite));
            line.extend(cells(&row.infinite));
            t.row(line);
        }
        let mut avg = vec!["average".to_string()];
        avg.extend(cells(&self.averages.0));
        avg.extend(cells(&self.averages.1));
        t.row(avg);
        format!("{}\n(LUT: 32 entries in sets of 4, or infinitely large and associative)\n{}", self.title, t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_shape_matches_paper() {
        let t = table7(ExpConfig::quick());
        assert_eq!(t.rows.len(), 18);
        let (fin, inf) = &t.averages;
        // MM suite at 32 entries: strong fp reuse (paper: .39 fmul, .47
        // fdiv; the tiny quick-scale images land a little lower).
        assert!(fin.fp_mul.unwrap() > 0.22, "fmul avg {:?}", fin.fp_mul);
        assert!(fin.fp_div.unwrap() > 0.22, "fdiv avg {:?}", fin.fp_div);
        // Infinite tables much higher (paper: .82/.85).
        assert!(inf.fp_mul.unwrap() > fin.fp_mul.unwrap() + 0.2);
        assert!(inf.fp_div.unwrap() > fin.fp_div.unwrap() + 0.2);
    }

    #[test]
    fn tables_5_and_6_show_poor_small_table_reuse() {
        let cfg = ExpConfig::quick();
        for t in [table5(cfg), table6(cfg)] {
            let (fin, inf) = &t.averages;
            // Scientific fp hit ratios at 32 entries are low (paper: .11-.20).
            assert!(fin.fp_mul.unwrap() < 0.35, "{}: fmul {:?}", t.title, fin.fp_mul);
            // …but the unbounded table uncovers real reuse (paper: .31-.52).
            assert!(
                inf.fp_mul.unwrap() > fin.fp_mul.unwrap(),
                "{}: infinite must dominate",
                t.title
            );
        }
    }

    #[test]
    fn render_includes_averages_and_dashes() {
        let t = table5(ExpConfig::quick());
        let s = t.render();
        assert!(s.contains("average"));
        assert!(s.contains('-'), "MDG's missing imul renders as '-'");
        assert!(s.contains("ADM"));
    }
}

//! Shared environment-variable parsing.
//!
//! Every knob the harness reads from the environment (`MEMO_SCALE`,
//! `MEMO_SCI_N`, `MEMO_JOBS`, the `MEMO_STORE_*` and `MEMO_REGION_*`
//! families, and the serving knobs built on top) parses the same way:
//! trimmed, base-10,
//! silently ignored when absent or malformed, clamped into a documented
//! range when one exists. This module is the one implementation; the
//! sweep executor ([`crate::parallel`]), [`crate::ExpConfig::from_env`],
//! the `memo-serve` worker pool, and the persistent-store open path
//! ([`store_config`], [`STORE_KNOBS`]) all call it.

use memo_store::StoreConfig;

/// Parse `name` as a `usize`, returning `None` when the variable is
/// unset, empty, or not a base-10 integer.
#[must_use]
pub fn usize_var(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Parse `name` as a `usize` clamped into `[min, max]`. A deployment
/// typo (one zero too many, a negative pasted as garbage) degrades to
/// the nearest sane value instead of a pathological store config.
#[must_use]
pub fn ranged_var(name: &str, min: usize, max: usize) -> Option<usize> {
    usize_var(name).map(|v| v.clamp(min, max))
}

/// The persistent-store knobs, all optional. This table is the single
/// source of truth — [`store_config`] and [`store_block_cache_spans`]
/// parse exactly these names with exactly these ranges:
///
/// | variable | default | range | tunes |
/// |---|---|---|---|
/// | `MEMO_STORE_MEMTABLE_BYTES` | 4 MiB | 4 KiB – 1 GiB | freeze watermark: memtable bytes before it joins the flush queue |
/// | `MEMO_STORE_MAX_IMMUTABLES` | 4 | 1 – 64 | flush-queue depth before writers block (backpressure) |
/// | `MEMO_STORE_BLOOM_BITS` | 10 | 0 – 64 | bloom bits per key (`0` writes filterless segments) |
/// | `MEMO_STORE_COMPACT_AT` | 8 | 2 – 1024 | segment count that triggers a background full compaction |
/// | `MEMO_STORE_BLOCK_CACHE_CAP` | 256 | 0 – 1 Mi | cached decoded spans (`0` disables the block cache) |
///
/// Unset or unparseable values keep the default; parseable values
/// outside the range are clamped to its nearest edge.
pub const STORE_KNOBS: [(&str, &str, usize, usize); 5] = [
    ("MEMO_STORE_MEMTABLE_BYTES", "freeze watermark (bytes)", 4 << 10, 1 << 30),
    ("MEMO_STORE_MAX_IMMUTABLES", "flush-queue depth before writers block", 1, 64),
    ("MEMO_STORE_BLOOM_BITS", "bloom bits per key (0 disables)", 0, 64),
    ("MEMO_STORE_COMPACT_AT", "segments before auto-compaction", 2, 1024),
    ("MEMO_STORE_BLOCK_CACHE_CAP", "cached spans (0 disables)", 0, 1 << 20),
];

/// The region-memoization knobs (crate `memo-region`), same contract as
/// [`STORE_KNOBS`]:
///
/// | variable | default | range | tunes |
/// |---|---|---|---|
/// | `MEMO_REGION_MAX_LEN` | 16 | 2 – 64 | longest pure instruction run one region may cover |
/// | `MEMO_REGION_TABLE` | 64 | 8 – 4096 | region-table entries (rounded down to a power of two) |
pub const REGION_KNOBS: [(&str, &str, usize, usize); 2] = [
    ("MEMO_REGION_MAX_LEN", "max instructions per region", 2, 64),
    ("MEMO_REGION_TABLE", "region-table entries", 8, 4096),
];

fn table_knob(table: &[(&str, &str, usize, usize)], name: &str) -> Option<usize> {
    let (_, _, min, max) =
        table.iter().find(|(n, ..)| *n == name).expect("knob listed in its table");
    ranged_var(name, *min, *max)
}

fn knob(name: &str) -> Option<usize> {
    table_knob(&STORE_KNOBS, name)
}

/// Longest pure run one region may cover: `MEMO_REGION_MAX_LEN` under
/// the [`REGION_KNOBS`] range, defaulting to 16.
#[must_use]
pub fn region_max_len() -> usize {
    table_knob(&REGION_KNOBS, "MEMO_REGION_MAX_LEN").unwrap_or(16)
}

/// Region-table entry count: `MEMO_REGION_TABLE` under the
/// [`REGION_KNOBS`] range, defaulting to 64 and rounded *down* to a
/// power of two (the table geometry requires it).
#[must_use]
pub fn region_table_entries() -> usize {
    let v = table_knob(&REGION_KNOBS, "MEMO_REGION_TABLE").unwrap_or(64);
    1 << (usize::BITS - 1 - v.leading_zeros())
}

/// [`StoreConfig`] defaults overridden by the `MEMO_STORE_*` variables
/// in [`STORE_KNOBS`]. The one implementation — `memo-serve` start-up
/// and any experiment driver opening a store read the environment
/// through here.
#[must_use]
pub fn store_config() -> StoreConfig {
    let mut config = StoreConfig::default();
    if let Some(v) = knob("MEMO_STORE_MEMTABLE_BYTES") {
        config.memtable_max_bytes = v;
    }
    if let Some(v) = knob("MEMO_STORE_MAX_IMMUTABLES") {
        config.max_immutables = v;
    }
    if let Some(v) = knob("MEMO_STORE_BLOOM_BITS") {
        config.bloom_bits_per_key = u32::try_from(v).unwrap_or(64);
    }
    if let Some(v) = knob("MEMO_STORE_COMPACT_AT") {
        config.compact_at_segments = v;
    }
    config
}

/// Block-cache capacity in spans: `MEMO_STORE_BLOCK_CACHE_CAP` under
/// the [`STORE_KNOBS`] range, defaulting to 256. Zero disables the
/// cache.
#[must_use]
pub fn store_block_cache_spans() -> usize {
    knob("MEMO_STORE_BLOCK_CACHE_CAP").unwrap_or(256)
}

/// The worker count shared by the sweep executor and the `memo-serve`
/// worker pool: `MEMO_JOBS` if set and valid (clamped to at least 1),
/// else the machine's available parallelism, else 1.
#[must_use]
pub fn jobs() -> usize {
    usize_var("MEMO_JOBS").map_or_else(
        || std::thread::available_parallelism().map_or(1, |n| n.get()),
        |n| n.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_variable_is_none_and_jobs_stays_positive() {
        // The test harness does not define this variable.
        assert_eq!(usize_var("MEMO_NO_SUCH_VARIABLE"), None);
        assert!(jobs() >= 1);
    }

    #[test]
    fn parses_trimmed_base10() {
        std::env::set_var("MEMO_ENV_TEST_USIZE", " 42 ");
        assert_eq!(usize_var("MEMO_ENV_TEST_USIZE"), Some(42));
        std::env::set_var("MEMO_ENV_TEST_USIZE", "not-a-number");
        assert_eq!(usize_var("MEMO_ENV_TEST_USIZE"), None);
        std::env::remove_var("MEMO_ENV_TEST_USIZE");
    }

    #[test]
    fn ranged_var_clamps_to_its_edges() {
        std::env::set_var("MEMO_ENV_TEST_RANGED", "5");
        assert_eq!(ranged_var("MEMO_ENV_TEST_RANGED", 10, 100), Some(10));
        std::env::set_var("MEMO_ENV_TEST_RANGED", "5000");
        assert_eq!(ranged_var("MEMO_ENV_TEST_RANGED", 10, 100), Some(100));
        std::env::set_var("MEMO_ENV_TEST_RANGED", "50");
        assert_eq!(ranged_var("MEMO_ENV_TEST_RANGED", 10, 100), Some(50));
        std::env::remove_var("MEMO_ENV_TEST_RANGED");
        assert_eq!(ranged_var("MEMO_ENV_TEST_RANGED", 10, 100), None);
    }

    #[test]
    fn store_config_reads_the_documented_knobs_with_validation() {
        // Note: other tests in this binary also touch the environment;
        // use distinct values and restore on the way out.
        std::env::set_var("MEMO_STORE_MEMTABLE_BYTES", "8192");
        std::env::set_var("MEMO_STORE_MAX_IMMUTABLES", "0"); // below range → clamped to 1
        std::env::set_var("MEMO_STORE_BLOOM_BITS", "999"); // above range → clamped to 64
        std::env::set_var("MEMO_STORE_COMPACT_AT", "16");
        std::env::set_var("MEMO_STORE_BLOCK_CACHE_CAP", "0");
        let config = store_config();
        assert_eq!(config.memtable_max_bytes, 8192);
        assert_eq!(config.max_immutables, 1);
        assert_eq!(config.bloom_bits_per_key, 64);
        assert_eq!(config.compact_at_segments, 16);
        assert_eq!(store_block_cache_spans(), 0);
        for (name, ..) in STORE_KNOBS {
            std::env::remove_var(name);
        }
        // With nothing set, every field keeps its default.
        let fresh = store_config();
        let default = StoreConfig::default();
        assert_eq!(fresh.memtable_max_bytes, default.memtable_max_bytes);
        assert_eq!(fresh.max_immutables, default.max_immutables);
        assert_eq!(fresh.bloom_bits_per_key, default.bloom_bits_per_key);
        assert_eq!(fresh.compact_at_segments, default.compact_at_segments);
        assert_eq!(store_block_cache_spans(), 256);
    }

    #[test]
    fn region_knobs_clamp_and_round_to_powers_of_two() {
        assert_eq!(region_max_len(), 16);
        assert_eq!(region_table_entries(), 64);
        std::env::set_var("MEMO_REGION_MAX_LEN", "1"); // below range → clamped to 2
        std::env::set_var("MEMO_REGION_TABLE", "100"); // in range → rounded down to 64
        assert_eq!(region_max_len(), 2);
        assert_eq!(region_table_entries(), 64);
        std::env::set_var("MEMO_REGION_MAX_LEN", "999"); // above range → clamped to 64
        std::env::set_var("MEMO_REGION_TABLE", "99999"); // above range → clamped, still pow2
        assert_eq!(region_max_len(), 64);
        assert_eq!(region_table_entries(), 4096);
        for (name, ..) in REGION_KNOBS {
            std::env::remove_var(name);
        }
        assert_eq!((region_max_len(), region_table_entries()), (16, 64));
    }
}

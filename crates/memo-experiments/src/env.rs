//! Shared environment-variable parsing.
//!
//! Every knob the harness reads from the environment (`MEMO_SCALE`,
//! `MEMO_SCI_N`, `MEMO_JOBS`, and the serving knobs built on top) parses
//! the same way: trimmed, base-10, silently ignored when absent or
//! malformed. This module is the one implementation; the sweep executor
//! ([`crate::parallel`]), [`crate::ExpConfig::from_env`], and the
//! `memo-serve` worker pool all call it.

/// Parse `name` as a `usize`, returning `None` when the variable is
/// unset, empty, or not a base-10 integer.
#[must_use]
pub fn usize_var(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The worker count shared by the sweep executor and the `memo-serve`
/// worker pool: `MEMO_JOBS` if set and valid (clamped to at least 1),
/// else the machine's available parallelism, else 1.
#[must_use]
pub fn jobs() -> usize {
    usize_var("MEMO_JOBS").map_or_else(
        || std::thread::available_parallelism().map_or(1, |n| n.get()),
        |n| n.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_variable_is_none_and_jobs_stays_positive() {
        // The test harness does not define this variable.
        assert_eq!(usize_var("MEMO_NO_SUCH_VARIABLE"), None);
        assert!(jobs() >= 1);
    }

    #[test]
    fn parses_trimmed_base10() {
        std::env::set_var("MEMO_ENV_TEST_USIZE", " 42 ");
        assert_eq!(usize_var("MEMO_ENV_TEST_USIZE"), Some(42));
        std::env::set_var("MEMO_ENV_TEST_USIZE", "not-a-number");
        assert_eq!(usize_var("MEMO_ENV_TEST_USIZE"), None);
        std::env::remove_var("MEMO_ENV_TEST_USIZE");
    }
}

//! Public runner entry points: every paper artifact behind one function.
//!
//! The table/figure binaries, the `all_experiments` driver, and the
//! `memo-serve` HTTP endpoints all need the same thing — "give me the
//! rendered bytes of table *n* / figure *n* / this sweep" — and they must
//! agree byte-for-byte (the serve end-to-end test asserts it). This
//! module is that single source: [`table`], [`figure`], [`sweep`], and
//! the [`experiments`] registry the full-reproduction driver iterates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use memo_table::{Assoc, MemoConfig, OpKind};

use crate::{
    ablations, extension, fault_tolerance, figures, hits, images, mantissa, regions, related,
    speedup,
    suites, summary, table1, trivial, ExpConfig, ExperimentError,
};

/// Render table `n` (1–13) exactly as its standalone binary prints it
/// (without the trailing newline `println!` appends).
///
/// # Errors
///
/// [`ExperimentError::UnknownArtifact`] for numbers outside 1–13, or the
/// underlying experiment's error.
pub fn table(n: usize, cfg: ExpConfig) -> Result<String, ExperimentError> {
    match n {
        1 => Ok(table1::render()),
        2 => Ok(suites::render_table2()),
        3 => Ok(suites::render_table3()),
        4 => Ok(suites::render_table4()),
        5 => Ok(hits::table5(cfg).render()),
        6 => Ok(hits::table6(cfg).render()),
        7 => Ok(hits::table7(cfg).render()),
        8 => Ok(images::render(&images::table8(cfg))),
        9 => Ok(trivial::render(&trivial::table9(cfg)?)),
        10 => Ok(mantissa::render(&mantissa::table10(cfg))),
        11 => Ok(speedup::render(
            "Table 11: Speedup, fp division memoized",
            "13c",
            "39c",
            &speedup::table11(cfg)?,
        )),
        12 => Ok(speedup::render(
            "Table 12: Speedup, fp multiplication memoized",
            "3c",
            "5c",
            &speedup::table12(cfg)?,
        )),
        13 => Ok(speedup::render(
            "Table 13: Speedup, fp mul+div memoized",
            "3/13c",
            "5/39c",
            &speedup::table13(cfg)?,
        )),
        n => Err(ExperimentError::UnknownArtifact { kind: "table", n }),
    }
}

/// Render figure `n` (2–4) exactly as its standalone binary prints it.
///
/// # Errors
///
/// [`ExperimentError::UnknownArtifact`] for numbers outside 2–4, or the
/// underlying experiment's error.
pub fn figure(n: usize, cfg: ExpConfig) -> Result<String, ExperimentError> {
    match n {
        2 => Ok(figures::figure2(cfg)?.render()),
        3 => Ok(figures::render_sweep(
            "Figure 3: Hit ratio vs LUT size (4-way)",
            "entries",
            &figures::figure3(cfg)?,
        )),
        4 => Ok(figures::render_sweep(
            "Figure 4: Hit ratio vs associativity (32 entries)",
            "ways",
            &figures::figure4(cfg)?,
        )),
        n => Err(ExperimentError::UnknownArtifact { kind: "figure", n }),
    }
}

/// A caller-chosen hit-ratio sweep over the five sample applications:
/// one axis (entry counts or associativities), fmul and fdiv curves, the
/// same fused stack-distance pass Figures 3 and 4 use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepQuery {
    /// Entry counts (default `[32]`); the sweep axis when longer than 1.
    pub entries: Vec<usize>,
    /// Associativities (default `[Ways(4)]`); the axis when `entries`
    /// is a single value and this is longer.
    pub ways: Vec<Assoc>,
}

impl Default for SweepQuery {
    fn default() -> Self {
        SweepQuery { entries: vec![32], ways: vec![Assoc::Ways(4)] }
    }
}

impl SweepQuery {
    /// Build from the textual forms used by `--entries=`/`--ways=` flags
    /// and `?entries=&ways=` query parameters (comma-separated lists;
    /// `None` keeps the default axis value).
    ///
    /// # Errors
    ///
    /// [`ExperimentError::InvalidSweep`] on unparsable values, empty
    /// lists, or two multi-value axes at once.
    pub fn parse(entries: Option<&str>, ways: Option<&str>) -> Result<Self, ExperimentError> {
        let bad = |what: &str, v: &str| {
            ExperimentError::InvalidSweep(format!("bad {what} value {v:?}"))
        };
        let mut q = SweepQuery::default();
        if let Some(list) = entries {
            q.entries = list
                .split(',')
                .map(|v| v.trim().parse::<usize>().map_err(|_| bad("entries", v)))
                .collect::<Result<_, _>>()?;
        }
        if let Some(list) = ways {
            q.ways = list
                .split(',')
                .map(|v| Assoc::parse(v.trim()).ok_or_else(|| bad("ways", v)))
                .collect::<Result<_, _>>()?;
        }
        if q.entries.is_empty() || q.ways.is_empty() {
            return Err(ExperimentError::InvalidSweep("empty axis".to_string()));
        }
        if q.entries.len() > 1 && q.ways.len() > 1 {
            return Err(ExperimentError::InvalidSweep(
                "sweep one axis at a time: multiple entries AND multiple ways".to_string(),
            ));
        }
        Ok(q)
    }

    /// Stable canonical form — the `memo-serve` cache key component.
    /// Equal queries render identically; parsing the canonical form
    /// round-trips.
    #[must_use]
    pub fn canonical(&self) -> String {
        let entries: Vec<String> = self.entries.iter().map(usize::to_string).collect();
        let ways: Vec<String> = self.ways.iter().map(|w| w.canonical()).collect();
        format!("entries={};ways={}", entries.join(","), ways.join(","))
    }

    /// The `(x, config)` grid this query describes, plus the axis label.
    fn grid(&self) -> Result<SweepGridSpec, ExperimentError> {
        let build = |e: usize, a: Assoc| {
            MemoConfig::builder(e)
                .assoc(a)
                .build()
                .map_err(|err| ExperimentError::InvalidSweep(err.to_string()))
        };
        if self.ways.len() > 1 {
            let entries = self.entries[0];
            let title = format!("Sweep: hit ratio vs associativity ({entries} entries)");
            let grid = self
                .ways
                .iter()
                .map(|&a| Ok::<_, ExperimentError>((a.ways(entries), build(entries, a)?)))
                .collect::<Result<_, _>>()?;
            Ok(("ways", title, grid))
        } else {
            let assoc = self.ways[0];
            let title = format!("Sweep: hit ratio vs LUT size ({})", assoc_phrase(assoc));
            let grid = self
                .entries
                .iter()
                .map(|&e| Ok::<_, ExperimentError>((e, build(e, assoc)?)))
                .collect::<Result<_, _>>()?;
            Ok(("entries", title, grid))
        }
    }
}

/// A sweep grid: `(x-axis label, title, (x, config) pairs)`.
type SweepGridSpec = (&'static str, String, Vec<(usize, MemoConfig)>);

fn assoc_phrase(a: Assoc) -> String {
    match a {
        Assoc::DirectMapped => "direct-mapped".to_string(),
        Assoc::Ways(n) => format!("{n}-way"),
        Assoc::Full => "fully associative".to_string(),
    }
}

/// Run and render the custom sweep `q` describes — the direct runner the
/// `/v1/sweep` endpoint must match byte-for-byte.
///
/// # Errors
///
/// [`ExperimentError::InvalidSweep`] for unbuildable grids, or a missing
/// sample application.
pub fn sweep(cfg: ExpConfig, q: &SweepQuery) -> Result<String, ExperimentError> {
    let (x_label, title, grid) = q.grid()?;
    let traces = figures::sample_traces(cfg)?;
    let curves = [
        figures::sweep_curve(&traces, OpKind::FpMul, &grid),
        figures::sweep_curve(&traces, OpKind::FpDiv, &grid),
    ];
    Ok(figures::render_sweep(&title, x_label, &curves))
}

/// Render the region-memoization family (crate `memo-region`) — the
/// direct runner the `/v1/region` endpoint must match byte-for-byte.
///
/// # Errors
///
/// [`ExperimentError::Transparency`] if the differential checker finds
/// any architectural-state divergence.
pub fn region(cfg: ExpConfig) -> Result<String, ExperimentError> {
    regions::render(cfg)
}

/// One experiment runner: a name and a render function.
pub type Runner = fn(ExpConfig) -> Result<String, ExperimentError>;

/// The full-reproduction registry, in paper order. `all_experiments`
/// iterates it; the scorecard entry uses [`summary::render_strict`] so a
/// failing claim fails the run.
#[must_use]
pub fn experiments() -> Vec<(&'static str, Runner)> {
    vec![
        ("table 1", |cfg| table(1, cfg)),
        ("tables 2-4", |cfg| {
            Ok(format!("{}\n{}\n{}", table(2, cfg)?, table(3, cfg)?, table(4, cfg)?))
        }),
        ("table 5", |cfg| table(5, cfg)),
        ("table 6", |cfg| table(6, cfg)),
        ("table 7", |cfg| table(7, cfg)),
        ("table 8", |cfg| table(8, cfg)),
        ("table 9", |cfg| table(9, cfg)),
        ("table 10", |cfg| table(10, cfg)),
        ("table 11", |cfg| table(11, cfg)),
        ("table 12", |cfg| table(12, cfg)),
        ("table 13", |cfg| table(13, cfg)),
        ("figure 2", |cfg| figure(2, cfg)),
        ("figure 3", |cfg| figure(3, cfg)),
        ("figure 4", |cfg| figure(4, cfg)),
        ("ablations", ablations::render),
        ("related work", related::render),
        ("future work", extension::render),
        ("fault tolerance", fault_tolerance::render),
        ("regions", regions::render),
        ("scorecard", summary::render_strict),
    ]
}

/// One registry entry's outcome.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The registry name.
    pub name: &'static str,
    /// `Ok` when the experiment rendered, else the failure text.
    pub result: Result<(), String>,
    /// Wall-clock milliseconds spent.
    pub ms: u128,
}

/// Run every registry entry under a catch barrier, feeding each rendered
/// report to `emit` as it completes. A typed error or panic in one
/// experiment is recorded and the run continues — but it is *recorded*:
/// use [`failed`] to decide the exit code.
pub fn run_registry(
    cfg: ExpConfig,
    registry: &[(&'static str, Runner)],
    mut emit: impl FnMut(&str),
) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(registry.len());
    for &(name, run) in registry {
        let start = Instant::now();
        let result = match catch_unwind(AssertUnwindSafe(|| run(cfg))) {
            Ok(Ok(report)) => {
                emit(&report);
                Ok(())
            }
            Ok(Err(e)) => Err(e.to_string()),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic with non-string payload");
                Err(format!("panicked: {msg}"))
            }
        };
        outcomes.push(RunOutcome { name, result, ms: start.elapsed().as_millis() });
    }
    outcomes
}

/// How many outcomes failed — nonzero means the driver must exit nonzero
/// (CI depends on it to see partial failures).
#[must_use]
pub fn failed(outcomes: &[RunOutcome]) -> usize {
    outcomes.iter().filter(|o| o.result.is_err()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_artifacts_are_typed_errors() {
        let cfg = ExpConfig::quick();
        assert!(matches!(
            table(0, cfg),
            Err(ExperimentError::UnknownArtifact { kind: "table", n: 0 })
        ));
        assert!(matches!(
            table(14, cfg),
            Err(ExperimentError::UnknownArtifact { kind: "table", n: 14 })
        ));
        assert!(matches!(
            figure(5, cfg),
            Err(ExperimentError::UnknownArtifact { kind: "figure", n: 5 })
        ));
    }

    #[test]
    fn table_matches_module_render() {
        // The registry and the standalone binaries share these calls; a
        // drift here would silently fork the HTTP bytes from the CLI.
        let cfg = ExpConfig::quick();
        assert_eq!(table(1, cfg).unwrap(), table1::render());
        assert_eq!(table(5, cfg).unwrap(), hits::table5(cfg).render());
    }

    #[test]
    fn sweep_query_parses_and_round_trips() {
        let q = SweepQuery::parse(Some("8,16,32"), None).unwrap();
        assert_eq!(q.entries, vec![8, 16, 32]);
        assert_eq!(q.ways, vec![Assoc::Ways(4)]);
        let again = SweepQuery::parse(Some("8,16,32"), Some("4")).unwrap();
        assert_eq!(q.canonical(), again.canonical());

        let w = SweepQuery::parse(None, Some("direct,2,4,full")).unwrap();
        assert_eq!(w.ways.len(), 4);
        assert_eq!(w.ways[0], Assoc::DirectMapped);
        assert_eq!(w.ways[3], Assoc::Full);

        assert!(SweepQuery::parse(Some("8,x"), None).is_err());
        assert!(SweepQuery::parse(Some("8,16"), Some("2,4")).is_err());
        assert!(SweepQuery::parse(Some(""), None).is_err());
    }

    #[test]
    fn sweep_rejects_unbuildable_geometry() {
        // 3 ways do not divide 32 entries.
        let q = SweepQuery::parse(Some("32"), Some("3")).unwrap();
        assert!(matches!(sweep(ExpConfig::quick(), &q), Err(ExperimentError::InvalidSweep(_))));
    }

    #[test]
    fn default_sweep_runs_and_renders() {
        let out = sweep(ExpConfig::quick(), &SweepQuery::default()).unwrap();
        assert!(out.starts_with("Sweep: hit ratio vs LUT size (4-way)"));
        assert!(out.contains("fmul avg"));
    }

    #[test]
    fn run_registry_continues_past_failures_and_counts_them() {
        let registry: Vec<(&'static str, Runner)> = vec![
            ("ok", |_| Ok("fine".to_string())),
            ("typed error", |_| {
                Err(ExperimentError::UnknownArtifact { kind: "table", n: 99 })
            }),
            ("panic", |_| panic!("boom")),
            ("also ok", |_| Ok("still fine".to_string())),
        ];
        let mut emitted = Vec::new();
        let outcomes =
            run_registry(ExpConfig::quick(), &registry, |report| emitted.push(report.to_string()));
        assert_eq!(outcomes.len(), 4);
        assert_eq!(emitted, vec!["fine".to_string(), "still fine".to_string()]);
        assert_eq!(failed(&outcomes), 2);
        assert!(outcomes[2].result.as_ref().unwrap_err().contains("boom"));
    }
}

//! The paper's named future work (§4): extending MEMO-TABLEs to the
//! square-root unit, and quantifying the pipeline-hazard benefit that the
//! headline cycle counts deliberately exclude (§3.3).

use memo_imaging::Image;
use memo_sim::{
    compare_divider_farms, CpuModel, CycleAccountant, EventSink, FarmComparison, MemoBank,
    MemoryHierarchy, PipelineModel,
};
use memo_table::{MemoConfig, MemoTable, Op, OpKind};

use crate::error::find_mm;
use crate::figures::sample_traces;
use crate::format::{ratio, TextTable};
use crate::{parallel, traces, ExpConfig, ExperimentError};

/// A workload variant that uses the hardware square-root *instruction*
/// instead of Newton iteration on the divider — per-pixel `fsqrt` over an
/// image, the `vsqrt` of a machine with a real sqrt unit.
pub fn sqrt_image<S: EventSink + ?Sized>(sink: &mut S, input: &Image) {
    for y in 0..input.height() {
        for x in 0..input.width() {
            sink.load((y * input.width() + x) as u64 * 8);
            let _ = sink.fsqrt(input.get(x, y, 0));
            sink.int_ops(2);
            sink.branch();
        }
    }
}

/// Square-root memoization results.
#[derive(Debug, Clone, Copy)]
pub struct SqrtExtension {
    /// Hit ratio of a 32-entry, 4-way table on the sqrt unit.
    pub hit_ratio: f64,
    /// Measured speedup of the sqrt-heavy workload.
    pub speedup: f64,
    /// Fraction of baseline cycles spent in the sqrt unit.
    pub fraction_enhanced: f64,
}

/// Run the sqrt future-work experiment over the image corpus.
#[must_use]
pub fn sqrt_extension(cfg: ExpConfig) -> SqrtExtension {
    let corpus = traces::corpus(cfg.image_scale);
    let bank = MemoBank::none()
        .with_table(OpKind::FpSqrt, MemoTable::new(MemoConfig::paper_default()));
    let mut acc =
        CycleAccountant::new(CpuModel::paper_slow(), MemoryHierarchy::typical_1997(), bank);
    for c in corpus.iter() {
        sqrt_image(&mut acc, &c.image);
    }
    let report = acc.report();
    SqrtExtension {
        hit_ratio: report.hit_ratio(OpKind::FpSqrt),
        speedup: report.speedup_measured(),
        fraction_enhanced: report.fraction_enhanced(OpKind::FpSqrt),
    }
}

/// One application's pipeline-model vs latency-model comparison.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Application name.
    pub name: String,
    /// Speedup under the paper's latency-accounting model.
    pub latency_model: f64,
    /// Speedup under the in-order pipeline model with structural hazards.
    pub pipeline_model: f64,
    /// Divider stall cycles removed by memoization.
    pub stalls_removed: u64,
}

/// §2.2–2.3: how much more a MEMO-TABLE buys once structural hazards are
/// modelled — the non-pipelined divider blocks issue on the baseline
/// machine but is freed by table hits.
///
/// # Errors
///
/// Fails if a studied app name is missing from the registry.
pub fn pipeline_study(cfg: ExpConfig) -> Result<Vec<PipelineRow>, ExperimentError> {
    let apps = ["vspatial", "vgauss", "vgpwl", "vkmeans"]
        .iter()
        .map(|name| find_mm(name))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(parallel::par_map(apps, |app| {
        // One native run per app; all three machine models replay it.
        let trace = traces::mm_event_trace(cfg, &app);

        // Latency model.
        let mut acc = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        trace.replay_into(&mut acc);
        let latency_model = acc.report().speedup_measured();

        // Pipeline model: baseline vs memoized.
        let mut base = PipelineModel::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::none(),
        );
        trace.replay_into(&mut base);
        let mut memo = PipelineModel::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        trace.replay_into(&mut memo);
        let b = base.report();
        let m = memo.report();
        PipelineRow {
            name: app.name.to_string(),
            latency_model,
            pipeline_model: b.cycles as f64 / m.cycles as f64,
            stalls_removed: b.fp_div_stalls.saturating_sub(m.fp_div_stalls),
        }
    }))
}

/// §2.3 / §4: one divider + MEMO-TABLE interface vs. a duplicated divider,
/// on the pooled division stream of the sample applications.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn divider_farm_study(cfg: ExpConfig) -> Result<FarmComparison, ExperimentError> {
    let ops: Vec<Op> = sample_traces(cfg)?
        .iter()
        .flat_map(|app_traces| app_traces.iter())
        .flat_map(|trace| trace.iter())
        .collect();
    Ok(compare_divider_farms(&CpuModel::paper_slow(), MemoConfig::paper_default(), &ops))
}

/// Render both future-work studies.
///
/// # Errors
///
/// Fails if a studied app name is missing from the registry.
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let s = sqrt_extension(cfg);
    let mut out = format!(
        "Future work (Section 4): memoizing the square-root unit\n\
         32-entry 4-way table on fsqrt: hit ratio {}, FE {:.3}, speedup {:.3}x\n\n",
        ratio(Some(s.hit_ratio)),
        s.fraction_enhanced,
        s.speedup
    );

    let mut t = TextTable::new(&["app", "latency-model", "pipeline-model", "stalls removed"]);
    for r in pipeline_study(cfg)? {
        t.row(vec![
            r.name,
            format!("{:.3}x", r.latency_model),
            format!("{:.3}x", r.pipeline_model),
            r.stalls_removed.to_string(),
        ]);
    }
    out.push_str(&format!(
        "Pipeline integration (Sections 2.2-2.3): speedup once structural\n\
         hazards of the non-pipelined divider are modelled\n{}\n",
        t.render()
    ));

    let farm = divider_farm_study(cfg)?;
    out.push_str(&format!(
        "Divider farm (Section 2.3 / Section 4): draining {} divisions (39-cycle divider)\n\
         1 divider                    : {:>9} cycles ({:.3} div/cycle)\n\
         1 divider + MEMO-TABLE iface : {:>9} cycles ({:.3} div/cycle, {} interface hits)\n\
         2 dividers                   : {:>9} cycles ({:.3} div/cycle)\n",
        farm.divisions,
        farm.single.cycles,
        farm.single.throughput(farm.divisions),
        farm.with_interface.cycles,
        farm.with_interface.throughput(farm.divisions),
        farm.with_interface.interface_hits,
        farm.dual.cycles,
        farm.dual.throughput(farm.divisions),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_unit_memoizes_like_the_divider() {
        let s = sqrt_extension(ExpConfig::quick());
        // Byte-valued pixels: at most 256 distinct square roots; locally
        // far fewer — solid hit ratios and a real speedup.
        assert!(s.hit_ratio > 0.3, "sqrt hit ratio {}", s.hit_ratio);
        assert!(s.speedup > 1.1, "sqrt speedup {}", s.speedup);
        assert!(s.fraction_enhanced > 0.2, "sqrt FE {}", s.fraction_enhanced);
    }

    #[test]
    fn pipeline_model_amplifies_division_wins() {
        let rows = pipeline_study(ExpConfig::quick()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.latency_model >= 1.0, "{}", r.name);
            assert!(r.pipeline_model >= 1.0, "{}", r.name);
        }
        // Division-heavy apps remove real stalls.
        let total_removed: u64 = rows.iter().map(|r| r.stalls_removed).sum();
        assert!(total_removed > 0);
    }

    #[test]
    fn divider_farm_interface_is_worth_a_second_divider() {
        let farm = divider_farm_study(ExpConfig::quick()).unwrap();
        assert!(farm.divisions > 100);
        assert!(
            farm.with_interface.cycles < farm.single.cycles,
            "the interface must help: {} vs {}",
            farm.with_interface.cycles,
            farm.single.cycles
        );
        // The table interface recovers a substantial share of what a full
        // second divider would buy (at a fraction of the area, §2.4).
        let gain_interface =
            farm.single.cycles.saturating_sub(farm.with_interface.cycles) as f64;
        let gain_dual = farm.single.cycles.saturating_sub(farm.dual.cycles) as f64;
        assert!(
            gain_interface > 0.3 * gain_dual,
            "interface gain {gain_interface} vs dual-divider gain {gain_dual}"
        );
    }

    #[test]
    fn render_mentions_all_studies() {
        let s = render(ExpConfig::quick()).unwrap();
        assert!(s.contains("square-root"));
        assert!(s.contains("Pipeline integration"));
        assert!(s.contains("Divider farm"));
    }
}

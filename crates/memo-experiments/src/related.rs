//! Related-work comparison (§1.1): MEMO-TABLEs vs. the schemes the paper
//! positions itself against, on identical division streams from the MM
//! suite.
//!
//! * **Trivial-only detection** (Richardson): a front-end filter with no
//!   table at all — its "hit ratio" is the trivial fraction.
//! * **Reciprocal cache** (Oberman & Flynn): keyed by divisor only; hits
//!   are frequent but each still pays a multiply.
//! * **MEMO-TABLE** (this paper): keyed by both operands; hits complete
//!   in one cycle.
//!
//! The interesting economics: the reciprocal cache hits *more often*
//! (divisors repeat far more than (dividend, divisor) pairs) but saves
//! *less per hit*, so which scheme wins depends on the fmul/fdiv latency
//! gap — quantified here through the same Amdahl SE formula used in §3.3.

use memo_sim::{amdahl, CpuModel};
use memo_table::baselines::ReciprocalCache;
use memo_table::{trivial_result, MemoConfig, MemoTable, Memoizer, OpKind};

use crate::figures::sample_traces;
use crate::format::{ratio, TextTable};
use crate::{ExpConfig, ExperimentError};

/// One scheme's results on the pooled division stream.
#[derive(Debug, Clone, Copy)]
pub struct SchemeResult {
    /// Scheme label.
    pub label: &'static str,
    /// Fraction of divisions served by the scheme's fast path.
    pub hit_ratio: f64,
    /// *Speedup Enhanced* of the division unit under this scheme
    /// (`dc → 1` cycle for memo hits, `dc → fmul` cycles for reciprocal
    /// hits, `dc → trivial latency` for trivial detections).
    pub unit_speedup: f64,
}

/// Compare the three schemes on the sample applications' divisions,
/// using `cpu`'s latencies for the economics.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn compare_division_schemes(
    cfg: ExpConfig,
    cpu: CpuModel,
) -> Result<Vec<SchemeResult>, ExperimentError> {
    // Pool the division stream of the five sample apps, replayed from the
    // shared recordings in app-major, corpus order.
    let traces = sample_traces(cfg)?;
    let divisions: Vec<_> = traces
        .iter()
        .flat_map(|app_traces| app_traces.iter())
        .flat_map(|trace| trace.iter())
        .filter(|op| op.kind() == OpKind::FpDiv)
        .collect();

    let dc = f64::from(cpu.latency(OpKind::FpDiv));
    let mc = f64::from(cpu.latency(OpKind::FpMul));
    let total = divisions.len() as f64;

    // Scheme 1: trivial-only detection.
    let trivial_hits =
        divisions.iter().filter(|op| trivial_result(op).is_some()).count() as f64;
    let trivial_hr = trivial_hits / total;
    // Detected trivials complete in one cycle.
    let trivial_se = dc / ((1.0 - trivial_hr) * dc + trivial_hr);

    // Scheme 2: reciprocal cache (same 32-entry 4-way budget).
    let mut recip = ReciprocalCache::new(32, 4);
    for op in &divisions {
        if let memo_table::Op::FpDiv(a, b) = *op {
            let _ = recip.divide(a, b);
        }
    }
    let recip_hr = recip.stats().lookup_hit_ratio();
    // A reciprocal hit still pays the multiplier's latency.
    let recip_se = dc / ((1.0 - recip_hr) * dc + recip_hr * mc);

    // Scheme 3: the MEMO-TABLE (paper default: trivials excluded).
    let mut memo = MemoTable::new(MemoConfig::paper_default());
    for &op in &divisions {
        memo.execute(op);
    }
    let memo_hr = memo.hit_ratio();
    let memo_se = amdahl::speedup_enhanced(dc, memo_hr);

    // Scheme 4: MEMO-TABLE with the integrated trivial detector (the
    // paper's best configuration, Table 9 "intgr").
    let mut memo_intgr = MemoTable::new(
        MemoConfig::builder(32)
            .trivial(memo_table::TrivialPolicy::Integrate)
            .build()
            .expect("valid"),
    );
    for &op in &divisions {
        memo_intgr.execute(op);
    }
    let intgr_hr = memo_intgr.hit_ratio();
    let intgr_se = amdahl::speedup_enhanced(dc, intgr_hr);

    Ok(vec![
        SchemeResult {
            label: "trivial-only detection",
            hit_ratio: trivial_hr,
            unit_speedup: trivial_se,
        },
        SchemeResult {
            label: "reciprocal cache 32/4",
            hit_ratio: recip_hr,
            unit_speedup: recip_se,
        },
        SchemeResult { label: "MEMO-TABLE 32/4", hit_ratio: memo_hr, unit_speedup: memo_se },
        SchemeResult {
            label: "MEMO-TABLE 32/4 + intgr trivials",
            hit_ratio: intgr_hr,
            unit_speedup: intgr_se,
        },
    ])
}

/// Render the comparison for the fast and slow FPU profiles.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let mut out = String::from(
        "Related-work comparison (Section 1.1): division acceleration schemes\n\
         on the pooled division stream of the five sample MM applications\n\n",
    );
    for cpu in [CpuModel::paper_fast(), CpuModel::paper_slow()] {
        let mut t = TextTable::new(&["scheme", "hit ratio", "division-unit speedup"]);
        for r in compare_division_schemes(cfg, cpu)? {
            t.row(vec![
                r.label.to_string(),
                ratio(Some(r.hit_ratio)),
                format!("{:.2}x", r.unit_speedup),
            ]);
        }
        out.push_str(&format!("{} ({}-cycle divider):\n{}\n", cpu.name, cpu.fp_div, t.render()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_cache_hits_more_often_than_memo_table() {
        // Divisors repeat far more than full operand pairs.
        let rows = compare_division_schemes(ExpConfig::quick(), CpuModel::paper_slow()).unwrap();
        let recip = rows[1];
        let memo = rows[2];
        assert!(
            recip.hit_ratio > memo.hit_ratio,
            "reciprocal {:.2} vs memo {:.2}",
            recip.hit_ratio,
            memo.hit_ratio
        );
    }

    #[test]
    fn memo_table_stays_competitive_despite_fewer_hits() {
        // Each memo hit saves dc−1 cycles; each reciprocal hit only dc−mc.
        // On the slow profile (5 vs 39 cycles) the memo table's per-hit
        // advantage keeps it within reach or ahead.
        let rows = compare_division_schemes(ExpConfig::quick(), CpuModel::paper_slow()).unwrap();
        let trivial = rows[0];
        let memo = rows[2];
        assert!(memo.unit_speedup > trivial.unit_speedup, "memoing beats trivial-only");
        assert!(memo.unit_speedup > 1.1);
    }

    #[test]
    fn all_schemes_report_valid_ratios() {
        for cpu in [CpuModel::paper_fast(), CpuModel::paper_slow()] {
            for r in compare_division_schemes(ExpConfig::quick(), cpu).unwrap() {
                assert!((0.0..=1.0).contains(&r.hit_ratio), "{}", r.label);
                assert!(r.unit_speedup >= 1.0 - 1e-9, "{}", r.label);
            }
        }
    }

    #[test]
    fn render_lists_all_schemes() {
        let s = render(ExpConfig::quick()).unwrap();
        assert!(s.contains("trivial-only"));
        assert!(s.contains("reciprocal"));
        assert!(s.contains("MEMO-TABLE"));
    }
}

//! Region memoization: the paper's per-unit memoing generalized to
//! whole basic blocks (crate `memo-region`), evaluated over ISA-level
//! proxies of all 18 MM + 19 sci kernels.
//!
//! Each kernel is represented by a small assembly program with the same
//! value-locality character the paper measured: a load → pure arithmetic
//! chain → store loop, with MM inputs quantized to a handful of distinct
//! values (images are low-entropy) and sci inputs effectively unique.
//! The pure chain between the load and the store is exactly what the
//! region detector finds, so region hit ratios track input reuse the way
//! the paper's per-unit hit ratios do — high for MM, near zero for sci.
//!
//! Three sections ride on the same machinery:
//!
//! - a per-kernel table comparing region hit ratio and speedup against
//!   the per-unit memoized machine on the identical instruction stream;
//! - a differential transparency check proving final architectural state
//!   (all registers, all memory, retired count, exit reason) bit-exact
//!   with the region table on vs. off, at every swept geometry and
//!   protection policy;
//! - a fault-injection demo showing that parity/SEC-DED/verify-on-hit
//!   keep the transparency guarantee under payload strikes while an
//!   unprotected table silently corrupts.

use memo_isa::{assemble, Cpu, IsaError, Program};
use memo_region::{run_with_regions, RegionConfig, RegionIndex, RegionTable};
use memo_sim::{CpuModel, CycleAccountant, MemoryHierarchy, NullSink};
use memo_table::rng::SplitMix64;
use memo_table::{Assoc, FaultConfig, Protection};
use memo_workloads::{mm, sci};

use crate::error::ExperimentError;
use crate::fault_tolerance::faulty_bank;
use crate::format::{frac3, TextTable};
use crate::{env, parallel, ExpConfig};

/// Dynamic-instruction budget per proxy run (far above any proxy's need).
const FUEL: u64 = 50_000_000;

/// Fault rate for the protection demo, per matched probe.
const DEMO_FAULT_RATE: f64 = 0.1;

/// An ISA-level proxy for one kernel: the program plus its input image.
struct Proxy {
    name: &'static str,
    suite: &'static str,
    program: Program,
    data: Vec<f64>,
}

impl Proxy {
    /// A machine with the proxy's inputs written at address 0 and room
    /// for the outputs behind them.
    fn fresh_cpu(&self) -> Cpu {
        let mut cpu = Cpu::new(self.data.len() * 16 + 64);
        for (i, &v) in self.data.iter().enumerate() {
            cpu.write_f64(i as u64 * 8, v).expect("input fits the allocated memory");
        }
        cpu
    }
}

/// Generate the proxy for one kernel. The arithmetic chain (ops, constants,
/// length) and the input distribution derive deterministically from the
/// kernel name, so every run of every binary sees the same programs.
fn proxy(name: &'static str, suite: &'static str, elems: usize, distinct: Option<u64>) -> Proxy {
    let mut rng = SplitMix64::new(0x7e61_0a11).split(name);
    let c8 = 0.5 + rng.next_f64() * 3.0;
    let c9 = 1.0 + rng.next_f64() * 3.0;
    let chain_len = 3 + rng.next_below(4);
    let mut chain = String::new();
    let mut cur = 1u8; // f1 holds the loaded element
    for _ in 0..chain_len {
        let dst = 2 + rng.next_below(5) as u8; // f2..f6
        let line = match rng.next_below(6) {
            0 => format!("fmul f{dst}, f{cur}, f8"),
            1 => format!("fadd f{dst}, f{cur}, f9"),
            2 => format!("fsub f{dst}, f{cur}, f8"),
            3 => format!("fdiv f{dst}, f{cur}, f9"),
            4 => format!("fsqrt f{dst}, f{cur}"),
            _ => format!("fmul f{dst}, f{cur}, f{cur}"),
        };
        chain.push_str("    ");
        chain.push_str(&line);
        chain.push('\n');
        cur = dst;
    }
    let out_base = elems * 8;
    let src = format!(
        "    li r1, 0\n    li r2, {elems}\n    li r3, 0\n    li r4, {out_base}\n    \
         lif f8, {c8:?}\n    lif f9, {c9:?}\n\
         loop:\n    ldf f1, r3, 0\n{chain}    stf f{cur}, r4, 0\n    \
         addi r3, r3, 8\n    addi r4, r4, 8\n    addi r1, r1, 1\n    \
         blt r1, r2, loop\n    halt\n"
    );
    let program = assemble(&src).expect("generated proxy assembles");
    let base = rng.next_f64() * 4.0;
    let step = 0.25 + rng.next_f64();
    let data = (0..elems)
        .map(|_| match distinct {
            // Multi-media inputs: pixels quantized to a few levels.
            Some(levels) => base + step * rng.next_below(levels) as f64,
            // Scientific inputs: effectively unique doubles.
            None => rng.next_f64() * 100.0,
        })
        .collect();
    Proxy { name, suite, program, data }
}

/// Proxies for all 18 MM + 19 sci kernels at this config's problem size.
fn proxies(cfg: ExpConfig) -> Vec<Proxy> {
    let mm_elems = (1024 / cfg.image_scale).max(64);
    let sci_elems = (cfg.sci_n * 8).max(64);
    let mut out = Vec::new();
    for app in mm::apps() {
        let mut rng = SplitMix64::new(0x1e5e15).split(app.name);
        let levels = 4u64 << rng.next_below(3); // 4, 8 or 16 pixel levels
        out.push(proxy(app.name, "mm", mm_elems, Some(levels)));
    }
    for app in sci::all_apps() {
        out.push(proxy(app.name, "sci", sci_elems, None));
    }
    out
}

fn isa_error(app: &str, e: IsaError) -> ExperimentError {
    ExperimentError::Transparency { app: app.to_string(), detail: format!("proxy run failed: {e}") }
}

/// Assert every piece of architectural state is bit-identical.
fn compare_state(
    app: &str,
    context: &str,
    plain: &Cpu,
    memoized: &Cpu,
) -> Result<(), ExperimentError> {
    let fail = |detail: String| {
        Err(ExperimentError::Transparency { app: app.to_string(), detail: format!("{context}: {detail}") })
    };
    for r in 0..32 {
        if plain.reg(r) != memoized.reg(r) {
            return fail(format!("r{r} {} != {}", plain.reg(r), memoized.reg(r)));
        }
        if plain.freg(r).to_bits() != memoized.freg(r).to_bits() {
            return fail(format!("f{r} {:?} != {:?}", plain.freg(r), memoized.freg(r)));
        }
    }
    if plain.memory() != memoized.memory() {
        let at = plain
            .memory()
            .iter()
            .zip(memoized.memory())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return fail(format!("memory diverges at byte {at}"));
    }
    if plain.retired() != memoized.retired() {
        return fail(format!("retired {} != {}", plain.retired(), memoized.retired()));
    }
    Ok(())
}

/// One kernel's measurements at the default (env-knob) region table.
pub struct KernelRegions {
    /// Kernel name.
    pub name: &'static str,
    /// `"mm"` or `"sci"`.
    pub suite: &'static str,
    /// Statically detected regions in the proxy.
    pub static_regions: usize,
    /// Dynamic instructions inside entered regions / retired instructions.
    pub coverage: f64,
    /// Region-table hits over region entries.
    pub hit_ratio: f64,
    /// Speedup of the region-memoized machine over the baseline.
    pub region_speedup: f64,
    /// Speedup of the paper's per-unit memoized machine on the same run.
    pub unit_speedup: f64,
}

fn survey_one(proxy: &Proxy, max_len: usize, entries: usize) -> Result<KernelRegions, ExperimentError> {
    // The per-unit machine: one plain run through a CycleAccountant with
    // the paper's slow-latency model and unprotected memo bank.
    let mut acc = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        faulty_bank(Protection::None, 0.0, 0),
    );
    let mut plain = proxy.fresh_cpu();
    plain.run(&proxy.program, &mut acc, FUEL).map_err(|e| isa_error(proxy.name, e))?;
    let report = acc.report();
    let baseline = report.baseline().total();
    let unit_speedup = report.speedup_measured();

    // The region machine: identical initial state, identical stream.
    let index = RegionIndex::new(&proxy.program, max_len);
    let mut table =
        RegionTable::new(RegionConfig::new(entries)).expect("entries are a power of two >= 8");
    let mut memoized = proxy.fresh_cpu();
    let (_, stats) = run_with_regions(
        &mut memoized,
        &proxy.program,
        &index,
        &mut table,
        &CpuModel::paper_slow(),
        &mut NullSink,
        FUEL,
    )
    .map_err(|e| isa_error(proxy.name, e))?;
    compare_state(proxy.name, "default table", &plain, &memoized)?;

    Ok(KernelRegions {
        name: proxy.name,
        suite: proxy.suite,
        static_regions: index.regions().len(),
        coverage: stats.covered as f64 / memoized.retired() as f64,
        hit_ratio: stats.hit_ratio().unwrap_or(0.0),
        region_speedup: stats.speedup(baseline),
        unit_speedup,
    })
}

/// Measure every kernel at the env-knob region table (also verifying
/// state transparency along the way).
///
/// # Errors
///
/// [`ExperimentError::Transparency`] if any proxy's final state diverges.
pub fn survey(cfg: ExpConfig) -> Result<Vec<KernelRegions>, ExperimentError> {
    let max_len = env::region_max_len();
    let entries = env::region_table_entries();
    parallel::par_map(proxies(cfg), move |p| survey_one(&p, max_len, entries))
        .into_iter()
        .collect()
}

/// What the differential checker proved.
pub struct RegionTransparency {
    /// Kernels checked (all 37).
    pub kernels: usize,
    /// Table configurations checked per kernel.
    pub configs: usize,
}

/// The sweep grid the checker runs: three sizes by three associativities
/// unprotected, plus every protection policy at the default geometry.
fn checker_grid() -> Vec<(usize, Assoc, Protection)> {
    let mut grid = Vec::new();
    for entries in [16, 64, 256] {
        for assoc in [Assoc::DirectMapped, Assoc::Ways(4), Assoc::Full] {
            grid.push((entries, assoc, Protection::None));
        }
    }
    for protection in
        [Protection::ParityDetect, Protection::EccSecDed, Protection::VerifyOnHit { verify_cycles: 4 }]
    {
        grid.push((64, Assoc::Ways(4), protection));
    }
    grid
}

/// Differential transparency: run every kernel plain and region-memoized
/// at every grid point, demanding bit-identical final state.
///
/// # Errors
///
/// [`ExperimentError::Transparency`] naming the first diverging kernel
/// and configuration.
pub fn check_transparency(cfg: ExpConfig) -> Result<RegionTransparency, ExperimentError> {
    let max_len = env::region_max_len();
    let grid = checker_grid();
    let configs = grid.len();
    let all = proxies(cfg);
    let kernels = all.len();
    parallel::par_map(all, move |proxy| -> Result<(), ExperimentError> {
        let mut plain = proxy.fresh_cpu();
        plain.run(&proxy.program, &mut NullSink, FUEL).map_err(|e| isa_error(proxy.name, e))?;
        let index = RegionIndex::new(&proxy.program, max_len);
        for &(entries, assoc, protection) in &grid {
            let mut table = RegionTable::new(
                RegionConfig::new(entries).assoc(assoc).protection(protection),
            )
            .expect("grid geometries are valid");
            let mut memoized = proxy.fresh_cpu();
            run_with_regions(
                &mut memoized,
                &proxy.program,
                &index,
                &mut table,
                &CpuModel::paper_slow(),
                &mut NullSink,
                FUEL,
            )
            .map_err(|e| isa_error(proxy.name, e))?;
            let context = format!("{entries} entries, {assoc:?}, {protection}");
            compare_state(proxy.name, &context, &plain, &memoized)?;
        }
        Ok(())
    })
    .into_iter()
    .collect::<Result<(), _>>()?;
    Ok(RegionTransparency { kernels, configs })
}

/// One row of the fault-injection demo.
pub struct FaultDemoRow {
    /// Protection policy label.
    pub protection: Protection,
    /// Counters from the struck table.
    pub injected: u64,
    /// Faults the policy caught (entry invalidated, fell back to execution).
    pub detected: u64,
    /// Faults SEC-DED repaired in place.
    pub corrected: u64,
    /// Faults served without detection.
    pub silent: u64,
    /// Whether final state still matched plain execution.
    pub transparent: bool,
}

/// Strike the region table of one high-reuse proxy and show which
/// policies keep the transparency guarantee. Detecting policies must;
/// `Protection::None` is expected to corrupt silently.
#[must_use]
pub fn fault_demo(cfg: ExpConfig) -> Vec<FaultDemoRow> {
    let max_len = env::region_max_len();
    let p = proxies(cfg).into_iter().next().expect("at least one proxy");
    let mut plain = p.fresh_cpu();
    plain.run(&p.program, &mut NullSink, FUEL).expect("proxy halts");
    Protection::ALL
        .iter()
        .map(|&protection| {
            let mut table = RegionTable::new(
                RegionConfig::new(64)
                    .protection(protection)
                    .faults(FaultConfig::single_bit(977, DEMO_FAULT_RATE)),
            )
            .expect("demo geometry is valid");
            // Two passes through one table: the first fills it, the
            // second takes hits under strikes. A corrupt payload served
            // by an unprotected table can steer the program anywhere —
            // even into a memory fault — so a failed run is just another
            // (extreme) form of lost transparency, not a harness error.
            let index = RegionIndex::new(&p.program, max_len);
            let mut memoized = p.fresh_cpu();
            let mut ran = Ok(());
            for pass in 0..2 {
                if pass == 1 {
                    memoized = p.fresh_cpu();
                }
                ran = run_with_regions(
                    &mut memoized,
                    &p.program,
                    &index,
                    &mut table,
                    &CpuModel::paper_slow(),
                    &mut NullSink,
                    FUEL,
                )
                .map(|_| ());
                if ran.is_err() {
                    break;
                }
            }
            let transparent =
                ran.is_ok() && compare_state(p.name, "fault demo", &plain, &memoized).is_ok();
            let s = table.stats();
            FaultDemoRow {
                protection,
                injected: s.faults_injected,
                detected: s.faults_detected,
                corrected: s.faults_corrected,
                silent: s.faults_silent,
                transparent,
            }
        })
        .collect()
}

fn geomean(xs: impl Iterator<Item = f64>) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            sum += x.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (sum / f64::from(n)).exp())
}

/// Render the full region-memoization report.
///
/// # Errors
///
/// [`ExperimentError::Transparency`] if any differential check fails.
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let rows = survey(cfg)?;
    let proof = check_transparency(cfg)?;
    let demo = fault_demo(cfg);
    let entries = env::region_table_entries();
    let max_len = env::region_max_len();

    let mut out = String::new();
    out.push_str(&format!(
        "Region memoization: basic-block bypass keyed on (entry pc, live-in values)\n\
         Region table: {entries} entries, 4-way LRU, regions up to {max_len} instructions.\n\
         Each kernel runs as an ISA-level proxy (load -> pure arithmetic chain -> store);\n\
         MM inputs are quantized to 4-16 pixel levels, sci inputs are effectively unique,\n\
         so region reuse tracks the value locality the paper measured per unit.\n\
         'region' speedup bypasses whole blocks; 'per-unit' memoizes single operations\n\
         on the identical instruction stream (paper_slow latencies).\n\n"
    ));

    let mut t = TextTable::new(&[
        "app", "suite", "regions", "coverage", "hit ratio", "region speedup", "per-unit speedup",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            r.suite.to_string(),
            r.static_regions.to_string(),
            frac3(r.coverage),
            frac3(r.hit_ratio),
            format!("{:.2}x", r.region_speedup),
            format!("{:.2}x", r.unit_speedup),
        ]);
    }
    out.push_str(&t.render());

    for suite in ["mm", "sci"] {
        let region =
            geomean(rows.iter().filter(|r| r.suite == suite).map(|r| r.region_speedup));
        let unit = geomean(rows.iter().filter(|r| r.suite == suite).map(|r| r.unit_speedup));
        out.push_str(&format!(
            "\n{suite} geomean: region {}, per-unit {}",
            region.map_or_else(|| "-".to_string(), |v| format!("{v:.2}x")),
            unit.map_or_else(|| "-".to_string(), |v| format!("{v:.2}x")),
        ));
    }

    out.push_str(&format!(
        "\n\nFault injection on the region table ({} proxy, {:.0}% strike rate per matched probe):\n\n",
        rows[0].name,
        DEMO_FAULT_RATE * 100.0
    ));
    let mut t = TextTable::new(&["protection", "injected", "detected", "corrected", "silent", "state"]);
    for row in &demo {
        t.row(vec![
            row.protection.to_string(),
            row.injected.to_string(),
            row.detected.to_string(),
            row.corrected.to_string(),
            row.silent.to_string(),
            if row.transparent { "bit-identical".to_string() } else { "CORRUPTED (expected for none)".to_string() },
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&format!(
        "\nDifferential transparency: {} kernels x {} table configs, final architectural\n\
         state (32 iregs, 32 fregs bit-exact, all memory, retired count) identical to\n\
         plain execution at every point.\n",
        proof.kernels, proof.configs
    ));
    Ok(out)
}

/// The per-kernel measurements as a JSON document for the CI gate
/// (`BENCH_region.json`): hand-rolled, no dependencies, stable keys.
///
/// # Errors
///
/// [`ExperimentError::Transparency`] if any differential check fails —
/// meaning the gate never sees `"transparency_ok": true` unless the
/// checker really passed.
pub fn bench_json(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let rows = survey(cfg)?;
    let proof = check_transparency(cfg)?;
    let mut out = String::from("{\n");
    out.push_str("  \"transparency_ok\": true,\n");
    out.push_str(&format!("  \"kernels_checked\": {},\n", proof.kernels));
    out.push_str(&format!("  \"configs_checked\": {},\n", proof.configs));
    for suite in ["mm", "sci"] {
        let g = geomean(rows.iter().filter(|r| r.suite == suite).map(|r| r.region_speedup))
            .unwrap_or(0.0);
        out.push_str(&format!("  \"{suite}_geomean_region_speedup\": {g:.4},\n"));
    }
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"regions\": {}, \"coverage\": {:.4}, \
             \"hit_ratio\": {:.4}, \"region_speedup\": {:.4}, \"unit_speedup\": {:.4}}}{}\n",
            r.name,
            r.suite,
            r.static_regions,
            r.coverage,
            r.hit_ratio,
            r.region_speedup,
            r.unit_speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig::quick()
    }

    #[test]
    fn proxies_cover_both_suites_and_assemble() {
        let all = proxies(cfg());
        assert_eq!(all.len(), 18 + 19);
        assert_eq!(all.iter().filter(|p| p.suite == "mm").count(), 18);
        // Every proxy runs to completion and detects at least one region.
        for p in &all {
            let mut cpu = p.fresh_cpu();
            cpu.run(&p.program, &mut NullSink, FUEL).expect("proxy halts");
            assert!(
                !RegionIndex::new(&p.program, 16).regions().is_empty(),
                "{} has no regions",
                p.name
            );
        }
    }

    #[test]
    fn mm_reuses_and_sci_does_not() {
        let rows = survey(cfg()).expect("survey is transparent");
        let mm_hits = geomean(rows.iter().filter(|r| r.suite == "mm").map(|r| r.hit_ratio + 1e-9))
            .unwrap();
        let sci_speedup =
            geomean(rows.iter().filter(|r| r.suite == "sci").map(|r| r.region_speedup)).unwrap();
        let mm_speedup =
            geomean(rows.iter().filter(|r| r.suite == "mm").map(|r| r.region_speedup)).unwrap();
        // Quantized MM inputs make the arithmetic regions hit; unique sci
        // inputs leave probes unpaid — the paper's MM >> sci story.
        assert!(mm_hits > 0.3, "mm pooled hit ratio too low: {mm_hits}");
        assert!(mm_speedup > 1.0, "mm region speedup not profitable: {mm_speedup}");
        assert!(mm_speedup > sci_speedup, "{mm_speedup} vs {sci_speedup}");
    }

    #[test]
    fn transparency_holds_over_the_grid() {
        let proof = check_transparency(cfg()).expect("bit-identical state everywhere");
        assert_eq!(proof.kernels, 37);
        assert_eq!(proof.configs, 12);
    }

    #[test]
    fn fault_demo_keeps_detecting_policies_transparent() {
        let demo = fault_demo(cfg());
        assert_eq!(demo.len(), 4);
        for row in &demo {
            assert!(row.injected > 0, "{}: no strikes landed", row.protection);
            if row.protection != Protection::None {
                assert!(row.transparent, "{} must stay transparent", row.protection);
                assert_eq!(row.silent, 0, "{} let faults through", row.protection);
            }
        }
    }

    #[test]
    fn bench_json_is_well_formed_enough_for_the_gate() {
        let json = bench_json(cfg()).expect("renders");
        assert!(json.contains("\"transparency_ok\": true"));
        assert!(json.contains("\"kernels_checked\": 37"));
        assert!(json.contains("\"vspatial\""));
        assert!(json.contains("\"mgrid\""));
        // Balanced braces/brackets (cheap structural check, no parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

//! Plain-text table rendering in the paper's style.

/// Format a hit ratio the way the paper prints it: `.39`, `1.0`, or `-`
/// for an absent operation.
#[must_use]
pub fn ratio(r: Option<f64>) -> String {
    match r {
        None => "-".to_string(),
        Some(v) if v >= 0.995 => "1.0".to_string(),
        Some(v) => {
            let s = format!("{v:.2}");
            // ".39" rather than "0.39", as in the paper's tables.
            s.strip_prefix('0').unwrap_or(&s).to_string()
        }
    }
}

/// Format a fraction with three decimals (`FE` columns).
#[must_use]
pub fn frac3(v: f64) -> String {
    let s = format!("{v:.3}");
    s.strip_prefix('0').unwrap_or(&s).to_string()
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned, like the paper's tables).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", cells[i], w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting_matches_paper_style() {
        assert_eq!(ratio(None), "-");
        assert_eq!(ratio(Some(0.39)), ".39");
        assert_eq!(ratio(Some(0.999)), "1.0");
        assert_eq!(ratio(Some(0.0)), ".00");
        assert_eq!(frac3(0.036), ".036");
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["app", "fdiv"]);
        t.row(vec!["vspatial".into(), ".94".into()]);
        t.row(vec!["x".into(), "1.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("app"));
        assert!(lines[2].starts_with("vspatial"));
        // Right alignment of the numeric column.
        assert!(lines[2].ends_with(".94"));
        assert!(lines[3].ends_with("1.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

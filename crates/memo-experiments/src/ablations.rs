//! Ablations of the MEMO-TABLE design choices that the paper fixes
//! without measurement — the index hash, the replacement policy,
//! commutative dual-order probing (§2.2), and the shared multi-ported
//! table vs. private per-unit tables (§2.3, also named as future work in
//! §4).

use std::sync::Arc;

use memo_sim::{Event, EventSink, MemoBank};
use memo_table::{
    HashScheme, MemoConfig, MemoTable, Memoizer, OpKind, Replacement, SharedMemoTable,
};
use memo_workloads::suite::{replay_stats_fused, SweepSpec};

use crate::figures::{sample_traces, OpTrace};
use crate::format::{ratio, TextTable};
use crate::{parallel, ExpConfig, ExperimentError};

/// Hit ratios of one configuration, averaged over the five sample apps.
#[derive(Debug, Clone, Copy)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: &'static str,
    /// Average fmul hit ratio.
    pub fp_mul: f64,
    /// Average fdiv hit ratio.
    pub fp_div: f64,
}

fn replay_average(traces: &[Arc<Vec<OpTrace>>], table_cfg: MemoConfig, kind: OpKind) -> f64 {
    // Each ablation point differs in exactly the policy axis under
    // study, so no two share a pass; the helper replays each
    // single-point grid directly (and counts it as such).
    let spec = [SweepSpec::finite(table_cfg, &[kind])];
    let ratios: Vec<f64> = traces
        .iter()
        .map(|app_traces| {
            replay_stats_fused(app_traces.iter(), &spec)[0]
                .stats(kind)
                .expect("spec attaches a table to kind")
                .hit_ratio(table_cfg.trivial())
        })
        .collect();
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Replay the sample traces against each labelled configuration in
/// parallel, keeping input order.
fn ablate(
    traces: &[Arc<Vec<OpTrace>>],
    configs: Vec<(&'static str, MemoConfig)>,
) -> Vec<AblationPoint> {
    parallel::par_map(configs, |(label, table_cfg)| AblationPoint {
        label,
        fp_mul: replay_average(traces, table_cfg, OpKind::FpMul),
        fp_div: replay_average(traces, table_cfg, OpKind::FpDiv),
    })
}

/// Ablate the index hash: the paper's XOR scheme vs. a multiply-fold mix.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn hash_schemes(cfg: ExpConfig) -> Result<Vec<AblationPoint>, ExperimentError> {
    let traces = sample_traces(cfg)?;
    let configs = [("paper XOR", HashScheme::PaperXor), ("fold-mix", HashScheme::FoldMix)]
        .into_iter()
        .map(|(label, hash)| {
            (label, MemoConfig::builder(32).hash(hash).build().expect("valid"))
        })
        .collect();
    Ok(ablate(&traces, configs))
}

/// Ablate the replacement policy within a set.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn replacement_policies(cfg: ExpConfig) -> Result<Vec<AblationPoint>, ExperimentError> {
    let traces = sample_traces(cfg)?;
    let configs = [
        ("LRU", Replacement::Lru),
        ("FIFO", Replacement::Fifo),
        ("random", Replacement::Random),
    ]
    .into_iter()
    .map(|(label, replacement)| {
        (label, MemoConfig::builder(32).replacement(replacement).build().expect("valid"))
    })
    .collect();
    Ok(ablate(&traces, configs))
}

/// Ablate commutative dual-order probing (§2.2) — multiplication only;
/// the fdiv column doubles as the control (it must not move).
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn commutative_probing(cfg: ExpConfig) -> Result<Vec<AblationPoint>, ExperimentError> {
    let traces = sample_traces(cfg)?;
    let configs = [("both orders", true), ("as-written order", false)]
        .into_iter()
        .map(|(label, commutative)| {
            (label, MemoConfig::builder(32).commutative(commutative).build().expect("valid"))
        })
        .collect();
    Ok(ablate(&traces, configs))
}

/// §2.3: two fp dividers. Compare (a) a private 32-entry table per
/// divider with round-robin dispatch, against (b) one shared, 2-ported
/// 32-entry table. Sharing lets one divider reuse the other's work.
#[derive(Debug, Clone, Copy)]
pub struct SharedVsPrivate {
    /// fdiv hit ratio with private per-unit tables.
    pub private_hit: f64,
    /// fdiv hit ratio with the shared multi-ported table.
    pub shared_hit: f64,
    /// Port conflicts observed by the shared table.
    pub port_conflicts: u64,
}

/// Run the shared-vs-private comparison over the sample applications.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn shared_vs_private(cfg: ExpConfig) -> Result<SharedVsPrivate, ExperimentError> {
    // The combined division stream of the sample apps, replayed from the
    // shared recordings in app-major, corpus order.
    let traces = sample_traces(cfg)?;
    let stream = traces
        .iter()
        .flat_map(|app_traces| app_traces.iter())
        .flat_map(|trace| trace.iter())
        .filter(|op| op.kind() == OpKind::FpDiv);

    // Private tables, round-robin dispatch.
    let mut unit0 = MemoTable::new(MemoConfig::paper_default());
    let mut unit1 = MemoTable::new(MemoConfig::paper_default());
    // Shared table with 2 ports.
    let shared = SharedMemoTable::new(MemoConfig::paper_default(), 2);
    let mut shared0 = shared.clone();
    let mut shared1 = shared.clone();

    let mut toggle = false;
    for op in stream {
        shared.begin_cycle();
        if toggle {
            unit0.execute(op);
            shared0.execute(op);
        } else {
            unit1.execute(op);
            shared1.execute(op);
        }
        toggle = !toggle;
    }

    let private_stats_hits = unit0.stats().table_hits + unit1.stats().table_hits;
    let private_lookups = unit0.stats().table_lookups + unit1.stats().table_lookups;
    let shared_stats = shared.stats_snapshot();
    Ok(SharedVsPrivate {
        private_hit: if private_lookups == 0 {
            0.0
        } else {
            private_stats_hits as f64 / private_lookups as f64
        },
        shared_hit: shared_stats.lookup_hit_ratio(),
        port_conflicts: shared.port_stats().conflicts,
    })
}

/// `MemoProbeSink`-style helper so ablation traces can also be collected
/// from cycle-level runs if needed.
#[derive(Debug)]
pub struct BankProbe(pub MemoBank);

impl EventSink for BankProbe {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.0.execute(op);
        }
    }
}

/// Render all ablations as one report.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let mut out = String::new();

    for (title, points) in [
        ("Ablation: index hash scheme (32-entry, 4-way)", hash_schemes(cfg)?),
        ("Ablation: replacement policy (32-entry, 4-way)", replacement_policies(cfg)?),
        ("Ablation: commutative dual-order probing (32-entry, 4-way)", commutative_probing(cfg)?),
    ] {
        let mut t = TextTable::new(&["configuration", "fmul", "fdiv"]);
        for p in points {
            t.row(vec![p.label.to_string(), ratio(Some(p.fp_mul)), ratio(Some(p.fp_div))]);
        }
        out.push_str(&format!("{title}\n{}\n", t.render()));
    }

    let s = shared_vs_private(cfg)?;
    out.push_str(&format!(
        "Ablation: dual dividers, shared vs private tables (Section 2.3)\n\
         private 32-entry per divider : fdiv hit {}\n\
         shared 2-ported 32-entry     : fdiv hit {}  ({} port conflicts)\n",
        ratio(Some(s.private_hit)),
        ratio(Some(s.shared_hit)),
        s.port_conflicts,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutative_probing_helps_multiplication_only() {
        let points = commutative_probing(ExpConfig::quick()).unwrap();
        let both = &points[0];
        let single = &points[1];
        assert!(both.fp_mul + 1e-9 >= single.fp_mul, "dual-order probing never hurts fmul");
        assert!(
            (both.fp_div - single.fp_div).abs() < 1e-12,
            "division is unaffected by commutativity"
        );
    }

    #[test]
    fn shared_table_beats_private_tables() {
        // One divider reuses work performed by the other (§2.3).
        let s = shared_vs_private(ExpConfig::quick()).unwrap();
        assert!(
            s.shared_hit > s.private_hit - 1e-9,
            "shared {} vs private {}",
            s.shared_hit,
            s.private_hit
        );
    }

    #[test]
    fn replacement_policies_are_all_functional() {
        let points = replacement_policies(ExpConfig::quick()).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.fp_div > 0.0, "{} produces hits", p.label);
        }
        // LRU is at least competitive with random on these workloads.
        let lru = points[0].fp_div;
        let random = points[2].fp_div;
        assert!(lru + 0.05 >= random, "LRU {lru} vs random {random}");
    }

    #[test]
    fn render_includes_all_sections(){
        let s = render(ExpConfig::quick()).unwrap();
        assert!(s.contains("index hash"));
        assert!(s.contains("replacement"));
        assert!(s.contains("commutative"));
        assert!(s.contains("shared vs private"));
    }
}

//! Table 1 — cycle times of leading microprocessors.
//!
//! Static data, but it anchors every speedup experiment: the latencies the
//! simulator charges come from these models.

use memo_sim::CpuModel;

use crate::format::TextTable;

/// The six processors of Table 1.
#[must_use]
pub fn models() -> [CpuModel; 6] {
    CpuModel::table1_models()
}

/// Render Table 1.
#[must_use]
pub fn render() -> String {
    let mut t = TextTable::new(&["processor", "multiplication", "division"]);
    for m in models() {
        t.row(vec![m.name.to_string(), m.fp_mul.to_string(), m.fp_div.to_string()]);
    }
    format!("Table 1: Cycle times of leading microprocessors\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_contains_all_rows() {
        let s = super::render();
        for name in ["Pentium Pro", "Alpha 21164", "MIPS R10000", "PPC 604e", "UltraSparc-II", "PA 8000"] {
            assert!(s.contains(name), "{name} missing");
        }
        assert!(s.contains("39")); // Pentium Pro division
        assert!(s.contains("22")); // UltraSPARC division
    }
}

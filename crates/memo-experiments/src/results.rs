//! Process-wide memoization of whole experiment results.
//!
//! The trace cache ([`crate::traces`]) makes every *replay* start from a
//! shared recording; this cache goes one level up and makes every
//! *experiment* compute once per `(experiment, ExpConfig)` pair. The
//! scorecard re-derives Tables 5–13 and Figures 2–4 to check the paper's
//! claims — inside one `all_experiments` process those tables were already
//! computed minutes earlier, and Tables 11–13 all reduce to the same
//! eighteen cycle reports. With this cache the re-derivations are clones,
//! not recomputations.
//!
//! Values are stored type-erased (`Box<dyn Any>`) under a static key, so
//! one map serves every result shape; the `(name, type)` pairing is fixed
//! at each call site, which makes the downcast infallible. Failed
//! experiments are cached too — every experiment is deterministic, so an
//! error would simply be recomputed into the same error.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::ExpConfig;

type Key = (&'static str, usize, usize);
type Cell = Arc<OnceLock<Box<dyn Any + Send + Sync>>>;

fn cache() -> &'static Mutex<HashMap<Key, Cell>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Cell>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Return the cached result of `name` at `cfg`, computing it on first
/// request. The outer map lock is held only to fetch the per-key cell;
/// `compute` runs under the per-key [`OnceLock`], so different experiments
/// can compute concurrently while the same experiment computes once.
pub(crate) fn cached<T: Clone + Send + Sync + 'static>(
    name: &'static str,
    cfg: ExpConfig,
    compute: impl FnOnce() -> T,
) -> T {
    let cell = {
        let mut map = cache().lock().expect("result cache poisoned");
        Arc::clone(map.entry((name, cfg.image_scale, cfg.sci_n)).or_default())
    };
    cell.get_or_init(|| Box::new(compute()))
        .downcast_ref::<T>()
        .expect("result cache key reused with a different type")
        .clone()
}

/// Forget every cached experiment result (recorded traces stay shared).
/// For measurements that must recompute — the equivalence tests clear the
/// cache between serial and parallel renders so both really run.
pub fn clear() {
    cache().lock().expect("result cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not three: `clear()` wipes the whole process-wide map, so
    // exercising it concurrently with the reuse assertions would race.
    #[test]
    fn caches_per_key_and_clear_forgets() {
        let cfg = ExpConfig { image_scale: 9999, sci_n: 1 };
        let mut runs = 0;
        let a: Vec<u32> = cached("results-test", cfg, || {
            runs += 1;
            vec![1, 2, 3]
        });
        let b: Vec<u32> = cached("results-test", cfg, || {
            runs += 1;
            unreachable!("cached result must be reused")
        });
        assert_eq!(runs, 1);
        assert_eq!(a, b);

        let a: u64 = cached("results-test-cfg", ExpConfig { image_scale: 9998, sci_n: 1 }, || 5);
        let b: u64 = cached("results-test-cfg", ExpConfig { image_scale: 9997, sci_n: 1 }, || 7);
        assert_eq!((a, b), (5, 7));

        clear();
        let again: u64 = cached("results-test", cfg, || 2);
        assert_eq!(again, 2);
    }
}

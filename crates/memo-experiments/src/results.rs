//! Process-wide memoization of whole experiment results.
//!
//! The trace cache ([`crate::traces`]) makes every *replay* start from a
//! shared recording; this cache goes one level up and makes every
//! *experiment* compute once per `(experiment, ExpConfig)` pair. The
//! scorecard re-derives Tables 5–13 and Figures 2–4 to check the paper's
//! claims — inside one `all_experiments` process those tables were already
//! computed minutes earlier, and Tables 11–13 all reduce to the same
//! eighteen cycle reports. With this cache the re-derivations are clones,
//! not recomputations.
//!
//! Values are stored type-erased (`Box<dyn Any>`) under a static key, so
//! one map serves every result shape; the `(name, type)` pairing is fixed
//! at each call site, which makes the downcast infallible. Failed
//! experiments are cached too — every experiment is deterministic, so an
//! error would simply be recomputed into the same error.

use std::any::Any;
use std::sync::OnceLock;

use crate::cache::{CacheStats, ShardedLru};
use crate::ExpConfig;

type Key = (&'static str, usize, usize);
type Stored = Box<dyn Any + Send + Sync>;

fn cache() -> &'static ShardedLru<Key, Stored> {
    static CACHE: OnceLock<ShardedLru<Key, Stored>> = OnceLock::new();
    // Unbounded: every key is a paper artifact that will be re-requested,
    // so eviction would only trade memory for recomputation.
    CACHE.get_or_init(|| ShardedLru::unbounded(8))
}

/// Return the cached result of `name` at `cfg`, computing it on first
/// request. Sharding, recency, and single-flight deduplication come from
/// [`ShardedLru`]: different experiments compute concurrently while
/// concurrent requests for the same experiment compute once.
pub(crate) fn cached<T: Clone + Send + Sync + 'static>(
    name: &'static str,
    cfg: ExpConfig,
    compute: impl FnOnce() -> T,
) -> T {
    cache()
        .get_or_compute(&(name, cfg.image_scale, cfg.sci_n), || Box::new(compute()) as Stored)
        .downcast_ref::<T>()
        .expect("result cache key reused with a different type")
        .clone()
}

/// Forget every cached experiment result (recorded traces stay shared).
/// For measurements that must recompute — the equivalence tests clear the
/// cache between serial and parallel renders so both really run.
pub fn clear() {
    cache().clear();
}

/// Snapshot the experiment-cache counters (exposed by `memo-serve`'s
/// `/metrics` alongside its own response-cache counters).
#[must_use]
pub fn stats() -> CacheStats {
    cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not three: `clear()` wipes the whole process-wide map, so
    // exercising it concurrently with the reuse assertions would race.
    #[test]
    fn caches_per_key_and_clear_forgets() {
        let cfg = ExpConfig { image_scale: 9999, sci_n: 1 };
        let mut runs = 0;
        let a: Vec<u32> = cached("results-test", cfg, || {
            runs += 1;
            vec![1, 2, 3]
        });
        let b: Vec<u32> = cached("results-test", cfg, || {
            runs += 1;
            unreachable!("cached result must be reused")
        });
        assert_eq!(runs, 1);
        assert_eq!(a, b);

        let a: u64 = cached("results-test-cfg", ExpConfig { image_scale: 9998, sci_n: 1 }, || 5);
        let b: u64 = cached("results-test-cfg", ExpConfig { image_scale: 9997, sci_n: 1 }, || 7);
        assert_eq!((a, b), (5, 7));

        clear();
        let again: u64 = cached("results-test", cfg, || 2);
        assert_eq!(again, 2);
    }
}

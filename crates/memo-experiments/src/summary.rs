//! The reproduction scorecard: every headline claim of the paper,
//! evaluated live, with a ✓/✗ verdict — the machine-checked version of
//! `EXPERIMENTS.md`.

use memo_table::OpKind;

use crate::format::TextTable;
use crate::{figures, hits, mantissa, speedup, trivial, ExpConfig, ExperimentError};

/// One claim's evaluation.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Where in the paper the claim lives.
    pub source: &'static str,
    /// The claim, in one sentence.
    pub statement: &'static str,
    /// The measured evidence.
    pub evidence: String,
    /// Whether the measurement supports the claim.
    pub holds: bool,
}

/// Evaluate the full scorecard (runs the underlying experiments; several
/// seconds at quick scale, a minute or two at default scale).
///
/// # Errors
///
/// Fails if any underlying experiment fails (unregistered app, bad fit).
pub fn scorecard(cfg: ExpConfig) -> Result<Vec<Claim>, ExperimentError> {
    let mut claims = Vec::new();

    // --- Tables 5-7 ---
    let t5 = hits::table5(cfg);
    let t6 = hits::table6(cfg);
    let t7 = hits::table7(cfg);
    let mm_div = t7.averages.0.fp_div.unwrap_or(0.0);
    let sci_div = t5
        .averages
        .0
        .fp_div
        .unwrap_or(0.0)
        .max(t6.averages.0.fp_div.unwrap_or(0.0));
    claims.push(Claim {
        source: "Tables 5-7",
        statement: "MM applications beat both scientific suites at 32 entries (fdiv)",
        evidence: format!("MM {:.2} vs best scientific {:.2}", mm_div, sci_div),
        holds: mm_div > sci_div,
    });
    let inf_dominates = [&t5, &t6, &t7].iter().all(|t| {
        [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv].iter().all(|&k| {
            match (t.averages.0.get(k), t.averages.1.get(k)) {
                (Some(f), Some(i)) => i + 1e-9 >= f,
                _ => true,
            }
        })
    });
    claims.push(Claim {
        source: "§3.1",
        statement: "Unbounded tables dominate 32-entry tables on every suite and unit",
        evidence: format!(
            "MM fdiv {:.2} -> {:.2} unbounded",
            mm_div,
            t7.averages.1.fp_div.unwrap_or(0.0)
        ),
        holds: inf_dominates,
    });

    // --- Figure 2 ---
    let fig2 = figures::figure2(cfg)?;
    claims.push(Claim {
        source: "Figure 2",
        statement: "Hit ratio falls a few percent per entropy bit",
        evidence: format!(
            "slopes: fdiv {:.3}, fmul {:.3} per 8x8-entropy bit",
            fig2.fdiv_vs_win8.slope, fig2.fmul_vs_win8.slope
        ),
        holds: fig2.fdiv_vs_win8.slope < -0.01 && fig2.fmul_vs_win8.slope < -0.01,
    });

    // --- Figure 3 ---
    let [fmul3, fdiv3] = figures::figure3(cfg)?;
    let tail = fdiv3.points[fdiv3.points.len() - 1].avg - fdiv3.points[fdiv3.points.len() - 2].avg;
    claims.push(Claim {
        source: "Figure 3",
        statement: "Hit ratio grows with table size and saturates",
        evidence: format!(
            "fdiv {:.2}@8 -> {:.2}@1024 -> {:.2}@8192 (last doubling +{:.3})",
            fdiv3.points[0].avg,
            fdiv3.points[7].avg,
            fdiv3.points[10].avg,
            tail
        ),
        holds: fdiv3.points[10].avg >= fdiv3.points[0].avg && tail < 0.05,
    });
    claims.push(Claim {
        source: "Figure 3",
        statement: "Division tolerates smaller tables than multiplication",
        evidence: format!(
            "at 8 entries fdiv keeps {:.0}% of its 32-entry ratio, fmul {:.0}%",
            100.0 * fdiv3.points[0].avg / fdiv3.points[2].avg.max(1e-9),
            100.0 * fmul3.points[0].avg / fmul3.points[2].avg.max(1e-9),
        ),
        holds: fdiv3.points[0].avg / fdiv3.points[2].avg.max(1e-9)
            >= fmul3.points[0].avg / fmul3.points[2].avg.max(1e-9) - 0.05,
    });

    // --- Figure 4 ---
    let [fmul4, fdiv4] = figures::figure4(cfg)?;
    claims.push(Claim {
        source: "Figure 4",
        statement: "Direct-mapped tables suffer conflicts; gains flatten past 4 ways",
        evidence: format!(
            "fdiv: {:.2}@1w {:.2}@2w {:.2}@4w {:.2}@8w",
            fdiv4.points[0].avg, fdiv4.points[1].avg, fdiv4.points[2].avg, fdiv4.points[3].avg
        ),
        holds: fdiv4.points[1].avg >= fdiv4.points[0].avg
            && (fdiv4.points[3].avg - fdiv4.points[2].avg).abs() < 0.05
            && fmul4.points[1].avg >= fmul4.points[0].avg,
    });

    // --- Table 9 ---
    let t9 = trivial::table9(cfg)?;
    let mut wins = 0;
    let mut total = 0;
    for r in &t9 {
        for c in [&r.int_mul, &r.fp_mul, &r.fp_div] {
            if c.present {
                total += 1;
                if c.integrated + 1e-9 >= c.non.max(c.all) {
                    wins += 1;
                }
            }
        }
    }
    claims.push(Claim {
        source: "Table 9",
        statement: "Integrated trivial detection gives the highest hit ratios",
        evidence: format!("best-of-three in {wins}/{total} cells"),
        holds: wins * 10 >= total * 8,
    });

    // --- Table 10 ---
    let t10 = mantissa::table10(cfg);
    claims.push(Claim {
        source: "Table 10",
        statement: "Mantissa-only tags raise hit ratios, albeit not dramatically",
        evidence: format!(
            "MM fdiv {:.2} -> {:.2}; Perfect fdiv {:.2} -> {:.2}",
            t10[1].fdiv_full, t10[1].fdiv_mant, t10[0].fdiv_full, t10[0].fdiv_mant
        ),
        holds: t10.iter().all(|r| r.fdiv_mant + 0.02 >= r.fdiv_full),
    });

    // --- Tables 11-13 ---
    let t11 = speedup::averages(&speedup::table11(cfg)?);
    let t12 = speedup::averages(&speedup::table12(cfg)?);
    let t13 = speedup::averages(&speedup::table13(cfg)?);
    claims.push(Claim {
        source: "Tables 11-12",
        statement: "Memoizing division outpays memoizing multiplication",
        evidence: format!(
            "avg speedup {:.2}x (fdiv@39c) vs {:.2}x (fmul@5c)",
            t11.slow.speedup, t12.slow.speedup
        ),
        holds: t11.slow.speedup > t12.slow.speedup,
    });
    claims.push(Claim {
        source: "Table 13",
        statement: "Combined memoization reaches a material average speedup",
        evidence: format!(
            "{:.2}x fast profile, {:.2}x slow profile (paper: 1.08x / 1.22x)",
            t13.fast.speedup, t13.slow.speedup
        ),
        holds: t13.slow.speedup > 1.05 && t13.slow.speedup >= t13.fast.speedup,
    });

    Ok(claims)
}

/// Render the scorecard.
///
/// # Errors
///
/// Fails if any underlying experiment fails (unregistered app, bad fit).
pub fn render(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let claims = scorecard(cfg)?;
    Ok(render_claims(&claims))
}

/// [`render`], but failing claims are an error: prints nothing less, yet
/// lets `all_experiments` (and CI behind it) exit nonzero on a partial
/// failure instead of reporting PASS around a `FAILS` verdict.
///
/// # Errors
///
/// Fails if an underlying experiment fails, or — as
/// [`ExperimentError::Scorecard`] — if any evaluated claim does not hold.
pub fn render_strict(cfg: ExpConfig) -> Result<String, ExperimentError> {
    let claims = scorecard(cfg)?;
    let failing: Vec<String> = claims
        .iter()
        .filter(|c| !c.holds)
        .map(|c| format!("{} — {}", c.source, c.statement))
        .collect();
    if failing.is_empty() {
        Ok(render_claims(&claims))
    } else {
        // The table itself still reaches the user: print it before
        // surfacing the error, since the error names only the claims.
        println!("{}", render_claims(&claims));
        Err(ExperimentError::Scorecard { failing })
    }
}

/// Render an already-evaluated claim list in the scorecard layout.
#[must_use]
pub fn render_claims(claims: &[Claim]) -> String {
    let mut t = TextTable::new(&["source", "claim", "measured", "verdict"]);
    let all_hold = claims.iter().all(|c| c.holds);
    for c in claims {
        t.row(vec![
            c.source.to_string(),
            c.statement.to_string(),
            c.evidence.clone(),
            if c.holds { "HOLDS".to_string() } else { "FAILS".to_string() },
        ]);
    }
    format!(
        "Reproduction scorecard ({} claims, {} hold)\n{}",
        claims.len(),
        if all_hold { "all".to_string() } else { "NOT all".to_string() },
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds_at_quick_scale() {
        let claims = scorecard(ExpConfig::quick()).unwrap();
        assert_eq!(claims.len(), 10);
        for c in &claims {
            assert!(c.holds, "{} — {} ({})", c.source, c.statement, c.evidence);
        }
    }

    #[test]
    fn render_shows_verdicts() {
        let s = render(ExpConfig::quick()).unwrap();
        assert!(s.contains("HOLDS"));
        assert!(!s.contains("FAILS"));
    }

    #[test]
    fn render_claims_flags_failures() {
        let claims = vec![Claim {
            source: "Table 0",
            statement: "water flows uphill",
            evidence: "it does not".to_string(),
            holds: false,
        }];
        let s = render_claims(&claims);
        assert!(s.contains("FAILS"));
        assert!(s.contains("NOT all"));
    }
}

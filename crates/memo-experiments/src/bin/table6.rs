//! Regenerates Table 6 (SPEC CFP95 hit ratios).
use memo_experiments::{hits, ExpConfig};
fn main() {
    println!("{}", hits::table6(ExpConfig::from_env()).render());
}

//! Regenerates Table 6 (SPEC CFP95 hit ratios).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table6", "Regenerates Table 6 (SPEC CFP95 hit ratios).", &[]);
    println!("{}", runner::table(6, ExpConfig::from_env())?);
    Ok(())
}

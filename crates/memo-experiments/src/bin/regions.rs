//! Runs the region-memoization experiment family (crate `memo-region`):
//! per-kernel region hit ratios and speedups vs. per-unit memoing, the
//! differential transparency proof, and the protection fault demo — the
//! direct runner behind `memo-serve`'s `/v1/region`.
use memo_experiments::{cli, regions, ExpConfig, ExperimentError};

const FLAGS: [(&str, &str); 1] = [(
    "--bench-out=",
    "also write per-kernel hit ratios/speedups as JSON (BENCH_region.json for the CI gate)",
)];

fn value_of(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn main() -> Result<(), ExperimentError> {
    cli::enforce("regions", "Region memoization: bypass whole basic blocks, not single ops.", &FLAGS);
    let cfg = ExpConfig::from_env();
    println!("{}", regions::render(cfg)?);
    if let Some(path) = value_of("--bench-out=") {
        let json = regions::bench_json(cfg)?;
        std::fs::write(&path, json).expect("bench-out path is writable");
        eprintln!("wrote {path}");
    }
    Ok(())
}

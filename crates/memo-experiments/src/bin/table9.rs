//! Regenerates Table 9 (trivial-operation policies).
use memo_experiments::{trivial, ExpConfig};
fn main() {
    let rows = trivial::table9(ExpConfig::from_env());
    println!("{}", trivial::render(&rows));
}

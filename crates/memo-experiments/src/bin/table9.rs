//! Regenerates Table 9 (trivial-operation policies).
use memo_experiments::{trivial, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let rows = trivial::table9(ExpConfig::from_env())?;
    println!("{}", trivial::render(&rows));
    Ok(())
}

//! Regenerates Table 9 (trivial-operation policies).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table9", "Regenerates Table 9 (trivial-operation policies).", &[]);
    println!("{}", runner::table(9, ExpConfig::from_env())?);
    Ok(())
}

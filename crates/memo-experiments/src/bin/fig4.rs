//! Regenerates Figure 4 (hit ratio vs associativity, 32 entries).
use memo_experiments::{figures, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let curves = figures::figure4(ExpConfig::from_env())?;
    println!("{}", figures::render_sweep("Figure 4: Hit ratio vs associativity (32 entries)", "ways", &curves));
    Ok(())
}

//! Regenerates Figure 4 (hit ratio vs associativity, 32 entries).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("fig4", "Regenerates Figure 4 (hit ratio vs associativity, 32 entries).", &[]);
    println!("{}", runner::figure(4, ExpConfig::from_env())?);
    Ok(())
}

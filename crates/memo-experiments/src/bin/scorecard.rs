//! Prints the live reproduction scorecard: every headline claim of the
//! paper evaluated against fresh measurements. Exits nonzero if a claim
//! fails to hold.
use memo_experiments::{cli, summary, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce(
        "scorecard",
        "Prints the live reproduction scorecard; exits nonzero if any claim fails.",
        &[],
    );
    println!("{}", summary::render_strict(ExpConfig::from_env())?);
    Ok(())
}

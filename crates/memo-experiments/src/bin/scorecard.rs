//! Prints the live reproduction scorecard: every headline claim of the
//! paper evaluated against fresh measurements.
use memo_experiments::{summary, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    println!("{}", summary::render(ExpConfig::from_env())?);
    Ok(())
}

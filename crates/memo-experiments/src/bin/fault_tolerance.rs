//! Runs the soft-error robustness study: the fault-rate × protection
//! sweep, the protection cycle-cost table, the circuit-breaker
//! demonstration, and the differential transparency checker.
use memo_experiments::{fault_tolerance, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    println!("{}", fault_tolerance::render(ExpConfig::from_env())?);
    Ok(())
}

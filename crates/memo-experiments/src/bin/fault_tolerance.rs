//! Runs the soft-error robustness study: fault-rate x protection sweep, protection cycle costs, circuit breaker, transparency checker.
use memo_experiments::{cli, fault_tolerance, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("fault_tolerance", "Runs the soft-error robustness study: fault-rate x protection sweep, protection cycle costs, circuit breaker, transparency checker.", &[]);
    println!("{}", fault_tolerance::render(ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 13 (combined memoization speedups).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table13", "Regenerates Table 13 (combined memoization speedups).", &[]);
    println!("{}", runner::table(13, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 13 (combined memoization speedups).
use memo_experiments::{speedup, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let rows = speedup::table13(ExpConfig::from_env())?;
    println!("{}", speedup::render("Table 13: Speedup, fp mul+div memoized", "3/13c", "5/39c", &rows));
    Ok(())
}

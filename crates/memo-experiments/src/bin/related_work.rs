//! Compares MEMO-TABLEs against the related-work division-acceleration
//! schemes (trivial-only detection, reciprocal caches).
use memo_experiments::{related, ExpConfig};
fn main() {
    println!("{}", related::render(ExpConfig::from_env()));
}

//! Compares MEMO-TABLEs against the related-work division-acceleration
//! schemes (trivial-only detection, reciprocal caches).
use memo_experiments::{related, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    println!("{}", related::render(ExpConfig::from_env())?);
    Ok(())
}

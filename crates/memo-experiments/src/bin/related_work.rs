//! Compares MEMO-TABLEs against the related-work division-acceleration schemes.
use memo_experiments::{cli, related, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("related_work", "Compares MEMO-TABLEs against the related-work division-acceleration schemes.", &[]);
    println!("{}", related::render(ExpConfig::from_env())?);
    Ok(())
}

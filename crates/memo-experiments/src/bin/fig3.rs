//! Regenerates Figure 3 (hit ratio vs LUT size).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("fig3", "Regenerates Figure 3 (hit ratio vs LUT size).", &[]);
    println!("{}", runner::figure(3, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Figure 3 (hit ratio vs LUT size).
use memo_experiments::{figures, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let curves = figures::figure3(ExpConfig::from_env())?;
    println!("{}", figures::render_sweep("Figure 3: Hit ratio vs LUT size (4-way)", "entries", &curves));
    Ok(())
}

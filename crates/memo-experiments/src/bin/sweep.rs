//! Runs a caller-chosen hit-ratio sweep over the five sample
//! applications (the custom-grid sibling of Figures 3 and 4, and the
//! direct runner behind `memo-serve`'s `/v1/sweep`).
use memo_experiments::runner::SweepQuery;
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};

const FLAGS: [(&str, &str); 2] = [
    ("--entries=", "comma-separated entry counts (default 32)"),
    ("--ways=", "comma-separated associativities: direct, full, or a way count (default 4)"),
];

fn value_of(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn main() -> Result<(), ExperimentError> {
    cli::enforce("sweep", "Runs a custom hit-ratio sweep over the sample applications.", &FLAGS);
    let entries = value_of("--entries=");
    let ways = value_of("--ways=");
    let query = SweepQuery::parse(entries.as_deref(), ways.as_deref())?;
    println!("{}", runner::sweep(ExpConfig::from_env(), &query)?);
    Ok(())
}

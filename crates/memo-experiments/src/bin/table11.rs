//! Regenerates Table 11 (fp-division memoization speedups).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table11", "Regenerates Table 11 (fp-division memoization speedups).", &[]);
    println!("{}", runner::table(11, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 11 (fp-division memoization speedups).
use memo_experiments::{speedup, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let rows = speedup::table11(ExpConfig::from_env())?;
    println!("{}", speedup::render("Table 11: Speedup, fp division memoized", "13c", "39c", &rows));
    Ok(())
}

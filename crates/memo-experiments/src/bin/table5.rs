//! Regenerates Table 5 (Perfect-suite hit ratios).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table5", "Regenerates Table 5 (Perfect-suite hit ratios).", &[]);
    println!("{}", runner::table(5, ExpConfig::from_env())?);
    Ok(())
}

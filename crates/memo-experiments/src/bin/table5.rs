//! Regenerates Table 5 (Perfect-suite hit ratios).
use memo_experiments::{hits, ExpConfig};
fn main() {
    println!("{}", hits::table5(ExpConfig::from_env()).render());
}

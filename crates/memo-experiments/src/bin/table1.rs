//! Regenerates Table 1 (processor cycle times).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table1", "Regenerates Table 1 (processor cycle times).", &[]);
    println!("{}", runner::table(1, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 1 (processor cycle times).
fn main() {
    println!("{}", memo_experiments::table1::render());
}

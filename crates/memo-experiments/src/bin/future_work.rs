//! Runs the paper's future-work studies: sqrt-unit memoization and the
//! pipeline-hazard model.
use memo_experiments::{extension, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    println!("{}", extension::render(ExpConfig::from_env())?);
    Ok(())
}

//! Runs the paper's future-work studies: sqrt-unit memoization and the
//! pipeline-hazard model.
use memo_experiments::{extension, ExpConfig};
fn main() {
    println!("{}", extension::render(ExpConfig::from_env()));
}

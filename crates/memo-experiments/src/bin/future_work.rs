//! Runs the paper's future-work studies: sqrt-unit memoization and the pipeline-hazard model.
use memo_experiments::{cli, extension, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("future_work", "Runs the paper's future-work studies: sqrt-unit memoization and the pipeline-hazard model.", &[]);
    println!("{}", extension::render(ExpConfig::from_env())?);
    Ok(())
}

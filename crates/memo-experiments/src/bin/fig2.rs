//! Regenerates Figure 2 (hit ratio vs entropy, LM best fit).
//! Pass --csv to dump the scatter points.
use memo_experiments::{figures, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let fig = figures::figure2(ExpConfig::from_env())?;
    println!("{}", fig.render());
    if std::env::args().any(|a| a == "--csv") {
        println!("{}", fig.points_csv());
    }
    Ok(())
}

//! Regenerates Figure 2 (hit ratio vs entropy, LM best fit).
//! Pass --csv to dump the scatter points.
use memo_experiments::{cli, figures, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce(
        "fig2",
        "Regenerates Figure 2 (hit ratio vs entropy, LM best fit).",
        &[("--csv", "also dump the scatter points as CSV")],
    );
    let fig = figures::figure2(ExpConfig::from_env())?;
    println!("{}", fig.render());
    if std::env::args().any(|a| a == "--csv") {
        println!("{}", fig.points_csv());
    }
    Ok(())
}

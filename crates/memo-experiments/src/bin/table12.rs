//! Regenerates Table 12 (fp-multiplication memoization speedups).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table12", "Regenerates Table 12 (fp-multiplication memoization speedups).", &[]);
    println!("{}", runner::table(12, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 12 (fp-multiplication memoization speedups).
use memo_experiments::{speedup, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    let rows = speedup::table12(ExpConfig::from_env())?;
    println!("{}", speedup::render("Table 12: Speedup, fp multiplication memoized", "3c", "5c", &rows));
    Ok(())
}

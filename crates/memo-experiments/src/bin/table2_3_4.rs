//! Regenerates Tables 2-4 (benchmark-suite inventories).
fn main() {
    println!("{}", memo_experiments::suites::render_table2());
    println!("{}", memo_experiments::suites::render_table3());
    println!("{}", memo_experiments::suites::render_table4());
}

//! Regenerates Tables 2-4 (benchmark-suite inventories).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table2_3_4", "Regenerates Tables 2-4 (benchmark-suite inventories).", &[]);
    let cfg = ExpConfig::from_env();
    for n in 2..=4 {
        println!("{}", runner::table(n, cfg)?);
    }
    Ok(())
}

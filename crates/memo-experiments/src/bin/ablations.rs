//! Runs the design-choice ablations (hash, replacement, commutativity,
//! shared-vs-private tables).
use memo_experiments::{ablations, ExpConfig};
fn main() {
    println!("{}", ablations::render(ExpConfig::from_env()));
}

//! Runs the design-choice ablations (hash, replacement, commutativity, shared-vs-private tables).
use memo_experiments::{cli, ablations, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("ablations", "Runs the design-choice ablations (hash, replacement, commutativity, shared-vs-private tables).", &[]);
    println!("{}", ablations::render(ExpConfig::from_env())?);
    Ok(())
}

//! Runs the design-choice ablations (hash, replacement, commutativity,
//! shared-vs-private tables).
use memo_experiments::{ablations, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    println!("{}", ablations::render(ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 10 (mantissa-only vs full-value tags).
use memo_experiments::{mantissa, ExpConfig};
fn main() {
    let rows = mantissa::table10(ExpConfig::from_env());
    println!("{}", mantissa::render(&rows));
}

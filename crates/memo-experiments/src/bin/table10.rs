//! Regenerates Table 10 (mantissa-only vs full-value tags).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table10", "Regenerates Table 10 (mantissa-only vs full-value tags).", &[]);
    println!("{}", runner::table(10, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 7 (multi-media hit ratios).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table7", "Regenerates Table 7 (multi-media hit ratios).", &[]);
    println!("{}", runner::table(7, ExpConfig::from_env())?);
    Ok(())
}

//! Regenerates Table 7 (multi-media hit ratios).
use memo_experiments::{hits, ExpConfig};
fn main() {
    println!("{}", hits::table7(ExpConfig::from_env()).render());
}

//! Regenerates Table 8 (image entropies and per-image hit ratios).
use memo_experiments::{cli, runner, ExpConfig, ExperimentError};
fn main() -> Result<(), ExperimentError> {
    cli::enforce("table8", "Regenerates Table 8 (image entropies and per-image hit ratios).", &[]);
    println!("{}", runner::table(8, ExpConfig::from_env())?);
    Ok(())
}

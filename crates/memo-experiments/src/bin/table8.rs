//! Regenerates Table 8 (image entropies and per-image hit ratios).
use memo_experiments::{images, ExpConfig};
fn main() {
    let rows = images::table8(ExpConfig::from_env());
    println!("{}", images::render(&rows));
}

//! Runs every table and figure in sequence — the full reproduction.
use memo_experiments::*;
fn main() {
    let cfg = ExpConfig::from_env();
    println!("{}", table1::render());
    println!("{}", suites::render_table2());
    println!("{}", suites::render_table3());
    println!("{}", suites::render_table4());
    println!("{}", hits::table5(cfg).render());
    println!("{}", hits::table6(cfg).render());
    println!("{}", hits::table7(cfg).render());
    println!("{}", images::render(&images::table8(cfg)));
    println!("{}", trivial::render(&trivial::table9(cfg)));
    println!("{}", mantissa::render(&mantissa::table10(cfg)));
    println!("{}", speedup::render("Table 11: Speedup, fp division memoized", "13c", "39c", &speedup::table11(cfg)));
    println!("{}", speedup::render("Table 12: Speedup, fp multiplication memoized", "3c", "5c", &speedup::table12(cfg)));
    println!("{}", speedup::render("Table 13: Speedup, fp mul+div memoized", "3/13c", "5/39c", &speedup::table13(cfg)));
    println!("{}", figures::figure2(cfg).render());
    println!("{}", figures::render_sweep("Figure 3: Hit ratio vs LUT size (4-way)", "entries", &figures::figure3(cfg)));
    println!("{}", figures::render_sweep("Figure 4: Hit ratio vs associativity (32 entries)", "ways", &figures::figure4(cfg)));
    println!("{}", ablations::render(cfg));
    println!("{}", related::render(cfg));
    println!("{}", extension::render(cfg));
}

//! Runs every table and figure in sequence — the full reproduction.
//!
//! Each experiment runs inside its own catch barrier: a typed error or a
//! panic in one experiment is reported and the run continues, so a single
//! bad fit or missing registration no longer costs the whole evening. The
//! binary ends with a pass/fail summary per experiment and exits nonzero
//! if anything failed.
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use memo_experiments::{
    ablations, extension, fault_tolerance, figures, hits, images, mantissa, related, speedup,
    suites, summary, table1, trivial, ExpConfig, ExperimentError,
};

type Runner = fn(ExpConfig) -> Result<String, ExperimentError>;

fn experiments() -> Vec<(&'static str, Runner)> {
    vec![
        ("table 1", |_| Ok(table1::render())),
        ("tables 2-4", |_| {
            Ok(format!(
                "{}\n{}\n{}",
                suites::render_table2(),
                suites::render_table3(),
                suites::render_table4()
            ))
        }),
        ("table 5", |cfg| Ok(hits::table5(cfg).render())),
        ("table 6", |cfg| Ok(hits::table6(cfg).render())),
        ("table 7", |cfg| Ok(hits::table7(cfg).render())),
        ("table 8", |cfg| Ok(images::render(&images::table8(cfg)))),
        ("table 9", |cfg| Ok(trivial::render(&trivial::table9(cfg)?))),
        ("table 10", |cfg| Ok(mantissa::render(&mantissa::table10(cfg)))),
        ("table 11", |cfg| {
            Ok(speedup::render(
                "Table 11: Speedup, fp division memoized",
                "13c",
                "39c",
                &speedup::table11(cfg)?,
            ))
        }),
        ("table 12", |cfg| {
            Ok(speedup::render(
                "Table 12: Speedup, fp multiplication memoized",
                "3c",
                "5c",
                &speedup::table12(cfg)?,
            ))
        }),
        ("table 13", |cfg| {
            Ok(speedup::render(
                "Table 13: Speedup, fp mul+div memoized",
                "3/13c",
                "5/39c",
                &speedup::table13(cfg)?,
            ))
        }),
        ("figure 2", |cfg| Ok(figures::figure2(cfg)?.render())),
        ("figure 3", |cfg| {
            Ok(figures::render_sweep(
                "Figure 3: Hit ratio vs LUT size (4-way)",
                "entries",
                &figures::figure3(cfg)?,
            ))
        }),
        ("figure 4", |cfg| {
            Ok(figures::render_sweep(
                "Figure 4: Hit ratio vs associativity (32 entries)",
                "ways",
                &figures::figure4(cfg)?,
            ))
        }),
        ("ablations", ablations::render),
        ("related work", related::render),
        ("future work", extension::render),
        ("fault tolerance", fault_tolerance::render),
        ("scorecard", summary::render),
    ]
}

fn main() {
    let cfg = ExpConfig::from_env();
    let total_start = Instant::now();
    let mut outcomes: Vec<(&'static str, Result<(), String>, u128)> = Vec::new();

    for (name, run) in experiments() {
        let start = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(cfg))) {
            Ok(Ok(report)) => {
                println!("{report}");
                Ok(())
            }
            Ok(Err(e)) => Err(e.to_string()),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic with non-string payload");
                Err(format!("panicked: {msg}"))
            }
        };
        if let Err(why) = &outcome {
            eprintln!("[all_experiments] {name} FAILED: {why}");
        }
        outcomes.push((name, outcome, start.elapsed().as_millis()));
    }

    let failed = outcomes.iter().filter(|(_, o, _)| o.is_err()).count();
    let fusion = memo_workloads::suite::fusion_counters();
    println!(
        "\nsweep fusion: {} grids fused covering {} sweep points \
         ({} full replays avoided); {} direct replays (stateful/unfusable paths)",
        fusion.grids_fused,
        fusion.points_fused,
        fusion.points_fused.saturating_sub(fusion.grids_fused),
        fusion.direct_replays
    );
    println!("\n=== experiment summary ===");
    for (name, outcome, ms) in &outcomes {
        match outcome {
            Ok(()) => println!("  PASS  {name:<16} {ms:>7} ms"),
            Err(why) => println!("  FAIL  {name:<16} {ms:>7} ms — {why}"),
        }
    }
    println!(
        "{} of {} experiments passed in {} ms",
        outcomes.len() - failed,
        outcomes.len(),
        total_start.elapsed().as_millis()
    );

    if failed > 0 {
        std::process::exit(1);
    }
}

//! Runs every table and figure in sequence — the full reproduction.
//!
//! Each experiment runs inside its own catch barrier (see
//! `memo_experiments::runner`): a typed error or a panic in one
//! experiment is reported and the run continues, so a single bad fit or
//! missing registration no longer costs the whole evening. The binary
//! ends with a pass/fail summary per experiment and exits nonzero if
//! anything failed — including a scorecard claim that does not hold.

use std::time::Instant;

use memo_experiments::{cli, runner, ExpConfig};

fn main() {
    cli::enforce(
        "all_experiments",
        "Runs every table and figure in sequence - the full reproduction.",
        &[],
    );
    let cfg = ExpConfig::from_env();
    let total_start = Instant::now();

    let registry = runner::experiments();
    let outcomes = runner::run_registry(cfg, &registry, |report| println!("{report}"));
    for o in &outcomes {
        if let Err(why) = &o.result {
            eprintln!("[all_experiments] {} FAILED: {why}", o.name);
        }
    }

    let failed = runner::failed(&outcomes);
    let fusion = memo_workloads::suite::fusion_counters();
    println!(
        "\nsweep fusion: {} grids fused covering {} sweep points \
         ({} full replays avoided); {} direct replays (stateful/unfusable paths)",
        fusion.grids_fused,
        fusion.points_fused,
        fusion.points_fused.saturating_sub(fusion.grids_fused),
        fusion.direct_replays
    );
    println!("\n=== experiment summary ===");
    for o in &outcomes {
        match &o.result {
            Ok(()) => println!("  PASS  {:<16} {:>7} ms", o.name, o.ms),
            Err(why) => println!("  FAIL  {:<16} {:>7} ms — {why}", o.name, o.ms),
        }
    }
    println!(
        "{} of {} experiments passed in {} ms",
        outcomes.len() - failed,
        outcomes.len(),
        total_start.elapsed().as_millis()
    );

    if failed > 0 {
        std::process::exit(1);
    }
}

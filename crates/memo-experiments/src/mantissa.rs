//! Table 10 — storing only the mantissas vs. the whole floating-point
//! number (suite averages, 32-entry 4-way tables).

use memo_table::{MemoConfig, OpKind, TagPolicy};
use memo_workloads::suite::{replay_stats_fused, HitRatios, SweepSpec};
use memo_workloads::{mm, sci};

use crate::format::{ratio, TextTable};
use crate::{parallel, results, traces, ExpConfig};

/// One suite's Table 10 row.
#[derive(Debug, Clone, Copy)]
pub struct MantissaRow {
    /// Suite label ("Perfect" / "Multi-Media").
    pub suite: &'static str,
    /// Average fmul hit ratio with full-value tags.
    pub fmul_full: f64,
    /// Average fmul hit ratio with mantissa-only tags.
    pub fmul_mant: f64,
    /// Average fdiv hit ratio with full-value tags.
    pub fdiv_full: f64,
    /// Average fdiv hit ratio with mantissa-only tags.
    pub fdiv_mant: f64,
}

fn spec_with(tag: TagPolicy) -> SweepSpec {
    let cfg = MemoConfig::builder(32).tag(tag).build().expect("32/4 is valid");
    SweepSpec::finite(cfg, &[OpKind::FpMul, OpKind::FpDiv])
}

/// Compute Table 10: Perfect and Multi-Media suite averages under both
/// tag policies. Each application is recorded once and replayed against
/// both policies.
#[must_use]
pub fn table10(cfg: ExpConfig) -> [MantissaRow; 2] {
    results::cached("table10", cfg, || table10_uncached(cfg))
}

fn table10_uncached(cfg: ExpConfig) -> [MantissaRow; 2] {
    let accumulate = |pairs: Vec<[HitRatios; 2]>| {
        let mut avg = SuiteAvg::default();
        for [full, mant] in pairs {
            avg.add(0, full.fp_mul, full.fp_div);
            avg.add(1, mant.fp_mul, mant.fp_div);
        }
        avg
    };

    // The two tag policies see different table traffic (mantissa-only
    // bypasses non-normal operands), so they cannot share one pass; the
    // helper replays each single-point grid directly.
    let ratios_for = |tag| move |traces: &[&memo_sim::OpTrace]| {
        replay_stats_fused(traces.iter().copied(), &[spec_with(tag)])[0].ratios()
    };
    let full = ratios_for(TagPolicy::FullValue);
    let mant = ratios_for(TagPolicy::MantissaOnly);

    let perfect = accumulate(parallel::par_map(sci::perfect_apps(), |app| {
        let trace = traces::sci_trace(cfg, &app);
        [full(&[&*trace]), mant(&[&*trace])]
    }));

    let media = accumulate(parallel::par_map(mm::apps(), |app| {
        let app_traces = traces::mm_traces(cfg, &app);
        let refs: Vec<&memo_sim::OpTrace> = app_traces.iter().collect();
        [full(&refs), mant(&refs)]
    }));

    [perfect.row("Perfect"), media.row("Multi-Media")]
}

#[derive(Default)]
struct SuiteAvg {
    // [full, mantissa] × [fmul, fdiv] sums and counts.
    sums: [[f64; 2]; 2],
    counts: [[u32; 2]; 2],
}

impl SuiteAvg {
    fn add(&mut self, tag_slot: usize, fmul: Option<f64>, fdiv: Option<f64>) {
        if let Some(v) = fmul {
            self.sums[tag_slot][0] += v;
            self.counts[tag_slot][0] += 1;
        }
        if let Some(v) = fdiv {
            self.sums[tag_slot][1] += v;
            self.counts[tag_slot][1] += 1;
        }
    }

    fn avg(&self, tag_slot: usize, op_slot: usize) -> f64 {
        if self.counts[tag_slot][op_slot] == 0 {
            0.0
        } else {
            self.sums[tag_slot][op_slot] / f64::from(self.counts[tag_slot][op_slot])
        }
    }

    fn row(&self, suite: &'static str) -> MantissaRow {
        MantissaRow {
            suite,
            fmul_full: self.avg(0, 0),
            fmul_mant: self.avg(1, 0),
            fdiv_full: self.avg(0, 1),
            fdiv_mant: self.avg(1, 1),
        }
    }
}

/// Render the Table 10 layout.
#[must_use]
pub fn render(rows: &[MantissaRow; 2]) -> String {
    let mut t = TextTable::new(&["suite", "fmul/full", "fmul/mant", "fdiv/full", "fdiv/mant"]);
    for r in rows {
        t.row(vec![
            r.suite.to_string(),
            ratio(Some(r.fmul_full)),
            ratio(Some(r.fmul_mant)),
            ratio(Some(r.fdiv_full)),
            ratio(Some(r.fdiv_mant)),
        ]);
    }
    format!(
        "Table 10: Mantissa-only vs whole-value tags (averages, 32-entry 4-way)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mantissa_tags_never_lose_and_sometimes_gain() {
        let rows = table10(ExpConfig::quick());
        for r in &rows {
            // Paper Table 10: mantissa ≥ full, by a small margin.
            assert!(
                r.fmul_mant + 0.02 >= r.fmul_full,
                "{}: fmul mant {} vs full {}",
                r.suite,
                r.fmul_mant,
                r.fmul_full
            );
            assert!(
                r.fdiv_mant + 0.02 >= r.fdiv_full,
                "{}: fdiv mant {} vs full {}",
                r.suite,
                r.fdiv_mant,
                r.fdiv_full
            );
        }
        // Multi-media clearly beats Perfect under either policy.
        assert!(rows[1].fdiv_full > rows[0].fdiv_full);
    }

    #[test]
    fn render_mentions_both_suites() {
        let rows = table10(ExpConfig::quick());
        let s = render(&rows);
        assert!(s.contains("Perfect") && s.contains("Multi-Media"));
    }
}

//! The process-global persistent tier.
//!
//! `memo-store` is a plain bytes→bytes store; this module is the typed
//! glue the rest of the workspace uses:
//!
//! * a **global handle** — installed once (by `memo-serve` start-up or an
//!   experiment driver), consulted by the trace cache and the serving
//!   layer. Installable and removable so tests can run isolated stores.
//! * a **format guard** — the store carries a `meta/format` key encoding
//!   every serialization version it depends on (result codec, trace
//!   archive, `OpTrace`, the `MemoConfig` stable key encoding — probed by
//!   an actual encoding canary, not just a version constant). A mismatch
//!   wipes the store: stale blobs invalidate instead of misdecoding.
//! * **typed load/save helpers** — rendered result blobs and operand
//!   trace archives. Load failures (IO, corruption, decode) degrade to
//!   `None`, i.e. "recompute"; save failures are swallowed after
//!   recording the event, because persistence is an accelerator here,
//!   never a correctness dependency.

use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use memo_sim::{OpTrace, OP_TRACE_VERSION};
use memo_store::codec::{self, RESULT_VERSION, TRACE_ARCHIVE_VERSION};
use memo_store::{BlockCache, CachedBlock, ResultBlob, Store, StoreConfig, StoreError};
use memo_table::{MemoConfig, STABLE_ENCODING_VERSION};

use crate::cache::ShardedLru;
use crate::env;

/// The key under which the format marker lives.
const FORMAT_KEY: &[u8] = b"meta/format";

/// memo-store's [`BlockCache`] backed by this crate's [`ShardedLru`]:
/// hot segment spans served from memory under LRU eviction. The store's
/// reader re-verifies each span's CRC at every hit, so a corrupted cache
/// entry degrades to a disk read instead of serving damage.
#[derive(Debug)]
pub struct LruBlockCache {
    spans: ShardedLru<(u64, u64), (u32, Vec<u8>)>,
}

impl LruBlockCache {
    /// A cache holding at most `capacity` segment spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (disable by not attaching instead).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruBlockCache {
            spans: ShardedLru::new(8, capacity).with_weigher(|(_, block)| block.len().max(1)),
        }
    }
}

impl BlockCache for LruBlockCache {
    fn get(&self, segment_id: u64, offset: u64) -> Option<CachedBlock> {
        self.spans.peek(&(segment_id, offset))
    }

    fn put(&self, segment_id: u64, offset: u64, checksum: u32, block: Vec<u8>) {
        let _ = self.spans.get_or_compute(&(segment_id, offset), move || (checksum, block));
    }
}

fn global() -> &'static Mutex<Option<Arc<Store>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<Store>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// The format marker this build writes: every version the persisted
/// blobs depend on, plus a canary of the actual `MemoConfig` stable
/// encoding so an encoding change that forgot its version bump still
/// invalidates.
#[must_use]
pub fn format_tag() -> String {
    let canary = MemoConfig::paper_default().to_stable_bytes();
    let canary_hex: String = canary.iter().map(|b| format!("{b:02x}")).collect();
    format!(
        "result=v{RESULT_VERSION};archive=v{TRACE_ARCHIVE_VERSION};optrace=v{OP_TRACE_VERSION};\
         cfgkey=v{STABLE_ENCODING_VERSION};canary={canary_hex}"
    )
}

/// Open (or create) a store at `dir` and guard its format: if the
/// directory carries a marker from a different format generation, the
/// store is wiped and re-marked — previously persisted blobs would not
/// decode anyway.
///
/// Corruption in the marker's own storage is handled the same way, not
/// surfaced: a torn `meta/format` WAL record is truncated away by WAL
/// recovery (the marker is then missing → rewritten), and a corrupt
/// segment holding the marker fails validation at open → the directory
/// is wiped and restarted fresh. The store is a cache; losing it must
/// never keep the process from starting.
///
/// # Errors
///
/// [`StoreError::Io`] when the directory cannot be opened, wiped, or
/// re-marked.
pub fn open_guarded(dir: &Path, config: StoreConfig) -> Result<Arc<Store>, StoreError> {
    let store = match Store::open(dir, config.clone()) {
        Ok(store) => store,
        Err(StoreError::CorruptSegment { .. }) => {
            // Segments are written atomically, so this is bit rot (or
            // tampering), not a crash artifact. Start over.
            std::fs::remove_dir_all(dir)
                .map_err(|e| StoreError::io("wipe corrupt store dir", e))?;
            Store::open(dir, config)?
        }
        Err(e) => return Err(e),
    };
    let cache_spans = env::store_block_cache_spans();
    if cache_spans > 0 {
        store.attach_block_cache(Arc::new(LruBlockCache::new(cache_spans)));
    }
    let expected = format_tag();
    match store.get(FORMAT_KEY)? {
        Some(found) if found == expected.as_bytes() => {}
        found => {
            if found.is_some() {
                // Format changed underneath a populated store: wipe.
                store.clear()?;
            }
            store.put(FORMAT_KEY, expected.as_bytes())?;
        }
    }
    Ok(Arc::new(store))
}

/// Install `store` as the process-global persistent tier (replacing any
/// previous one). The trace cache and serving layer pick it up on their
/// next access.
pub fn install(store: Arc<Store>) {
    *global().lock().expect("store handle poisoned") = Some(store);
}

/// Remove the global store (tests; shutdown). In-flight users holding an
/// `Arc` finish against the old store harmlessly.
pub fn uninstall() {
    *global().lock().expect("store handle poisoned") = None;
}

/// The currently installed store, if any.
#[must_use]
pub fn installed() -> Option<Arc<Store>> {
    global().lock().expect("store handle poisoned").clone()
}

/// Load a rendered result blob. Any failure — no store, IO error,
/// corrupt or foreign-format blob — is `None`: recompute.
#[must_use]
pub fn load_result(key: &str) -> Option<ResultBlob> {
    let store = installed()?;
    let bytes = store.get(key.as_bytes()).ok()??;
    ResultBlob::from_bytes(&bytes).ok()
}

/// Persist a rendered result blob under `key`. Failures are swallowed:
/// the disk tier accelerates restarts, it never gates a response.
pub fn save_result(key: &str, blob: &ResultBlob) {
    if let Some(store) = installed() {
        let _ = store.put(key.as_bytes(), &blob.to_bytes());
    }
}

/// Load an operand-trace archive (one `OpTrace` per part). `None` on any
/// failure, including a version-tag mismatch in any part.
#[must_use]
pub fn load_traces(key: &str) -> Option<Vec<OpTrace>> {
    let store = installed()?;
    let bytes = store.get(key.as_bytes()).ok()??;
    let parts = codec::decode_trace_archive(&bytes).ok()?;
    parts.iter().map(|p| OpTrace::from_bytes(p).ok()).collect()
}

/// Persist an operand-trace archive under `key`; failures are swallowed.
pub fn save_traces(key: &str, traces: &[OpTrace]) {
    if let Some(store) = installed() {
        let parts: Vec<Vec<u8>> = traces.iter().map(OpTrace::to_bytes).collect();
        let _ = store.put(key.as_bytes(), &codec::encode_trace_archive(&parts));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_table::Op;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("memo-expstore-{tag}-{}-{n}", std::process::id()))
    }

    // The global handle is process-wide state; serialize the tests that
    // install/uninstall it so they do not clobber each other.
    fn handle_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn format_guard_wipes_foreign_generations() {
        let _guard = handle_lock();
        let dir = tmp_dir("format");
        {
            let store = Store::open(&dir, StoreConfig::small_for_tests()).unwrap();
            store.put(FORMAT_KEY, b"result=v0;ancient").unwrap();
            store.put(b"old-blob", b"stale bytes").unwrap();
            store.flush().unwrap();
        }
        let store = open_guarded(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"old-blob").unwrap(), None, "foreign-format store is wiped");
        assert_eq!(store.get(FORMAT_KEY).unwrap(), Some(format_tag().into_bytes()));
        // Same generation: contents survive a reopen.
        store.put(b"blob", b"bytes").unwrap();
        store.flush().unwrap();
        drop(store);
        let store = open_guarded(&dir, StoreConfig::small_for_tests()).unwrap();
        assert_eq!(store.get(b"blob").unwrap(), Some(b"bytes".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A config that keeps everything in the WAL (no auto-flush), so the
    /// guard-corruption tests control where the marker lives.
    fn wal_only_config() -> StoreConfig {
        StoreConfig {
            memtable_max_bytes: 1 << 20,
            fsync: false,
            compact_at_segments: 100,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn guard_recovers_when_the_format_marker_wal_record_is_damaged() {
        let _guard = handle_lock();
        for (tag, damage) in [
            ("torn", &(|bytes: &mut Vec<u8>| bytes.truncate(10)) as &dyn Fn(&mut Vec<u8>)),
            ("corrupt", &|bytes: &mut Vec<u8>| bytes[10] ^= 0xFF),
        ] {
            let dir = tmp_dir(&format!("marker-wal-{tag}"));
            {
                let store = open_guarded(&dir, wal_only_config()).unwrap();
                store.put(b"blob", b"payload").unwrap();
                // No flush: the marker and the blob live only in the WAL.
            }
            let wal = dir.join("wal.log");
            let mut bytes = std::fs::read(&wal).unwrap();
            damage(&mut bytes);
            std::fs::write(&wal, &bytes).unwrap();
            // The marker record itself is damaged: recovery truncates it
            // (and everything after it) away, and the guard re-marks the
            // now-empty store instead of failing.
            let store = open_guarded(&dir, wal_only_config()).unwrap();
            assert_eq!(
                store.get(FORMAT_KEY).unwrap(),
                Some(format_tag().into_bytes()),
                "{tag}: marker must be restored"
            );
            assert_eq!(store.get(b"blob").unwrap(), None, "{tag}: data after the tear is lost");
            store.put(b"fresh", b"works").unwrap();
            assert_eq!(store.get(b"fresh").unwrap(), Some(b"works".to_vec()));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn guard_wipes_and_restarts_when_the_marker_segment_is_damaged() {
        let _guard = handle_lock();
        for (tag, damage) in [
            ("corrupt", &(|bytes: &mut Vec<u8>| {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
            }) as &dyn Fn(&mut Vec<u8>)),
            ("truncated", &|bytes: &mut Vec<u8>| {
                let keep = bytes.len() - 20;
                bytes.truncate(keep);
            }),
        ] {
            let dir = tmp_dir(&format!("marker-seg-{tag}"));
            {
                let store = open_guarded(&dir, wal_only_config()).unwrap();
                store.put(b"blob", b"payload").unwrap();
                store.flush().unwrap(); // marker + blob now live in a segment
            }
            let seg = dir.join("seg-00000000.seg");
            let mut bytes = std::fs::read(&seg).unwrap();
            damage(&mut bytes);
            std::fs::write(&seg, &bytes).unwrap();
            // Plain open refuses to serve the damage...
            assert!(matches!(
                Store::open(&dir, wal_only_config()),
                Err(StoreError::CorruptSegment { .. })
            ));
            // ...but the guarded open wipes and restarts fresh.
            let store = open_guarded(&dir, wal_only_config()).unwrap();
            assert_eq!(
                store.get(FORMAT_KEY).unwrap(),
                Some(format_tag().into_bytes()),
                "{tag}: marker must be restored"
            );
            assert_eq!(store.get(b"blob").unwrap(), None, "{tag}: the wiped blob is gone");
            store.put(b"fresh", b"works").unwrap();
            store.flush().unwrap();
            drop(store);
            let store = open_guarded(&dir, wal_only_config()).unwrap();
            assert_eq!(store.get(b"fresh").unwrap(), Some(b"works".to_vec()));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn typed_helpers_roundtrip_through_the_global_handle() {
        let _guard = handle_lock();
        let dir = tmp_dir("typed");
        let store = open_guarded(&dir, StoreConfig::small_for_tests()).unwrap();
        install(store);

        assert_eq!(load_result("results/x"), None);
        let blob = ResultBlob { status: 200, body: b"| table |".to_vec() };
        save_result("results/x", &blob);
        assert_eq!(load_result("results/x"), Some(blob));

        let mut trace = OpTrace::new();
        trace.push(Op::FpDiv(355.0, 113.0));
        trace.push(Op::IntMul(6, 7));
        save_traces("traces/k", &[trace.clone(), OpTrace::new()]);
        let back = load_traces("traces/k").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].len(), 2);
        assert!(back[1].is_empty());

        uninstall();
        assert_eq!(load_result("results/x"), None, "no store, no disk tier");
        save_result("results/x", &ResultBlob { status: 200, body: vec![] }); // no-op, no panic
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_cache_consults_the_store_before_recording() {
        let _guard = handle_lock();
        let dir = tmp_dir("traces");
        let store = open_guarded(&dir, StoreConfig::small_for_tests()).unwrap();
        install(store);
        // A scale no other test uses, so the per-process trace cache has
        // no entry and must go through the store path.
        let cfg = crate::ExpConfig { image_scale: 17, sci_n: 17 };
        let app = memo_workloads::mm::find("vgpwl").unwrap();
        let n_images = crate::traces::corpus(17).len();
        // Pre-seed a recognizable archive of the right arity: mm_traces
        // must serve it instead of re-recording the kernel.
        let mut fake = OpTrace::new();
        fake.push(Op::IntMul(41, 2));
        let fakes: Vec<OpTrace> = (0..n_images).map(|_| fake.clone()).collect();
        save_traces("traces/mm/vgpwl/17", &fakes);
        let got = crate::traces::mm_traces(cfg, &app);
        assert_eq!(got.len(), n_images);
        assert!(got.iter().all(|t| t.len() == 1), "served from disk, not re-recorded");
        // Sci path: no archive yet → records natively and writes back.
        let sci_app = *memo_workloads::sci::all_apps().first().unwrap();
        let t = crate::traces::sci_trace(cfg, &sci_app);
        assert!(!t.is_empty());
        let back = load_traces(&format!("traces/sci/{}/17", sci_app.name)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].len(), t.len());
        uninstall();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_block_cache_roundtrips_and_misses_cleanly() {
        let cache = LruBlockCache::new(4);
        assert!(cache.get(1, 0).is_none(), "empty cache misses");
        cache.put(1, 0, 0xDEAD_BEEF, vec![1, 2, 3]);
        let hit = cache.get(1, 0).expect("inserted span is served");
        assert_eq!(hit.0, 0xDEAD_BEEF);
        assert_eq!(hit.1, vec![1, 2, 3]);
        assert!(cache.get(1, 64).is_none(), "other offsets are distinct keys");
        assert!(cache.get(2, 0).is_none(), "other segments are distinct keys");
    }

    #[test]
    fn guarded_open_serves_hot_spans_through_the_block_cache() {
        let _guard = handle_lock();
        let dir = tmp_dir("blockcache");
        let store = open_guarded(&dir, StoreConfig::small_for_tests()).unwrap();
        store.put(b"hot/key", b"span payload").unwrap();
        store.flush().unwrap(); // the key now lives in a segment
        assert_eq!(store.get(b"hot/key").unwrap(), Some(b"span payload".to_vec()));
        assert_eq!(store.get(b"hot/key").unwrap(), Some(b"span payload".to_vec()));
        let stats = store.stats();
        assert!(stats.block_cache_misses >= 1, "first probe fills the cache: {stats:?}");
        assert!(stats.block_cache_hits >= 1, "repeat probe is served from memory: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_tag_is_stable_and_self_describing() {
        assert_eq!(format_tag(), format_tag());
        assert!(format_tag().contains("optrace=v1"));
        assert!(format_tag().contains("canary="));
    }
}

//! Table 8 — the input images: dimensions, type, bands, entropies
//! (full / 16×16 / 8×8 windows), and the average hit ratios of the
//! applications run on each image.

use memo_imaging::entropy;
use memo_imaging::synth::CorpusImage;
use memo_table::OpKind;
use memo_workloads::mm;
use memo_workloads::suite::{measure_mm_app, replay_ratios, HitRatios, SweepSpec};

use crate::format::{ratio, TextTable};
use crate::{parallel, traces, ExpConfig};

/// One Table 8 row.
#[derive(Debug, Clone)]
pub struct ImageRow {
    /// Image name (the paper image it stands in for).
    pub name: String,
    /// Width × height.
    pub size: (usize, usize),
    /// Pixel type label (BYTE / INTEGER / FLOAT).
    pub pixel_type: String,
    /// Number of bands.
    pub bands: usize,
    /// Whole-image entropy (None for FLOAT imagery).
    pub entropy_full: Option<f64>,
    /// Mean 16×16-window entropy.
    pub entropy_16: Option<f64>,
    /// Mean 8×8-window entropy.
    pub entropy_8: Option<f64>,
    /// Hit ratios averaged over all applications run on this image.
    pub hits: HitRatios,
}

/// Average each kind over the applications that issue it, then describe
/// the image.
fn row(c: &CorpusImage, per_app_hits: &[HitRatios]) -> ImageRow {
    let mut sums = [0.0f64; 3];
    let mut counts = [0u32; 3];
    for r in per_app_hits {
        for (slot, kind) in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv].iter().enumerate() {
            if let Some(v) = r.get(*kind) {
                sums[slot] += v;
                counts[slot] += 1;
            }
        }
    }
    let avg = |slot: usize| (counts[slot] > 0).then(|| sums[slot] / f64::from(counts[slot]));
    ImageRow {
        name: c.name.to_string(),
        size: (c.image.width(), c.image.height()),
        pixel_type: c.image.pixel_type().to_string(),
        bands: c.image.bands(),
        entropy_full: entropy::full_entropy(&c.image),
        entropy_16: entropy::windowed_entropy(&c.image, 16),
        entropy_8: entropy::windowed_entropy(&c.image, 8),
        hits: HitRatios { int_mul: avg(0), fp_mul: avg(1), fp_div: avg(2) },
    }
}

/// Compute Table 8 for the synthetic corpus — replayed from the shared
/// per-image recordings (one native run per application and image).
#[must_use]
pub fn table8(cfg: ExpConfig) -> Vec<ImageRow> {
    let corpus = traces::corpus(cfg.image_scale);
    let apps = mm::apps();
    let app_traces: Vec<_> = apps.iter().map(|app| traces::mm_traces(cfg, app)).collect();
    let spec = SweepSpec::paper_default();
    parallel::par_map((0..corpus.len()).collect(), |i| {
        let hits: Vec<HitRatios> =
            app_traces.iter().map(|t| replay_ratios([&t[i]], spec)).collect();
        row(&corpus[i], &hits)
    })
}

/// Compute Table 8 rows for an arbitrary corpus (e.g. user-supplied PNM
/// images) by running the applications natively.
#[must_use]
pub fn table8_for(corpus: &[CorpusImage]) -> Vec<ImageRow> {
    let apps = mm::apps();
    let spec = SweepSpec::paper_default();
    corpus
        .iter()
        .map(|c| {
            let hits: Vec<HitRatios> =
                apps.iter().map(|app| measure_mm_app(app, &[&c.image], spec)).collect();
            row(c, &hits)
        })
        .collect()
}

/// Render the Table 8 layout.
#[must_use]
pub fn render(rows: &[ImageRow]) -> String {
    let mut t = TextTable::new(&[
        "image", "size", "type", "bands", "full", "16x16", "8x8", "imul", "fmul", "fdiv",
    ]);
    let ent = |e: Option<f64>| e.map_or("-".to_string(), |v| format!("{v:.2}"));
    for r in rows {
        t.row(vec![
            r.name.clone(),
            format!("{}x{}", r.size.0, r.size.1),
            r.pixel_type.clone(),
            r.bands.to_string(),
            ent(r.entropy_full),
            ent(r.entropy_16),
            ent(r.entropy_8),
            ratio(r.hits.int_mul),
            ratio(r.hits.fp_mul),
            ratio(r.hits.fp_div),
        ]);
    }
    format!("Table 8: Description of the images used in IP applications\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_corpus_with_entropy_ordering() {
        let rows = table8(ExpConfig::quick());
        assert_eq!(rows.len(), 14);
        for r in &rows {
            if let (Some(full), Some(w16), Some(w8)) =
                (r.entropy_full, r.entropy_16, r.entropy_8)
            {
                assert!(w8 <= w16 + 0.3, "{}: 8x8 {w8} vs 16x16 {w16}", r.name);
                assert!(w16 <= full + 0.3, "{}: 16x16 {w16} vs full {full}", r.name);
            }
            assert!(r.hits.fp_mul.is_some(), "{} ran fp multiplies", r.name);
        }
        // FLOAT rows have unreported entropy, like the paper.
        assert!(rows.iter().any(|r| r.pixel_type == "FLOAT" && r.entropy_full.is_none()));
    }

    #[test]
    fn low_entropy_images_hit_more() {
        let rows = table8(ExpConfig::quick());
        let byte_rows: Vec<_> = rows.iter().filter(|r| r.entropy_8.is_some()).collect();
        let lowest = byte_rows
            .iter()
            .min_by(|a, b| a.entropy_8.partial_cmp(&b.entropy_8).unwrap())
            .unwrap();
        let highest = byte_rows
            .iter()
            .max_by(|a, b| a.entropy_8.partial_cmp(&b.entropy_8).unwrap())
            .unwrap();
        assert!(
            lowest.hits.fp_div.unwrap() > highest.hits.fp_div.unwrap(),
            "fdiv: low-entropy {} ({:?}) vs high-entropy {} ({:?})",
            lowest.name,
            lowest.hits.fp_div,
            highest.name,
            highest.hits.fp_div
        );
    }

    #[test]
    fn render_contains_every_image() {
        let rows = table8(ExpConfig::quick());
        let s = render(&rows);
        for name in ["mandrill", "lablabel", "fractal", "lenna.rgb"] {
            assert!(s.contains(name));
        }
    }
}

//! # memo-experiments
//!
//! The harness that regenerates **every table and figure** of the paper's
//! evaluation (§3). One module per experiment; one binary per table/figure
//! (`table1` … `table13`, `fig2`, `fig3`, `fig4`, and `all_experiments`).
//!
//! Absolute numbers differ from the paper — the traces come from our
//! re-implemented workloads on synthetic inputs, not Shade on SPARC
//! binaries — but every *shape* the paper argues from is checked by this
//! crate's tests: MM ≫ scientific at 32 entries, the entropy/hit-ratio
//! slope, the size/associativity saturation points, mantissa ≥ full tags,
//! and fdiv speedups exceeding fmul speedups.
//!
//! ## Scaling
//!
//! Full-size runs stream hundreds of millions of operations. [`ExpConfig`]
//! controls the problem sizes: `ExpConfig::default()` (image scale 4,
//! grid 32) keeps every binary under a minute; `MEMO_SCALE` and
//! `MEMO_SCI_N` environment variables override.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod cache;
pub mod cli;
pub mod env;
pub mod error;
pub mod extension;
pub mod fault_tolerance;
pub mod figures;
pub mod format;
pub mod hits;
pub mod images;
pub mod mantissa;
pub mod parallel;
pub mod regions;
pub mod related;
pub mod results;
pub mod runner;
pub mod speedup;
pub mod store;
pub mod suites;
pub mod summary;
pub mod table1;
pub mod traces;
pub mod trivial;

pub use error::ExperimentError;

/// Problem-size configuration shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Divisor applied to the Table 8 image dimensions (1 = paper size).
    pub image_scale: usize,
    /// Grid side / problem size for the scientific kernels.
    pub sci_n: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { image_scale: 4, sci_n: 32 }
    }
}

impl ExpConfig {
    /// Tiny sizes for unit tests (seconds, not minutes).
    #[must_use]
    pub fn quick() -> Self {
        ExpConfig { image_scale: 16, sci_n: 16 }
    }

    /// Read `MEMO_SCALE` / `MEMO_SCI_N` from the environment, falling back
    /// to the defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = ExpConfig::default();
        if let Some(v) = env::usize_var("MEMO_SCALE") {
            cfg.image_scale = v.max(1);
        }
        if let Some(v) = env::usize_var("MEMO_SCI_N") {
            cfg.sci_n = v.max(8);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_quick_differ() {
        assert!(ExpConfig::quick().image_scale > ExpConfig::default().image_scale);
    }

    #[test]
    fn from_env_clamps() {
        // No env vars set in the test harness: defaults come back.
        let cfg = ExpConfig::from_env();
        assert!(cfg.image_scale >= 1);
        assert!(cfg.sci_n >= 8);
    }
}

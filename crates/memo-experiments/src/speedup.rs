//! Tables 11, 12, 13 — application speedups from Amdahl's law over the
//! cycle-accounting simulator (§3.3).

use memo_sim::{CpuModel, CycleAccountant, CycleReport, MemoBank, MemoryHierarchy};
use memo_table::{MemoConfig, OpKind};

use crate::error::find_mm;
use crate::format::{frac3, ratio, TextTable};
use crate::{parallel, results, traces, ExpConfig, ExperimentError};

/// The nine applications of Tables 11–13.
pub const SPEEDUP_APPS: [&str; 9] =
    ["venhance", "vbrf", "vsqrt", "vslope", "vbpf", "vkmeans", "vspatial", "vgauss", "vgpwl"];

/// The union of units any of Tables 11–13 memoizes. One replay per
/// (application, CPU profile) against a bank covering the union yields
/// every table's cells: per-kind tables are independent, so each table's
/// subset is derived exactly ([`CycleReport::speedup_measured_for`]).
const SPEEDUP_KINDS: [OpKind; 2] = [OpKind::FpMul, OpKind::FpDiv];

/// One (application, latency-profile) measurement.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupCells {
    /// Observed hit ratio of the memoized unit(s).
    pub hit_ratio: f64,
    /// Fraction Enhanced: the units' share of baseline cycles.
    pub fe: f64,
    /// Speedup Enhanced (pooled over the memoized units).
    pub se: f64,
    /// Overall Amdahl speedup.
    pub speedup: f64,
    /// Directly measured speedup (baseline cycles / memoized cycles) —
    /// must agree with the Amdahl number; kept as a cross-check.
    pub measured: f64,
}

/// One application row: the two latency profiles of the paper's table.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Application name.
    pub name: String,
    /// Fast-unit profile (13-cycle fdiv / 3-cycle fmul).
    pub fast: SpeedupCells,
    /// Slow-unit profile (39-cycle fdiv / 5-cycle fmul).
    pub slow: SpeedupCells,
}

/// The cycle reports of all nine applications under one CPU profile —
/// computed once per process (cached event trace, one replay per app) and
/// shared by Tables 11, 12, 13 and the scorecard.
fn profile_reports(
    cfg: ExpConfig,
    key: &'static str,
    cpu: CpuModel,
) -> Result<Vec<CycleReport>, ExperimentError> {
    results::cached(key, cfg, || {
        let apps =
            SPEEDUP_APPS.iter().map(|name| find_mm(name)).collect::<Result<Vec<_>, _>>()?;
        Ok(parallel::par_map(apps, |app| {
            let trace = traces::mm_event_trace(cfg, &app);
            let mut acc = CycleAccountant::new(
                cpu,
                MemoryHierarchy::typical_1997(),
                MemoBank::uniform(MemoConfig::paper_default(), &SPEEDUP_KINDS),
            );
            trace.replay_into(&mut acc);
            acc.report()
        }))
    })
}

fn cells(report: &CycleReport, kinds: &[OpKind]) -> SpeedupCells {
    let fe: f64 = kinds.iter().map(|&k| report.fraction_enhanced(k)).sum();
    let scaled: f64 = kinds
        .iter()
        .map(|&k| report.fraction_enhanced(k) / report.speedup_enhanced(k))
        .sum();
    // Pooled SE as the paper reports it: FE/SE = Σ FE_i/SE_i.
    let se = if scaled > 0.0 { fe / scaled } else { 1.0 };
    // Hit ratio pooled over the memoized kinds (weighted by op counts via
    // cycles is what FE already captures; report the plain mean of the
    // present kinds, as the paper's hr column lists the div/mul ratio).
    let hrs: Vec<f64> = kinds
        .iter()
        .filter(|&&k| report.fraction_enhanced(k) > 0.0)
        .map(|&k| report.hit_ratio(k))
        .collect();
    let hit_ratio = if hrs.is_empty() { 0.0 } else { hrs.iter().sum::<f64>() / hrs.len() as f64 };
    SpeedupCells {
        hit_ratio,
        fe,
        se,
        speedup: report.speedup_amdahl(kinds),
        measured: report.speedup_measured_for(kinds),
    }
}

fn build(cfg: ExpConfig, kinds: &[OpKind]) -> Result<Vec<SpeedupRow>, ExperimentError> {
    let fast = profile_reports(cfg, "speedup-reports-fast", CpuModel::paper_fast())?;
    let slow = profile_reports(cfg, "speedup-reports-slow", CpuModel::paper_slow())?;
    Ok(SPEEDUP_APPS
        .iter()
        .zip(fast.iter().zip(&slow))
        .map(|(name, (f, s))| SpeedupRow {
            name: (*name).to_string(),
            fast: cells(f, kinds),
            slow: cells(s, kinds),
        })
        .collect())
}

/// Table 11 — fp division memoized; 13- vs 39-cycle dividers.
///
/// # Errors
///
/// Fails if a [`SPEEDUP_APPS`] name is missing from the registry.
pub fn table11(cfg: ExpConfig) -> Result<Vec<SpeedupRow>, ExperimentError> {
    build(cfg, &[OpKind::FpDiv])
}

/// Table 12 — fp multiplication memoized; 3- vs 5-cycle multipliers.
///
/// # Errors
///
/// Fails if a [`SPEEDUP_APPS`] name is missing from the registry.
pub fn table12(cfg: ExpConfig) -> Result<Vec<SpeedupRow>, ExperimentError> {
    build(cfg, &[OpKind::FpMul])
}

/// Table 13 — both memoized; (3, 13) vs (5, 39) cycle profiles.
///
/// # Errors
///
/// Fails if a [`SPEEDUP_APPS`] name is missing from the registry.
pub fn table13(cfg: ExpConfig) -> Result<Vec<SpeedupRow>, ExperimentError> {
    build(cfg, &SPEEDUP_KINDS)
}

/// Column-mean row ("average" line of the paper's tables).
#[must_use]
pub fn averages(rows: &[SpeedupRow]) -> SpeedupRow {
    let avg = |pick: fn(&SpeedupRow) -> SpeedupCells| {
        let n = rows.len() as f64;
        SpeedupCells {
            hit_ratio: rows.iter().map(|r| pick(r).hit_ratio).sum::<f64>() / n,
            fe: rows.iter().map(|r| pick(r).fe).sum::<f64>() / n,
            se: rows.iter().map(|r| pick(r).se).sum::<f64>() / n,
            speedup: rows.iter().map(|r| pick(r).speedup).sum::<f64>() / n,
            measured: rows.iter().map(|r| pick(r).measured).sum::<f64>() / n,
        }
    };
    SpeedupRow { name: "average".to_string(), fast: avg(|r| r.fast), slow: avg(|r| r.slow) }
}

/// Render one speedup table in the paper's layout.
#[must_use]
pub fn render(title: &str, fast_label: &str, slow_label: &str, rows: &[SpeedupRow]) -> String {
    let mut t = TextTable::new(&[
        "app",
        "hit",
        &format!("FE@{fast_label}"),
        &format!("SE@{fast_label}"),
        &format!("spd@{fast_label}"),
        &format!("FE@{slow_label}"),
        &format!("SE@{slow_label}"),
        &format!("spd@{slow_label}"),
    ]);
    let mut all = rows.to_vec();
    all.push(averages(rows));
    for r in &all {
        t.row(vec![
            r.name.clone(),
            ratio(Some(r.fast.hit_ratio)),
            frac3(r.fast.fe),
            format!("{:.2}", r.fast.se),
            format!("{:.2}", r.fast.speedup),
            frac3(r.slow.fe),
            format!("{:.2}", r.slow.se),
            format!("{:.2}", r.slow.speedup),
        ]);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn division_speedups_exceed_multiplication_speedups() {
        let cfg = ExpConfig::quick();
        let t11 = averages(&table11(cfg).unwrap());
        let t12 = averages(&table12(cfg).unwrap());
        // Paper: fdiv memoing averages 1.05–1.15, fmul only 1.02–1.03.
        assert!(
            t11.slow.speedup > t12.slow.speedup,
            "fdiv {} must beat fmul {}",
            t11.slow.speedup,
            t12.slow.speedup
        );
        assert!(t11.slow.speedup > 1.03, "fdiv speedup {}", t11.slow.speedup);
    }

    #[test]
    fn slower_units_benefit_more() {
        let rows = table11(ExpConfig::quick()).unwrap();
        for r in &rows {
            assert!(
                r.slow.speedup + 1e-9 >= r.fast.speedup,
                "{}: 39-cycle divider gains at least as much as 13-cycle",
                r.name
            );
        }
    }

    #[test]
    fn combined_memoization_beats_either_alone() {
        let cfg = ExpConfig::quick();
        let t11 = averages(&table11(cfg).unwrap());
        let t12 = averages(&table12(cfg).unwrap());
        let t13 = averages(&table13(cfg).unwrap());
        assert!(t13.slow.speedup + 1e-9 >= t11.slow.speedup.max(t12.slow.speedup));
        // Paper's headline: average speedup up to ≈ 1.2 on the slow profile.
        assert!(t13.slow.speedup > 1.05, "combined speedup {}", t13.slow.speedup);
    }

    #[test]
    fn amdahl_matches_direct_measurement() {
        for r in table13(ExpConfig::quick()).unwrap() {
            assert!(
                (r.slow.speedup - r.slow.measured).abs() < 1e-6,
                "{}: analytic {} vs measured {}",
                r.name,
                r.slow.speedup,
                r.slow.measured
            );
        }
    }

    #[test]
    fn render_has_all_apps_and_average() {
        let rows = table11(ExpConfig::quick()).unwrap();
        let s = render("Table 11", "13c", "39c", &rows);
        for app in SPEEDUP_APPS {
            assert!(s.contains(app));
        }
        assert!(s.contains("average"));
    }
}

//! Typed errors for the experiment harness.
//!
//! Experiments used to `expect()` their way past fallible lookups (app
//! registries, regression fits); a typo in an app list or a degenerate
//! scatter would abort the whole reproduction run. Every runner now
//! returns [`ExperimentError`] instead, and `all_experiments` downgrades a
//! failing experiment to a reported failure rather than a crash.

use std::fmt;

use memo_fit::FitError;
use memo_workloads::mm::MmApp;

/// Why an experiment could not produce its table or figure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// An application name is missing from its suite registry.
    UnknownApp {
        /// Which registry was consulted (`"mm"` or `"sci"`).
        suite: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A least-squares fit failed (empty or degenerate scatter).
    Fit(FitError),
    /// A differential transparency check observed diverging outputs.
    Transparency {
        /// The application whose outputs diverged.
        app: String,
        /// What diverged, human-readable.
        detail: String,
    },
    /// A paper artifact number outside the reproduced set (tables 1–13,
    /// figures 2–4).
    UnknownArtifact {
        /// `"table"` or `"figure"`.
        kind: &'static str,
        /// The rejected number.
        n: usize,
    },
    /// A custom sweep request named an invalid grid (bad axis values,
    /// unbuildable geometry, or two axes at once).
    InvalidSweep(String),
    /// The scorecard ran but one or more claims do not hold — partial
    /// failure that must not exit 0.
    Scorecard {
        /// `source — statement` of every failing claim.
        failing: Vec<String>,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownApp { suite, name } => {
                write!(f, "application {name:?} is not registered in the {suite} suite")
            }
            ExperimentError::Fit(e) => write!(f, "regression fit failed: {e}"),
            ExperimentError::Transparency { app, detail } => {
                write!(f, "transparency violated in {app}: {detail}")
            }
            ExperimentError::UnknownArtifact { kind, n } => {
                write!(f, "no {kind} {n} in the reproduction (tables 1-13, figures 2-4)")
            }
            ExperimentError::InvalidSweep(why) => write!(f, "invalid sweep request: {why}"),
            ExperimentError::Scorecard { failing } => {
                write!(f, "{} scorecard claim(s) FAIL: {}", failing.len(), failing.join("; "))
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for ExperimentError {
    fn from(e: FitError) -> Self {
        ExperimentError::Fit(e)
    }
}

/// Resolve an MM application by name, as a typed error instead of a panic.
pub fn find_mm(name: &str) -> Result<MmApp, ExperimentError> {
    memo_workloads::mm::find(name)
        .ok_or_else(|| ExperimentError::UnknownApp { suite: "mm", name: name.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_mm_resolves_and_reports() {
        assert!(find_mm("vspatial").is_ok());
        let err = find_mm("vbogus").unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnknownApp { suite: "mm", name: "vbogus".to_string() }
        );
        assert!(err.to_string().contains("vbogus"));
    }

    #[test]
    fn fit_errors_convert() {
        let err: ExperimentError = FitError::BadData.into();
        assert!(err.to_string().contains("fit failed"));
    }
}

//! Table 9 — trivial-operation policies: memoize them, exclude them, or
//! integrate their detection into the MEMO-TABLE front end.

use memo_table::{MemoConfig, OpKind, TrivialPolicy};
use memo_workloads::suite::{replay_stats_fused, SweepSpec};

use crate::error::find_mm;
use crate::format::{ratio, TextTable};
use crate::{parallel, results, traces, ExpConfig, ExperimentError};

/// The applications the paper tabulates in Table 9.
pub const TABLE9_APPS: [&str; 8] =
    ["vdiff", "vcost", "vgauss", "vspatial", "vslope", "vgef", "vdetilt", "venhance"];

/// Per-kind Table 9 cells: trivial fraction and the three policy ratios.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrivialCells {
    /// Whether the application issues this kind at all.
    pub present: bool,
    /// Fraction of operations that are trivial ("trv").
    pub trivial_fraction: f64,
    /// Hit ratio with trivial operations memoized like all others ("all").
    pub all: f64,
    /// Hit ratio over non-trivial operations only ("non").
    pub non: f64,
    /// Hit ratio with integrated trivial detection ("intgr").
    pub integrated: f64,
}

/// One application row of Table 9.
#[derive(Debug, Clone)]
pub struct TrivialRow {
    /// Application name.
    pub name: String,
    /// Cells for integer multiply.
    pub int_mul: TrivialCells,
    /// Cells for fp multiply.
    pub fp_mul: TrivialCells,
    /// Cells for fp divide.
    pub fp_div: TrivialCells,
}

fn spec_with(policy: TrivialPolicy) -> SweepSpec {
    let cfg = MemoConfig::builder(32).trivial(policy).build().expect("32/4 is valid");
    SweepSpec::finite(cfg, &[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv])
}

/// Compute Table 9 over the image corpus — each application is recorded
/// once and replayed against the three trivial policies.
///
/// # Errors
///
/// Fails if a [`TABLE9_APPS`] name is missing from the registry.
pub fn table9(cfg: ExpConfig) -> Result<Vec<TrivialRow>, ExperimentError> {
    results::cached("table9", cfg, || table9_uncached(cfg))
}

fn table9_uncached(cfg: ExpConfig) -> Result<Vec<TrivialRow>, ExperimentError> {
    let apps = TABLE9_APPS.iter().map(|name| find_mm(name)).collect::<Result<Vec<_>, _>>()?;
    Ok(parallel::par_map(apps, |app| {
        let app_traces = traces::mm_traces(cfg, &app);
        // Exclude and Integrate keep trivials out of the table and see
        // identical traffic, so they share one fused pass; Memoize routes
        // trivials through the table and needs its own.
        let filtered = replay_stats_fused(
            app_traces.iter(),
            &[spec_with(TrivialPolicy::Exclude), spec_with(TrivialPolicy::Integrate)],
        );
        let through = replay_stats_fused(app_traces.iter(), &[spec_with(TrivialPolicy::Memoize)]);
        let (memoize, exclude, integrate) = (&through[0], &filtered[0], &filtered[1]);

        let cells = |kind: OpKind| {
            let m = memoize.stats(kind).expect("bank covers kind");
            if m.ops_seen == 0 {
                return TrivialCells::default();
            }
            let e = exclude.stats(kind).expect("bank covers kind");
            let i = integrate.stats(kind).expect("bank covers kind");
            TrivialCells {
                present: true,
                trivial_fraction: m.trivial_fraction(),
                all: m.hit_ratio(TrivialPolicy::Memoize),
                non: e.hit_ratio(TrivialPolicy::Exclude),
                integrated: i.hit_ratio(TrivialPolicy::Integrate),
            }
        };

        TrivialRow {
            name: app.name.to_string(),
            int_mul: cells(OpKind::IntMul),
            fp_mul: cells(OpKind::FpMul),
            fp_div: cells(OpKind::FpDiv),
        }
    }))
}

/// Render the Table 9 layout.
#[must_use]
pub fn render(rows: &[TrivialRow]) -> String {
    let mut t = TextTable::new(&[
        "application",
        "im:trv", "im:all", "im:non", "im:intgr",
        "fm:trv", "fm:all", "fm:non", "fm:intgr",
        "fd:trv", "fd:all", "fd:non", "fd:intgr",
    ]);
    let cell = |c: &TrivialCells| -> Vec<String> {
        if c.present {
            vec![
                ratio(Some(c.trivial_fraction)),
                ratio(Some(c.all)),
                ratio(Some(c.non)),
                ratio(Some(c.integrated)),
            ]
        } else {
            vec!["-".into(), "-".into(), "-".into(), "-".into()]
        }
    };
    for r in rows {
        let mut line = vec![r.name.clone()];
        line.extend(cell(&r.int_mul));
        line.extend(cell(&r.fp_mul));
        line.extend(cell(&r.fp_div));
        t.row(line);
    }
    format!(
        "Table 9: Hit ratios under trivial-operation policies (32-entry, 4-way)\n\
         trv = trivial fraction, all = trivials memoized, non = trivials excluded,\n\
         intgr = integrated trivial detection (trivials count as hits)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_detection_wins_where_trivials_exist() {
        // The paper's point: "intgr" gives the highest hit ratios when the
        // trivial fraction is substantial.
        let rows = table9(ExpConfig::quick()).unwrap();
        assert_eq!(rows.len(), 8);
        let mut checked = 0;
        for r in &rows {
            for c in [&r.int_mul, &r.fp_mul, &r.fp_div] {
                if c.present && c.trivial_fraction > 0.1 {
                    assert!(
                        c.integrated + 1e-9 >= c.non,
                        "{}: intgr {} >= non {} (trv {})",
                        r.name,
                        c.integrated,
                        c.non,
                        c.trivial_fraction
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "at least one op class has substantial trivials");
    }

    #[test]
    fn vdiff_has_substantial_trivial_multiplies() {
        // Sobel's ±1 taps are trivial multiplies (paper: trv .62 for fmul).
        let rows = table9(ExpConfig::quick()).unwrap();
        let vdiff = rows.iter().find(|r| r.name == "vdiff").unwrap();
        assert!(
            vdiff.fp_mul.trivial_fraction > 0.3,
            "vdiff fmul trivial fraction {}",
            vdiff.fp_mul.trivial_fraction
        );
    }

    #[test]
    fn absent_kinds_render_dashes() {
        let rows = table9(ExpConfig::quick()).unwrap();
        let vdetilt = rows.iter().find(|r| r.name == "vdetilt").unwrap();
        assert!(!vdetilt.fp_div.present);
        let s = render(&rows);
        assert!(s.contains("vdetilt"));
    }
}

//! Figures 2, 3, 4 — the entropy correlation, the table-size sweep, and
//! the associativity sweep.

use std::sync::Arc;

use memo_fit::{fit_line, Line};
use memo_imaging::entropy;
use memo_table::{Assoc, MemoConfig, OpKind};
use memo_workloads::mm;
use memo_workloads::suite::{replay_ratios, replay_stats_fused, SweepSpec};

use crate::format::TextTable;
use crate::{parallel, results, traces, ExpConfig, ExperimentError};

// The compact structure-of-arrays operand trace now lives in `memo_sim`
// (recorded once per kernel/input by the process-wide cache in
// [`crate::traces`]); re-exported here for sweep consumers.
pub use memo_sim::OpTrace;

/// The five sample applications the paper uses for Figures 3 and 4.
pub const SAMPLE_APPS: [&str; 5] = ["vcost", "venhance", "vgpwl", "vspatial", "vsurf"];

// ---------------------------------------------------------------------------
// Figure 2 — hit ratio vs entropy
// ---------------------------------------------------------------------------

/// One scatter point of Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct EntropyPoint {
    /// Whole-image entropy (bits).
    pub entropy_full: f64,
    /// Mean 8×8-window entropy (bits).
    pub entropy_8: f64,
    /// fmul hit ratio, if the app multiplies.
    pub fp_mul: Option<f64>,
    /// fdiv hit ratio, if the app divides.
    pub fp_div: Option<f64>,
}

/// Figure 2: the four panels' points and fitted lines.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// One point per (application, byte-image) pair.
    pub points: Vec<EntropyPoint>,
    /// fdiv hit ratio vs 8×8 entropy.
    pub fdiv_vs_win8: Line,
    /// fdiv hit ratio vs whole-image entropy.
    pub fdiv_vs_full: Line,
    /// fmul hit ratio vs 8×8 entropy.
    pub fmul_vs_win8: Line,
    /// fmul hit ratio vs whole-image entropy.
    pub fmul_vs_full: Line,
}

/// Compute Figure 2 over the corpus (byte/integer images only — FLOAT
/// imagery has no defined entropy, as in the paper).
///
/// # Errors
///
/// Fails if a panel's scatter is too small or degenerate to fit.
pub fn figure2(cfg: ExpConfig) -> Result<Figure2, ExperimentError> {
    results::cached("figure2", cfg, || figure2_uncached(cfg))
}

fn figure2_uncached(cfg: ExpConfig) -> Result<Figure2, ExperimentError> {
    let corpus = traces::corpus(cfg.image_scale);
    let apps = mm::apps();
    // One recording per (app, image) — shared with Tables 7 and 8.
    let app_traces: Vec<_> = apps.iter().map(|app| traces::mm_traces(cfg, app)).collect();
    let spec = SweepSpec::paper_default();
    let per_image = parallel::par_map((0..corpus.len()).collect(), |i| {
        let Some(report) = entropy::report(&corpus[i].image) else {
            return Vec::new();
        };
        let mut points = Vec::new();
        for app_traces in &app_traces {
            let hits = replay_ratios([&app_traces[i]], spec);
            if hits.fp_mul.is_none() && hits.fp_div.is_none() {
                continue;
            }
            points.push(EntropyPoint {
                entropy_full: report.full,
                entropy_8: report.win8,
                fp_mul: hits.fp_mul,
                fp_div: hits.fp_div,
            });
        }
        points
    });
    let points: Vec<EntropyPoint> = per_image.into_iter().flatten().collect();

    let panel = |fx: fn(&EntropyPoint) -> f64,
                 fy: fn(&EntropyPoint) -> Option<f64>|
     -> Result<Line, ExperimentError> {
        let (xs, ys): (Vec<f64>, Vec<f64>) =
            points.iter().filter_map(|p| fy(p).map(|y| (fx(p), y))).unzip();
        Ok(fit_line(&xs, &ys)?)
    };

    Ok(Figure2 {
        fdiv_vs_win8: panel(|p| p.entropy_8, |p| p.fp_div)?,
        fdiv_vs_full: panel(|p| p.entropy_full, |p| p.fp_div)?,
        fmul_vs_win8: panel(|p| p.entropy_8, |p| p.fp_mul)?,
        fmul_vs_full: panel(|p| p.entropy_full, |p| p.fp_mul)?,
        points,
    })
}

impl Figure2 {
    /// Render the four fitted lines (the paper's per-panel summary: about
    /// a 5 % hit-ratio drop per entropy bit).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["panel", "slope (hit/bit)", "intercept", "points"]);
        let n_div = self.points.iter().filter(|p| p.fp_div.is_some()).count();
        let n_mul = self.points.iter().filter(|p| p.fp_mul.is_some()).count();
        for (name, line, n) in [
            ("fdiv vs 8x8 entropy", self.fdiv_vs_win8, n_div),
            ("fdiv vs full entropy", self.fdiv_vs_full, n_div),
            ("fmul vs 8x8 entropy", self.fmul_vs_win8, n_mul),
            ("fmul vs full entropy", self.fmul_vs_full, n_mul),
        ] {
            t.row(vec![
                name.to_string(),
                format!("{:+.4}", line.slope),
                format!("{:.3}", line.intercept),
                n.to_string(),
            ]);
        }
        format!(
            "Figure 2: Hit ratios vs entropy (Marquardt-Levenberg best fit)\n{}",
            t.render()
        )
    }

    /// Dump the scatter points as CSV (for external plotting).
    #[must_use]
    pub fn points_csv(&self) -> String {
        let mut out = String::from("entropy_full,entropy_8x8,fmul_hit,fdiv_hit\n");
        for p in &self.points {
            let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
            out.push_str(&format!(
                "{:.4},{:.4},{},{}\n",
                p.entropy_full,
                p.entropy_8,
                opt(p.fp_mul),
                opt(p.fp_div)
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Figures 3 & 4 — geometry sweeps
// ---------------------------------------------------------------------------

/// Aggregate hit-ratio statistics at one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Sweep coordinate: entry count (Fig. 3) or way count (Fig. 4).
    pub x: usize,
    /// Mean hit ratio across the sample apps.
    pub avg: f64,
    /// Minimum across the sample apps.
    pub min: f64,
    /// Maximum across the sample apps.
    pub max: f64,
}

/// One operation kind's sweep curve.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// `fmul` or `fdiv`.
    pub kind: OpKind,
    /// The measured points, in sweep order.
    pub points: Vec<SweepPoint>,
}

/// The cached per-image traces of the five sample apps, one `Vec` per app
/// in [`SAMPLE_APPS`] order.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn sample_traces(cfg: ExpConfig) -> Result<Vec<Arc<Vec<OpTrace>>>, ExperimentError> {
    SAMPLE_APPS
        .iter()
        .map(|name| Ok(traces::mm_traces(cfg, &crate::error::find_mm(name)?)))
        .collect()
}

/// Measure one operation kind's hit-ratio curve over an arbitrary
/// configuration grid (Figures 3/4 are instances; `runner::sweep` serves
/// caller-chosen grids through the same fused path). Each `(x, config)`
/// pair becomes one [`SweepPoint`] at coordinate `x`.
#[must_use]
pub fn sweep_curve(
    traces: &[Arc<Vec<OpTrace>>],
    kind: OpKind,
    configs: &[(usize, MemoConfig)],
) -> SweepCurve {
    sweep(traces, kind, configs)
}

fn sweep(traces: &[Arc<Vec<OpTrace>>], kind: OpKind, configs: &[(usize, MemoConfig)]) -> SweepCurve {
    // One fused stack pass per application serves the entire grid
    // (applications fan out across cores; the recorded traces are shared).
    let specs: Vec<SweepSpec> =
        configs.iter().map(|&(_, c)| SweepSpec::finite(c, &[kind])).collect();
    let per_app: Vec<Vec<f64>> = parallel::par_map(traces.to_vec(), |app_traces| {
        replay_stats_fused(app_traces.iter(), &specs)
            .iter()
            .zip(configs)
            .map(|(ks, &(_, c))| {
                ks.stats(kind).expect("spec attaches a table to kind").hit_ratio(c.trivial())
            })
            .collect()
    });
    let points = configs
        .iter()
        .enumerate()
        .map(|(i, &(x, _))| {
            let ratios: Vec<f64> = per_app.iter().map(|app| app[i]).collect();
            SweepPoint {
                x,
                avg: ratios.iter().sum::<f64>() / ratios.len() as f64,
                min: ratios.iter().cloned().fold(f64::INFINITY, f64::min),
                max: ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect();
    SweepCurve { kind, points }
}

/// Figure 3: hit ratio vs LUT size (8 → 8192 entries, 4-way), for fmul
/// and fdiv, over the five sample applications.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn figure3(cfg: ExpConfig) -> Result<[SweepCurve; 2], ExperimentError> {
    results::cached("figure3", cfg, || {
        let traces = sample_traces(cfg)?;
        let sizes = [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];
        let configs: Vec<(usize, MemoConfig)> = sizes
            .iter()
            .map(|&s| {
                (s, MemoConfig::builder(s).assoc(Assoc::Ways(4)).build().expect("size is valid"))
            })
            .collect();
        Ok([sweep(&traces, OpKind::FpMul, &configs), sweep(&traces, OpKind::FpDiv, &configs)])
    })
}

/// Figure 4: hit ratio vs associativity (direct-mapped → 8-way) at 32
/// entries.
///
/// # Errors
///
/// Fails if a [`SAMPLE_APPS`] name is missing from the registry.
pub fn figure4(cfg: ExpConfig) -> Result<[SweepCurve; 2], ExperimentError> {
    results::cached("figure4", cfg, || {
        let traces = sample_traces(cfg)?;
        let ways = [1usize, 2, 4, 8];
        let configs: Vec<(usize, MemoConfig)> = ways
            .iter()
            .map(|&w| {
                let assoc = if w == 1 { Assoc::DirectMapped } else { Assoc::Ways(w) };
                (w, MemoConfig::builder(32).assoc(assoc).build().expect("geometry is valid"))
            })
            .collect();
        Ok([sweep(&traces, OpKind::FpMul, &configs), sweep(&traces, OpKind::FpDiv, &configs)])
    })
}

/// Render a sweep figure as a table of avg (min–max) per point.
#[must_use]
pub fn render_sweep(title: &str, x_label: &str, curves: &[SweepCurve]) -> String {
    let mut t = TextTable::new(&[x_label, "fmul avg", "fmul min-max", "fdiv avg", "fdiv min-max"]);
    let n = curves[0].points.len();
    for i in 0..n {
        let (m, d) = (&curves[0].points[i], &curves[1].points[i]);
        t.row(vec![
            m.x.to_string(),
            format!("{:.3}", m.avg),
            format!("{:.2}-{:.2}", m.min, m.max),
            format!("{:.3}", d.avg),
            format!("{:.2}-{:.2}", d.min, d.max),
        ]);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_slopes_are_negative() {
        let fig = figure2(ExpConfig::quick()).unwrap();
        // The paper's takeaway: hit ratio falls with entropy, roughly 5 %
        // per bit on the windowed panels.
        assert!(fig.fdiv_vs_win8.slope < 0.0, "fdiv/8x8 slope {}", fig.fdiv_vs_win8.slope);
        assert!(fig.fmul_vs_win8.slope < 0.0, "fmul/8x8 slope {}", fig.fmul_vs_win8.slope);
        assert!(fig.points.len() > 50, "scatter has real mass: {}", fig.points.len());
        let csv = fig.points_csv();
        assert!(csv.lines().count() == fig.points.len() + 1);
    }

    #[test]
    fn figure3_grows_and_saturates() {
        let curves = figure3(ExpConfig::quick()).unwrap();
        for curve in &curves {
            let first = curve.points.first().unwrap().avg;
            let biggest = curve.points.last().unwrap().avg;
            assert!(
                biggest >= first,
                "{}: hit ratio must not shrink with size",
                curve.kind
            );
            // Saturation: the last doubling adds almost nothing.
            let n = curve.points.len();
            let tail_gain = curve.points[n - 1].avg - curve.points[n - 2].avg;
            assert!(tail_gain < 0.05, "{}: tail gain {tail_gain}", curve.kind);
        }
    }

    #[test]
    fn figure4_direct_mapped_is_worst() {
        let curves = figure4(ExpConfig::quick()).unwrap();
        for curve in &curves {
            let dm = curve.points[0].avg;
            let four_way = curve.points[2].avg;
            assert!(
                four_way + 1e-9 >= dm,
                "{}: 4-way {} vs direct-mapped {}",
                curve.kind,
                four_way,
                dm
            );
        }
        // Beyond 4 ways hardly improves (paper: flat past 4).
        let fdiv = &curves[1];
        let gain = fdiv.points[3].avg - fdiv.points[2].avg;
        assert!(gain.abs() < 0.05, "8-way adds {gain}");
    }

    #[test]
    fn render_sweep_formats() {
        let curves = figure4(ExpConfig::quick()).unwrap();
        let s = render_sweep("Figure 4", "ways", &curves);
        assert!(s.contains("Figure 4"));
        assert!(s.lines().count() >= 6);
    }
}

//! A sharded, capacity-bounded, single-flight memoization cache.
//!
//! This is the paper's memo-table idea lifted to the request level: a
//! small associative store in front of an expensive unit that returns a
//! previously computed result without re-running the computation. The
//! process-wide experiment cache ([`crate::results`]) and the
//! `memo-serve` response cache are both instances of this one type.
//!
//! Three properties the call sites need:
//!
//! * **sharded** — the key space is split across independently locked
//!   shards, so unrelated computations never contend on one mutex;
//! * **single-flight** — each key holds a [`OnceLock`] cell, so
//!   concurrent requests for the *same* key block on one computation
//!   instead of redundantly computing (the request-level analogue of the
//!   table returning a hit in one cycle);
//! * **bounded** — each shard evicts its least-recently-used *completed*
//!   entry once over capacity. In-flight entries are never evicted, so
//!   single-flight coalescing cannot be defeated by pressure.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Monotonic cache counters (cumulative since construction; `clear` does
/// not reset them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a completed entry.
    pub hits: u64,
    /// Lookups that created a new entry and ran the computation.
    pub misses: u64,
    /// Lookups that joined another request's in-flight computation.
    pub coalesced: u64,
    /// Tiered lookups whose value was loaded from the persistent tier
    /// instead of computed (see [`ShardedLru::get_or_compute_tiered`]).
    pub disk_hits: u64,
    /// Completed entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident (completed or in flight).
    pub len: usize,
    /// Approximate bytes held by resident completed values, as measured
    /// by the configured weigher (0 when no weigher is set). Approximate:
    /// the gauge is updated outside the shard locks, so a racing eviction
    /// can transiently skew it; it is eventually consistent.
    pub approx_bytes: u64,
}

/// Which tier satisfied a [`ShardedLru::get_or_compute_tiered`] lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOutcome {
    /// The value was already resident and complete in memory.
    Memory,
    /// The value was loaded from the persistent tier (no computation).
    Disk,
    /// The value was computed (and offered to the persistent tier).
    /// Coalesced waiters that joined an in-flight lookup also report
    /// `Computed` — they cannot know which tier the flight leader used.
    Computed,
}

/// Circuit-breaker state for a persistent tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every lookup may probe the tier.
    Closed,
    /// Tripped: the tier is skipped entirely until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe is allowed through; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

/// A snapshot of a [`TierBreaker`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierBreakerStats {
    /// Current state.
    pub state: BreakerState,
    /// Closed → Open transitions (including half-open probes that failed).
    pub trips: u64,
    /// Failures recorded, cumulative.
    pub failures: u64,
    /// Half-open probes admitted.
    pub probes: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Consecutive failures while closed; reset by any success.
    consecutive: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A circuit breaker for the disk tier of
/// [`ShardedLru::get_or_compute_tiered_guarded`] — the same
/// trip/degrade/probe protocol the `MemoBank` soft-error breaker applies
/// to a faulty memo table, one level up: after `threshold` *consecutive*
/// store failures the tier is skipped (lookups degrade to
/// memory → compute), and after `cooldown` a single probe is let through
/// to test recovery.
///
/// A `threshold` of 0 disables the breaker: it never trips.
#[derive(Debug)]
pub struct TierBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
    failures: AtomicU64,
    probes: AtomicU64,
}

impl TierBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// probing again `cooldown` after each trip.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        TierBreaker {
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            trips: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// May the caller touch the tier right now? Open breakers start a
    /// half-open probe once the cooldown has elapsed; in half-open, only
    /// one probe is admitted at a time. A `true` answer obligates the
    /// caller to report [`record_success`](Self::record_success) or
    /// [`record_failure`](Self::record_failure).
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled =
                    inner.opened_at.is_none_or(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    false
                } else {
                    inner.probe_in_flight = true;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        }
    }

    /// The tier answered (a hit *or* a clean miss): close the breaker and
    /// forget the failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.state = BreakerState::Closed;
        inner.consecutive = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }

    /// The tier failed. Closed breakers trip once the streak reaches the
    /// threshold; a failed half-open probe re-opens immediately.
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive += 1;
                if inner.consecutive >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_in_flight = false;
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            // Failures reported while open (e.g. a persist that was
            // already in flight when the breaker tripped) don't extend
            // the cooldown — recovery probing must not starve.
            BreakerState::Open => {}
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }

    /// Snapshot the counters.
    #[must_use]
    pub fn stats(&self) -> TierBreakerStats {
        TierBreakerStats {
            state: self.state(),
            trips: self.trips.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

/// A deterministic FNV-1a hasher: shard selection must not depend on the
/// process's random `HashMap` seed, so cache behaviour is reproducible.
#[derive(Debug, Default)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
}

struct Entry<V> {
    cell: Arc<OnceLock<Arc<V>>>,
    /// Recency stamp from the shard clock; smallest = coldest.
    stamp: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
}

/// The cache. `K` must hash deterministically (it is hashed with FNV-1a
/// for shard selection); `V` is stored behind an [`Arc`] so readers keep
/// their result across evictions.
pub struct ShardedLru<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    /// Max completed entries per shard; `usize::MAX` when unbounded.
    per_shard: usize,
    /// Measures a completed value's footprint for the byte gauge.
    weigher: fn(&V) -> usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> ShardedLru<K, V> {
    /// A cache with `shards` shards holding at most `capacity` completed
    /// entries in total (rounded up to a multiple of the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "a zero-capacity cache cannot hold results");
        let per_shard = if capacity == usize::MAX {
            usize::MAX
        } else {
            capacity.div_ceil(shards)
        };
        let shards = (0..shards)
            .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
            .collect();
        ShardedLru {
            shards,
            per_shard,
            weigher: |_| 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Install a weigher measuring each completed value's approximate
    /// footprint; the aggregate is exposed as [`CacheStats::approx_bytes`].
    /// Set before the cache holds values (weights of values already
    /// resident are not retroactively measured).
    #[must_use]
    pub fn with_weigher(mut self, weigher: fn(&V) -> usize) -> Self {
        self.weigher = weigher;
        self
    }

    /// An unbounded cache (the experiment-result store: every key is
    /// eventually re-requested, so eviction would only cost recomputes).
    #[must_use]
    pub fn unbounded(shards: usize) -> Self {
        Self::new(shards, usize::MAX)
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = BuildHasherDefault::<Fnv1a>::default().hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Return the value for `key`, computing it on first request.
    ///
    /// The shard lock is held only to fetch or create the per-key cell;
    /// `compute` runs under the cell's [`OnceLock`], so distinct keys
    /// compute concurrently while concurrent requests for one key block
    /// on a single computation.
    pub fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let (cell, fresh) = self.lookup_cell(key);

        let mut ran = false;
        let value = Arc::clone(cell.get_or_init(|| {
            ran = true;
            Arc::new(compute())
        }));
        if ran {
            self.bytes.fetch_add((self.weigher)(&value) as u64, Ordering::Relaxed);
        }

        if fresh && self.per_shard != usize::MAX {
            self.evict_over_capacity(key);
        }
        value
    }

    /// Like [`get_or_compute`](Self::get_or_compute), but with a
    /// persistent tier between memory and computation: on a memory miss,
    /// `load` is consulted first; only if it returns `None` does `compute`
    /// run, and the fresh value is offered to `persist`. All of this
    /// happens inside the per-key single-flight cell, so concurrent
    /// requests for one key share a single load *or* computation, and
    /// `persist` is called at most once per computed value.
    ///
    /// The returned [`TierOutcome`] says which tier answered for *this*
    /// caller; coalesced waiters report [`TierOutcome::Computed`].
    pub fn get_or_compute_tiered(
        &self,
        key: &K,
        load: impl FnOnce() -> Option<V>,
        persist: impl FnOnce(&V),
        compute: impl FnOnce() -> V,
    ) -> (Arc<V>, TierOutcome) {
        let (cell, fresh) = self.lookup_cell(key);
        if let Some(value) = cell.get() {
            // Complete before we arrived (the lookup counted the hit).
            return (Arc::clone(value), TierOutcome::Memory);
        }

        let mut ran = None;
        let value = Arc::clone(cell.get_or_init(|| {
            let (value, outcome) = match load() {
                Some(value) => (value, TierOutcome::Disk),
                None => {
                    let value = compute();
                    persist(&value);
                    (value, TierOutcome::Computed)
                }
            };
            ran = Some(outcome);
            Arc::new(value)
        }));
        let outcome = match ran {
            Some(outcome) => {
                if outcome == TierOutcome::Disk {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                }
                self.bytes.fetch_add((self.weigher)(&value) as u64, Ordering::Relaxed);
                outcome
            }
            // Someone else's flight satisfied us while we raced to the
            // cell; we did no tier probing ourselves.
            None => TierOutcome::Computed,
        };

        if fresh && self.per_shard != usize::MAX {
            self.evict_over_capacity(key);
        }
        (value, outcome)
    }

    /// [`get_or_compute_tiered`](Self::get_or_compute_tiered) with a
    /// fallible persistent tier behind a [`TierBreaker`].
    ///
    /// The degraded-mode ladder, per lookup:
    ///
    /// * breaker closed (or half-open with this caller as the probe):
    ///   `load` runs; `Ok(Some)` is a disk hit, `Ok(None)` a clean miss
    ///   (both record success), `Err` records a failure and falls through
    ///   to `compute`;
    /// * breaker open: `load` and `persist` are skipped entirely —
    ///   memory → compute, the store is not touched;
    /// * `persist` failures record on the breaker but never fail the
    ///   lookup (the value is already computed and cached in memory).
    ///
    /// The lookup itself is therefore infallible: a broken disk degrades
    /// to recomputation, never to an error.
    pub fn get_or_compute_tiered_guarded(
        &self,
        key: &K,
        breaker: &TierBreaker,
        load: impl FnOnce() -> Result<Option<V>, ()>,
        persist: impl FnOnce(&V) -> Result<(), ()>,
        compute: impl FnOnce() -> V,
    ) -> (Arc<V>, TierOutcome) {
        let (cell, fresh) = self.lookup_cell(key);
        if let Some(value) = cell.get() {
            return (Arc::clone(value), TierOutcome::Memory);
        }

        let mut ran = None;
        let value = Arc::clone(cell.get_or_init(|| {
            let loaded = if breaker.allow() {
                match load() {
                    Ok(found) => {
                        breaker.record_success();
                        found
                    }
                    Err(()) => {
                        breaker.record_failure();
                        None
                    }
                }
            } else {
                None // tier skipped: degrade to memory → compute
            };
            let (value, outcome) = match loaded {
                Some(value) => (value, TierOutcome::Disk),
                None => {
                    let value = compute();
                    if breaker.allow() {
                        match persist(&value) {
                            Ok(()) => breaker.record_success(),
                            Err(()) => breaker.record_failure(),
                        }
                    }
                    (value, TierOutcome::Computed)
                }
            };
            ran = Some(outcome);
            Arc::new(value)
        }));
        let outcome = match ran {
            Some(outcome) => {
                if outcome == TierOutcome::Disk {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                }
                self.bytes.fetch_add((self.weigher)(&value) as u64, Ordering::Relaxed);
                outcome
            }
            None => TierOutcome::Computed,
        };

        if fresh && self.per_shard != usize::MAX {
            self.evict_over_capacity(key);
        }
        (value, outcome)
    }

    /// Fetch or create the single-flight cell for `key`, updating recency
    /// and the hit/coalesced/miss counters. Returns `(cell, fresh)`.
    fn lookup_cell(&self, key: &K) -> (Arc<OnceLock<Arc<V>>>, bool) {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let complete = entry.cell.get().is_some();
                let counter = if complete { &self.hits } else { &self.coalesced };
                counter.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(&entry.cell), false)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let cell = Arc::new(OnceLock::new());
                shard.map.insert(key.clone(), Entry { cell: Arc::clone(&cell), stamp });
                (cell, true)
            }
        }
    }

    /// Return the value for `key` only if it is already resident and
    /// complete (no computation, counted as a hit), else `None`.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        let entry = shard.map.get_mut(key)?;
        entry.stamp = stamp;
        let value = entry.cell.get().map(Arc::clone)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Drop the coldest completed entries of `key`'s shard until it is
    /// back under capacity. In-flight entries never leave; if the shard
    /// is over capacity purely with in-flight work it temporarily
    /// overflows (bounded by the caller's concurrency).
    fn evict_over_capacity(&self, key: &K) {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        while shard.map.len() > self.per_shard {
            let coldest = shard
                .map
                .iter()
                .filter(|(_, e)| e.cell.get().is_some())
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(coldest) = coldest else { break };
            if let Some(entry) = shard.map.remove(&coldest) {
                if let Some(value) = entry.cell.get() {
                    self.bytes.fetch_sub((self.weigher)(value) as u64, Ordering::Relaxed);
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Forget every entry (counters keep accumulating; the byte gauge
    /// returns to zero, in-flight values excepted).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            for entry in shard.map.values() {
                if let Some(value) = entry.cell.get() {
                    self.bytes.fetch_sub((self.weigher)(value) as u64, Ordering::Relaxed);
                }
            }
            shard.map.clear();
        }
    }

    /// Resident entry count across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// `true` when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            approx_bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(4);
        let runs = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(&7, || {
                runs.fetch_add(1, Ordering::Relaxed);
                49
            });
            assert_eq!(*v, 49);
        }
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn concurrent_requests_single_flight() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(4);
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let v = cache.get_or_compute(&1, || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so other threads arrive
                        // while this computation is in flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        11
                    });
                    assert_eq!(*v, 11);
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "exactly one thread computes");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // One shard so the capacity bound is exact.
        let cache: ShardedLru<u32, u32> = ShardedLru::new(1, 2);
        cache.get_or_compute(&1, || 1);
        cache.get_or_compute(&2, || 2);
        cache.get_or_compute(&1, || unreachable!("still resident")); // touch 1: now 2 is coldest
        cache.get_or_compute(&3, || 3); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&2).is_none(), "LRU key evicted");
        assert_eq!(*cache.get_or_compute(&1, || unreachable!("recently used survives")), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_forgets_but_counters_accumulate() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(2);
        cache.get_or_compute(&1, || 1);
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_compute(&1, || 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn tiered_lookup_reports_the_answering_tier() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(2);
        // First request: no disk copy → computed (and persisted).
        let persisted = AtomicUsize::new(0);
        let (v, outcome) = cache.get_or_compute_tiered(
            &1,
            || None,
            |_| {
                persisted.fetch_add(1, Ordering::Relaxed);
            },
            || 10,
        );
        assert_eq!((*v, outcome), (10, TierOutcome::Computed));
        assert_eq!(persisted.load(Ordering::Relaxed), 1);
        // Second request for the same key: memory.
        let (v, outcome) = cache.get_or_compute_tiered(
            &1,
            || unreachable!("memory hit must not probe disk"),
            |_| unreachable!(),
            || unreachable!(),
        );
        assert_eq!((*v, outcome), (10, TierOutcome::Memory));
        // A key the disk knows: loaded, not computed.
        let (v, outcome) = cache.get_or_compute_tiered(
            &2,
            || Some(20),
            |_| unreachable!("loaded values are not re-persisted"),
            || unreachable!("loaded values are not computed"),
        );
        assert_eq!((*v, outcome), (20, TierOutcome::Disk));
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn weigher_tracks_resident_bytes_through_eviction_and_clear() {
        let cache: ShardedLru<u32, Vec<u8>> =
            ShardedLru::new(1, 2).with_weigher(Vec::len);
        cache.get_or_compute(&1, || vec![0; 100]);
        cache.get_or_compute(&2, || vec![0; 50]);
        assert_eq!(cache.stats().approx_bytes, 150);
        cache.get_or_compute(&3, || vec![0; 7]); // evicts key 1 (coldest)
        assert_eq!(cache.stats().approx_bytes, 57);
        cache.clear();
        assert_eq!(cache.stats().approx_bytes, 0);
        // The tiered path weighs loaded values too.
        let (_, outcome) = cache.get_or_compute_tiered(&4, || Some(vec![0; 9]), |_| {}, Vec::new);
        assert_eq!(outcome, TierOutcome::Disk);
        assert_eq!(cache.stats().approx_bytes, 9);
    }

    #[test]
    fn values_survive_eviction_for_holders() {
        let cache: ShardedLru<u32, Vec<u8>> = ShardedLru::new(1, 1);
        let held = cache.get_or_compute(&1, || vec![9; 3]);
        cache.get_or_compute(&2, || vec![8; 3]); // evicts 1
        assert_eq!(*held, vec![9; 3], "Arc keeps the evicted value alive");
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_recovers_via_probe() {
        let breaker = TierBreaker::new(3, Duration::from_millis(10));
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Two failures, then a success: the streak resets.
        for _ in 0..2 {
            assert!(breaker.allow());
            breaker.record_failure();
        }
        assert!(breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Three consecutive failures trip it.
        for _ in 0..3 {
            assert!(breaker.allow());
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "open: the tier is skipped");
        // After the cooldown, exactly one probe goes through.
        std::thread::sleep(Duration::from_millis(15));
        assert!(breaker.allow(), "cooldown elapsed: half-open probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow(), "only one probe at a time");
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(15));
        assert!(breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed, "successful probe closes");
        let stats = breaker.stats();
        assert_eq!(stats.trips, 2);
        assert_eq!(stats.probes, 2);
        assert_eq!(stats.failures, 6);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let breaker = TierBreaker::new(0, Duration::ZERO);
        for _ in 0..10 {
            assert!(breaker.allow());
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.stats().trips, 0);
    }

    #[test]
    fn guarded_lookup_degrades_to_compute_and_skips_a_tripped_tier() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(2);
        let breaker = TierBreaker::new(2, Duration::from_secs(60));
        // Failing loads: the value is still served (computed), and two
        // failures trip the breaker (the skipped persist can't succeed
        // either once the breaker is open).
        let (v, outcome) =
            cache.get_or_compute_tiered_guarded(&1, &breaker, || Err(()), |_| Err(()), || 10);
        assert_eq!((*v, outcome), (10, TierOutcome::Computed));
        let (v, outcome) =
            cache.get_or_compute_tiered_guarded(&2, &breaker, || Err(()), |_| Err(()), || 20);
        assert_eq!((*v, outcome), (20, TierOutcome::Computed));
        assert_eq!(breaker.state(), BreakerState::Open);
        // Open: neither load nor persist must run.
        let (v, outcome) = cache.get_or_compute_tiered_guarded(
            &3,
            &breaker,
            || unreachable!("open breaker must skip the load"),
            |_| unreachable!("open breaker must skip the persist"),
            || 30,
        );
        assert_eq!((*v, outcome), (30, TierOutcome::Computed));
        // Memory hits bypass the breaker entirely.
        let (v, outcome) = cache.get_or_compute_tiered_guarded(
            &1,
            &breaker,
            || unreachable!(),
            |_| unreachable!(),
            || unreachable!(),
        );
        assert_eq!((*v, outcome), (10, TierOutcome::Memory));
    }

    #[test]
    fn guarded_lookup_serves_disk_hits_and_persists_when_healthy() {
        let cache: ShardedLru<u32, u32> = ShardedLru::unbounded(2);
        let breaker = TierBreaker::new(2, Duration::ZERO);
        let (v, outcome) =
            cache.get_or_compute_tiered_guarded(&1, &breaker, || Ok(Some(11)), |_| unreachable!(), || {
                unreachable!()
            });
        assert_eq!((*v, outcome), (11, TierOutcome::Disk));
        assert_eq!(cache.stats().disk_hits, 1);
        let persisted = AtomicUsize::new(0);
        let (v, outcome) = cache.get_or_compute_tiered_guarded(
            &2,
            &breaker,
            || Ok(None),
            |_| {
                persisted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            || 22,
        );
        assert_eq!((*v, outcome), (22, TierOutcome::Computed));
        assert_eq!(persisted.load(Ordering::Relaxed), 1);
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}

//! Record-once / replay-many correctness: for **every** kernel in the
//! evaluation — all MM applications and both scientific suites — the
//! memo statistics produced by replaying the recorded operand trace must
//! be bit-identical to running the kernel natively against the same bank
//! recipe. This is the property that lets every sweep driver share one
//! recording.

use memo_experiments::{traces, ExpConfig};
use memo_table::OpKind;
use memo_workloads::suite::{
    measure_mm_app, measure_mm_stats, measure_sci_app, mm_inputs, replay_ratios, replay_stats,
    SweepSpec,
};
use memo_workloads::{mm, sci};

const KINDS: [OpKind; 3] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];

fn specs() -> [SweepSpec; 2] {
    [SweepSpec::paper_default(), SweepSpec::infinite(&KINDS)]
}

#[test]
fn every_mm_kernel_replays_bit_identically() {
    let cfg = ExpConfig::quick();
    let corpus = mm_inputs(cfg.image_scale);
    let inputs: Vec<_> = corpus.iter().map(|c| &c.image).collect();
    for app in mm::apps() {
        let app_traces = traces::mm_traces(cfg, &app);
        for spec in specs() {
            let native = measure_mm_app(&app, &inputs, spec);
            let replayed = replay_ratios(app_traces.iter(), spec);
            assert_eq!(native, replayed, "{}: hit ratios diverge", app.name);

            // Stronger than the ratios: every raw counter must agree.
            let native_bank = measure_mm_stats(&app, &inputs, spec);
            let replay_bank = replay_stats(app_traces.iter(), spec);
            for kind in KINDS {
                assert_eq!(
                    native_bank.stats(kind),
                    replay_bank.stats(kind),
                    "{}: {kind} stats diverge",
                    app.name
                );
            }
        }
    }
}

#[test]
fn every_sci_kernel_replays_bit_identically() {
    let cfg = ExpConfig::quick();
    for app in sci::all_apps() {
        let trace = traces::sci_trace(cfg, &app);
        for spec in specs() {
            let native = measure_sci_app(&app, cfg.sci_n, spec);
            let replayed = replay_ratios([&*trace], spec);
            assert_eq!(native, replayed, "{}: hit ratios diverge", app.name);
        }
    }
}

/// The batched replay engine (lane-parallel probes, tiled decode) must be
/// bit-identical to the scalar per-op path on the operand stream of
/// **every** kernel in the evaluation — at the default tile width and at
/// the narrowest supported one (maximum partial-tail pressure).
#[test]
fn batched_replay_matches_scalar_replay_on_every_kernel() {
    fn check(name: &str, app_traces: &[&memo_sim::OpTrace]) {
        for spec in specs() {
            let mut scalar = spec.build();
            let mut batched = spec.build();
            let mut narrow = spec.build();
            for trace in app_traces {
                trace.replay_scalar(&mut scalar);
                trace.replay(&mut batched);
                trace.replay_batched(&mut narrow, memo_table::MIN_BATCH_WIDTH);
            }
            for kind in OpKind::ALL {
                assert_eq!(
                    batched.stats(kind),
                    scalar.stats(kind),
                    "{name}: {kind} batched != scalar"
                );
                assert_eq!(
                    narrow.stats(kind),
                    scalar.stats(kind),
                    "{name}: {kind} width-8 batched != scalar"
                );
            }
        }
    }

    let cfg = ExpConfig::quick();
    let mut covered = 0usize;
    for app in mm::apps() {
        let app_traces = traces::mm_traces(cfg, &app);
        check(app.name, &app_traces.iter().collect::<Vec<_>>());
        covered += 1;
    }
    for app in sci::all_apps() {
        let trace = traces::sci_trace(cfg, &app);
        check(app.name, &[&trace]);
        covered += 1;
    }
    assert_eq!(covered, 37, "the comparison must cover every kernel");
}

#[test]
fn the_suites_cover_the_papers_37_kernels() {
    assert_eq!(mm::apps().len() + sci::all_apps().len(), 37);
}

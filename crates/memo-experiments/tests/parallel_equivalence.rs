//! The parallel sweep executor must be invisible in the output: every
//! rendered table is byte-identical whatever `MEMO_JOBS` says. Banks are
//! per-task and result slots are indexed, so scheduling cannot reorder or
//! perturb anything.
//!
//! Everything lives in one `#[test]` because `MEMO_JOBS` is process-global
//! state; a single test keeps the mutation race-free.

use memo_experiments::{fault_tolerance, figures, hits, trivial, ExpConfig};

fn render_everything(cfg: ExpConfig) -> String {
    // Drop memoized experiment results so every pass genuinely recomputes
    // under its MEMO_JOBS setting (shared recorded traces are fine: they
    // are inputs, identical by construction).
    memo_experiments::results::clear();
    let mut out = String::new();
    out.push_str(&hits::table5(cfg).render());
    out.push_str(&hits::table7(cfg).render());
    out.push_str(&trivial::render(&trivial::table9(cfg).unwrap()));
    out.push_str(&figures::render_sweep(
        "Figure 4",
        "ways",
        &figures::figure4(cfg).unwrap(),
    ));
    for cell in fault_tolerance::sweep(cfg) {
        out.push_str(&format!(
            "{:?} {} {} {} {}\n",
            cell.protection,
            cell.fault_rate,
            cell.sdc_rate,
            cell.hit_ratio,
            cell.faults_injected
        ));
    }
    out
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let cfg = ExpConfig::quick();

    std::env::set_var("MEMO_JOBS", "1");
    let serial = render_everything(cfg);

    for jobs in ["2", "4", "7"] {
        std::env::set_var("MEMO_JOBS", jobs);
        let parallel = render_everything(cfg);
        assert_eq!(serial, parallel, "MEMO_JOBS={jobs} must not change any byte");
    }
    std::env::remove_var("MEMO_JOBS");
}

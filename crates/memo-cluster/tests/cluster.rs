//! The cluster acceptance run: three real memo-serve nodes with their
//! own store directories behind a real router, RF=2, a real load
//! generator in `--cluster` mode — and one node killed mid-load.
//!
//! What must hold: the kill costs zero non-degraded request failures
//! (every request either succeeds or is an explicit 503 shed), the
//! router's failover and read-repair counters both move, the report
//! carries per-node attribution, and the bytes a client reads through
//! the router are identical to what a single node renders.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use memo_cluster::router::{self, RouterConfig, RouterHandle};
use memo_cluster::topology::Node;
use memo_experiments::{runner, ExpConfig};
use memo_serve::load::{self, LoadConfig, Mode};
use memo_serve::server::{self, ServerConfig, ServerHandle};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memo-cluster-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn node(name: &str, store_dir: PathBuf) -> (ServerHandle, Node) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cfg: ExpConfig::quick(),
        store_dir: Some(store_dir),
        node_id: Some(name.to_string()),
        ..ServerConfig::default()
    };
    let handle = server::start(&config).expect("boot node");
    let node = Node { name: name.to_string(), addr: handle.addr().to_string() };
    (handle, node)
}

fn router_over(nodes: Vec<Node>, probe_interval: Duration) -> RouterHandle {
    router::start(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        nodes,
        replication: 2,
        workers: 4,
        probe_interval,
        probe_timeout: Duration::from_millis(150),
        cfg: ExpConfig::quick(),
        ..RouterConfig::default()
    })
    .expect("boot router")
}

fn get(addr: &str, target: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut scratch = Vec::new();
    let resp = memo_serve::http::read_response(&mut s, &mut scratch).expect("response");
    (resp.status, resp.body)
}

#[test]
fn killing_a_node_mid_load_costs_nothing_a_client_can_see() {
    let base = fresh_dir("fleet");
    let (b0, n0) = node("n0", base.join("n0"));
    let (b1, n1) = node("n1", base.join("n1"));
    let (b2, n2) = node("n2", base.join("n2"));
    // The probe interval is pinned far beyond the test window: a kill
    // must be absorbed by the request path's own failover (transport
    // error -> next replica), not papered over by a fast prober
    // rewriting the routing table first. The node's graceful drain
    // means its death is only visible as connection failures once the
    // drain completes — exactly what the failover path must handle.
    let router = router_over(vec![n0, n1, n2], Duration::from_secs(60));
    let router_addr = router.addr().to_string();

    // Warm the load generator's whole target mix through the router:
    // every cold render is a miss on its serving node, which both seeds
    // read-repairs (the other owner gets the bytes pushed to it) and
    // keeps the timed load phase on the fast path, so plenty of
    // requests span the kill window.
    for target in (1u32..=13)
        .map(|n| format!("/v1/table/{n}"))
        .chain((2u32..=4).map(|n| format!("/v1/figure/{n}")))
        .chain([
            "/v1/sweep?entries=8,16,32".to_string(),
            "/v1/sweep?ways=1,2,4".to_string(),
            "/v1/sweep".to_string(),
        ])
    {
        let (status, _) = get(&router_addr, &target);
        assert_eq!(status, 200, "warming {target}");
    }

    // Open-loop-ish closed load from four lanes for four seconds,
    // killing one node a second in. RF=2 means every key the dead node
    // owned still has a live replica: the router must absorb the whole
    // event as failovers, not client-visible errors.
    let load_config = LoadConfig {
        addr: router_addr.clone(),
        connections: 4,
        duration: Duration::from_secs(4),
        mode: Mode::Closed,
        seed: 42,
        store_miss_permille: 0,
        cluster: true,
    };
    let loader = thread::spawn(move || load::run(&load_config));
    thread::sleep(Duration::from_secs(1));
    b1.shutdown();
    b1.wait();
    let report = loader.join().expect("load run");

    assert!(report.requests > 50, "load ran against a warm fleet: {} requests", report.requests);
    assert_eq!(
        report.errors, 0,
        "killing one node must cost zero non-degraded failures \
         (transport={}, other_5xx={})",
        report.transport_errors, report.other_5xx
    );
    let cluster = report.cluster.as_ref().expect("cluster mode report");
    assert!(cluster.failovers >= 1, "the kill must surface as failovers");
    assert!(cluster.read_repairs >= 1, "cold renders must have triggered read-repair");
    assert!(!cluster.per_node.is_empty(), "responses attributed per node");
    for node in &cluster.per_node {
        assert!(node.requests > 0, "node {} attributed no requests", node.node);
        assert!(node.latency.count > 0, "node {} has no latency samples", node.node);
    }
    let attributed: u64 = cluster.per_node.iter().map(|n| n.requests).sum();
    assert!(attributed > 0 && attributed <= report.requests);

    // Byte identity, with one node dead: whatever the router serves
    // must equal what the runners (and thus any single node) render.
    for n in [1u32, 3, 5] {
        let expected = format!("{}\n", runner::table(n as usize, ExpConfig::quick()).unwrap());
        let (status, body) = get(&router_addr, &format!("/v1/table/{n}"));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            expected.as_bytes(),
            "table {n} through the degraded cluster must match a single-node render"
        );
    }

    // The router's own metrics agree with the report's scrape.
    let (status, body) = get(&router_addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("memo_router_failovers_total"), "{text}");
    assert!(!text.contains("memo_router_failovers_total 0\n"), "failovers visible in /metrics");

    router.shutdown();
    router.wait();
    for b in [b0, b2] {
        b.shutdown();
        b.wait();
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn a_bounced_node_comes_back_and_the_table_generation_records_it() {
    let base = fresh_dir("bounce");
    let (b0, n0) = node("m0", base.join("m0"));
    let (b1, n1) = node("m1", base.join("m1"));
    let addr1 = n1.addr.clone();
    let router = router_over(vec![n0, n1], Duration::from_millis(300));
    let router_addr = router.addr().to_string();

    let starting_gen = router.state().topology.snapshot().generation;
    b1.shutdown();
    b1.wait();

    // The prober must notice the death and swap the table.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.state().topology.snapshot().generation == starting_gen {
        assert!(std::time::Instant::now() < deadline, "prober never saw the node die");
        thread::sleep(Duration::from_millis(20));
    }
    let (status, _) = get(&router_addr, "/v1/table/2");
    assert_eq!(status, 200, "the survivor serves everything");

    // Resurrect the node on its old address; the prober must fold it
    // back in with another generation bump.
    let config = ServerConfig {
        addr: addr1,
        workers: 2,
        queue_capacity: 64,
        cfg: ExpConfig::quick(),
        store_dir: Some(base.join("m1")),
        node_id: Some("m1".to_string()),
        ..ServerConfig::default()
    };
    let revived = server::start(&config).expect("rebind the old address");
    let dead_gen = router.state().topology.snapshot().generation;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.state().topology.snapshot().generation == dead_gen {
        assert!(std::time::Instant::now() < deadline, "prober never saw the node return");
        thread::sleep(Duration::from_millis(20));
    }
    let (status, _) = get(&router_addr, "/v1/table/2");
    assert_eq!(status, 200);

    router.shutdown();
    router.wait();
    for b in [b0, revived] {
        b.shutdown();
        b.wait();
    }
    let _ = std::fs::remove_dir_all(&base);
}

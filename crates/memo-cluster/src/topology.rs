//! The fleet and its atomically-swapped routing table.
//!
//! A [`Topology`] owns the configured node set (fixed for the process
//! lifetime), the consistent-hash [`Ring`] built over it once, and the
//! current [`Snapshot`] — a health vector plus a generation counter —
//! behind an `RwLock<Arc<…>>`. Requests clone the `Arc` out and route
//! against that snapshot for their whole lifetime; the health prober
//! swaps in a new `Arc` when anything changes. In-flight requests keep
//! the table they started with, new requests see the new one, nobody
//! blocks on anybody: the swap is the whole synchronization story.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::ring::Ring;

/// One configured backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Identity — what the node stamps into `x-memo-node`, and what
    /// seeds its vnode positions.
    pub name: String,
    /// `host:port` of the node's memo-serve listener.
    pub addr: String,
}

/// What the last `/healthz` probe said about a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Probe answered `ok`.
    Up,
    /// Probe answered `degraded:*` — the node serves, but a tier is out
    /// (e.g. memo-serve's disk breaker is open). Ejected from routing
    /// while any node is fully up; used as a last resort otherwise.
    Degraded,
    /// Probe failed: connect error, timeout, non-200, or `draining`.
    Down,
}

/// One atomically-published routing table.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic table version; bumped on every publish. Surfaced to
    /// clients as `x-memo-ring-gen`, so a change observed mid-run is a
    /// rebalance event.
    pub generation: u64,
    /// Health by node index.
    pub health: Vec<Health>,
}

impl Snapshot {
    /// Whether `node` accepts routed traffic under this table: `Up`
    /// nodes always; `Degraded` nodes only when no node is `Up` —
    /// serving memory→compute everywhere beats serving nothing.
    #[must_use]
    pub fn routable(&self, node: usize) -> bool {
        match self.health[node] {
            Health::Up => true,
            Health::Degraded => !self.health.contains(&Health::Up),
            Health::Down => false,
        }
    }

    /// Nodes currently reported `Up`.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.health.iter().filter(|h| **h == Health::Up).count()
    }
}

/// The fleet, its ring, and the current routing table.
pub struct Topology {
    nodes: Vec<Node>,
    ring: Ring,
    current: RwLock<Arc<Snapshot>>,
    generation: AtomicU64,
}

impl Topology {
    /// A topology over `nodes`, all initially `Up` (generation 1). The
    /// prober corrects optimism within one probe interval; starting
    /// `Up` means a router boots routing instead of 503ing until the
    /// first sweep completes.
    #[must_use]
    pub fn new(nodes: Vec<Node>) -> Self {
        let ring = Ring::build(&nodes.iter().map(|n| n.name.clone()).collect::<Vec<_>>());
        let health = vec![Health::Up; nodes.len()];
        Topology {
            nodes,
            ring,
            current: RwLock::new(Arc::new(Snapshot { generation: 1, health })),
            generation: AtomicU64::new(1),
        }
    }

    /// The configured fleet, in index order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The current routing table.
    ///
    /// # Panics
    ///
    /// If the lock is poisoned (a publisher panicked).
    #[must_use]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("topology lock"))
    }

    /// Publish a new health vector. No-op (and `false`) when nothing
    /// changed; otherwise swaps in a new snapshot with a bumped
    /// generation and returns `true`.
    ///
    /// # Panics
    ///
    /// If `health.len()` differs from the fleet size, or the lock is
    /// poisoned.
    pub fn publish(&self, health: Vec<Health>) -> bool {
        assert_eq!(health.len(), self.nodes.len(), "health vector matches fleet");
        let mut current = self.current.write().expect("topology lock");
        if current.health == health {
            return false;
        }
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *current = Arc::new(Snapshot { generation, health });
        true
    }

    /// The first `rf` distinct routable owners for `key` under
    /// `snapshot`, primary first.
    #[must_use]
    pub fn owners(&self, snapshot: &Snapshot, key: &str, rf: usize) -> Vec<usize> {
        self.ring.owners(key, rf, |n| snapshot.routable(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node { name: format!("n{i}"), addr: format!("127.0.0.1:{}", 7071 + i) })
            .collect()
    }

    #[test]
    fn publish_swaps_only_on_change_and_bumps_generation() {
        let topo = Topology::new(fleet(3));
        let first = topo.snapshot();
        assert_eq!(first.generation, 1);
        assert!(!topo.publish(vec![Health::Up; 3]), "identical vector is a no-op");
        assert_eq!(topo.snapshot().generation, 1);

        assert!(topo.publish(vec![Health::Up, Health::Down, Health::Up]));
        let second = topo.snapshot();
        assert_eq!(second.generation, 2);
        // The old Arc is untouched — in-flight requests still hold a
        // fully consistent table.
        assert_eq!(first.health, vec![Health::Up; 3]);
    }

    #[test]
    fn down_nodes_leave_routing_and_owners_follow() {
        let topo = Topology::new(fleet(3));
        let before = topo.owners(&topo.snapshot(), "table/7@scale=16;sci_n=16", 2);
        assert_eq!(before.len(), 2);

        let mut health = vec![Health::Up; 3];
        health[before[0]] = Health::Down;
        topo.publish(health);
        let after = topo.owners(&topo.snapshot(), "table/7@scale=16;sci_n=16", 2);
        assert_eq!(after[0], before[1], "old replica takes over as primary");
        assert!(!after.contains(&before[0]));
    }

    #[test]
    fn degraded_nodes_are_a_last_resort() {
        let topo = Topology::new(fleet(2));
        topo.publish(vec![Health::Up, Health::Degraded]);
        let snap = topo.snapshot();
        // One node fully up: the degraded one is ejected.
        assert!(snap.routable(0) && !snap.routable(1));

        topo.publish(vec![Health::Down, Health::Degraded]);
        let snap = topo.snapshot();
        // Nothing is up: degraded serving beats no serving.
        assert!(!snap.routable(0) && snap.routable(1));
        assert_eq!(topo.owners(&snap, "k", 2), vec![1]);

        topo.publish(vec![Health::Down, Health::Down]);
        assert!(topo.owners(&topo.snapshot(), "k", 2).is_empty());
    }
}

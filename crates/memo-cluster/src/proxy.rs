//! Pooled connections to one backend memo-serve node.
//!
//! Each routable node gets a [`NodeProxy`]: a small stack of idle
//! keep-alive connections plus the two exchanges the router performs —
//! forward a `GET` verbatim ([`NodeProxy::get`]) and install rendered
//! bytes on a replica ([`NodeProxy::warm`]). Responses are read through
//! the same [`memo_serve::http::read_response`] parser the load
//! generator uses, so the whole stack agrees on header handling.
//!
//! A pooled connection can go stale between requests (the backend timed
//! it out, or died and came back). One transparent retry covers that:
//! if the exchange over a *reused* connection fails in transport, the
//! proxy re-dials once and repeats. A failure over a fresh dial is
//! real and propagates — that is what failover is for.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use memo_serve::http::{read_response, ClientResponse};

/// Idle connections kept per node; extras are dropped on return.
const POOL_CAP: usize = 16;

/// Pooled client for one backend node.
pub struct NodeProxy {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl NodeProxy {
    /// A proxy for the node at `addr` (`host:port`).
    #[must_use]
    pub fn new(addr: String, connect_timeout: Duration, io_timeout: Duration) -> Self {
        NodeProxy { addr, idle: Mutex::new(Vec::new()), connect_timeout, io_timeout }
    }

    /// The backend address this proxy dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Forward a `GET` for the exact wire-form `raw_target`.
    ///
    /// # Errors
    ///
    /// Transport failures after the one stale-connection retry.
    pub fn get(&self, raw_target: &str, scratch: &mut Vec<u8>) -> io::Result<ClientResponse> {
        let request = format!("GET {raw_target} HTTP/1.1\r\nhost: {}\r\n\r\n", self.addr);
        self.exchange(request.as_bytes(), scratch)
    }

    /// Install `body` under `key` on this node (`POST /v1/warm`) — the
    /// read-repair half of the router.
    ///
    /// # Errors
    ///
    /// Transport failures after the one stale-connection retry.
    pub fn warm(&self, key: &str, body: &[u8], scratch: &mut Vec<u8>) -> io::Result<ClientResponse> {
        let mut request = format!(
            "POST /v1/warm?key={key} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
            self.addr,
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body);
        self.exchange(&request, scratch)
    }

    /// Drop all idle connections (the health prober calls this when a
    /// node goes down, so a recovered node starts from fresh sockets).
    pub fn drain_idle(&self) {
        self.idle.lock().expect("proxy pool").clear();
    }

    fn fresh(&self) -> io::Result<TcpStream> {
        let target = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&target, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        Ok(stream)
    }

    fn park(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("proxy pool");
        if idle.len() < POOL_CAP {
            idle.push(stream);
        }
    }

    fn exchange(&self, request: &[u8], scratch: &mut Vec<u8>) -> io::Result<ClientResponse> {
        // A reused connection may have died idle; its failure earns one
        // silent retry over a fresh dial.
        let reused = self.idle.lock().expect("proxy pool").pop();
        if let Some(mut stream) = reused {
            if let Ok(resp) = send_and_read(&mut stream, request, scratch) {
                if resp.keep_alive() {
                    self.park(stream);
                }
                return Ok(resp);
            }
        }
        let mut stream = self.fresh()?;
        let resp = send_and_read(&mut stream, request, scratch)?;
        if resp.keep_alive() {
            self.park(stream);
        }
        Ok(resp)
    }
}

fn send_and_read(
    stream: &mut TcpStream,
    request: &[u8],
    scratch: &mut Vec<u8>,
) -> io::Result<ClientResponse> {
    stream.write_all(request)?;
    read_response(stream, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::thread;

    /// A stub backend: answers every request on a connection with a
    /// canned 200 carrying the request's first line as its body, and
    /// serves at most `per_conn` requests per connection before closing.
    fn stub_server(per_conn: usize, conns: usize) -> (String, thread::JoinHandle<Vec<String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            let mut seen = Vec::new();
            for _ in 0..conns {
                let (mut stream, _) = listener.accept().unwrap();
                for _ in 0..per_conn {
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 1024];
                    let header_end = loop {
                        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                            break p;
                        }
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => return seen,
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        }
                    };
                    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
                    let first = head.lines().next().unwrap_or("").to_string();
                    // Drain a POST body if one was declared.
                    if let Some(len) = head
                        .lines()
                        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))
                        .and_then(|v| v.parse::<usize>().ok())
                    {
                        let mut have = buf.len() - header_end - 4;
                        while have < len {
                            let n = stream.read(&mut chunk).unwrap();
                            have += n;
                        }
                    }
                    seen.push(first.clone());
                    let body = first.into_bytes();
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
                        body.len()
                    );
                    stream.write_all(resp.as_bytes()).unwrap();
                    stream.write_all(&body).unwrap();
                }
                // Close the connection (per_conn exhausted).
            }
            seen
        });
        (addr, handle)
    }

    fn proxy(addr: &str) -> NodeProxy {
        NodeProxy::new(addr.to_string(), Duration::from_secs(2), Duration::from_secs(2))
    }

    #[test]
    fn get_forwards_the_target_verbatim_and_reuses_the_connection() {
        let (addr, server) = stub_server(2, 1);
        let p = proxy(&addr);
        let mut scratch = Vec::new();
        let a = p.get("/v1/table/5?scale=2", &mut scratch).unwrap();
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b"GET /v1/table/5?scale=2 HTTP/1.1");
        let b = p.get("/healthz", &mut scratch).unwrap();
        assert_eq!(b.body, b"GET /healthz HTTP/1.1");
        drop(p);
        // One connection served both requests: the pool reused it.
        let seen = server.join().unwrap();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn stale_pooled_connection_is_retried_on_a_fresh_dial() {
        // Each connection serves exactly one request, then closes — so
        // every pooled reuse is stale by construction.
        let (addr, server) = stub_server(1, 3);
        let p = proxy(&addr);
        let mut scratch = Vec::new();
        for _ in 0..3 {
            let resp = p.get("/v1/table/1", &mut scratch).unwrap();
            assert_eq!(resp.status, 200, "stale reuse must be retried, not surfaced");
        }
        drop(p);
        assert_eq!(server.join().unwrap().len(), 3);
    }

    #[test]
    fn warm_posts_key_and_body() {
        let (addr, server) = stub_server(1, 1);
        let p = proxy(&addr);
        let mut scratch = Vec::new();
        let resp = p.warm("table/1@scale=16;sci_n=16", b"payload\n", &mut scratch).unwrap();
        assert_eq!(resp.status, 200);
        let seen = server.join().unwrap();
        assert_eq!(seen, vec!["POST /v1/warm?key=table/1@scale=16;sci_n=16 HTTP/1.1".to_string()]);
    }

    #[test]
    fn dead_backend_surfaces_a_transport_error() {
        // Bind then drop: nothing listens on the port anymore.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let p = proxy(&addr);
        let mut scratch = Vec::new();
        assert!(p.get("/healthz", &mut scratch).is_err());
    }
}

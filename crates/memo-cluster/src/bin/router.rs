//! `memo-router`: a consistent-hash router over a memo-serve fleet —
//! replica failover, health probing, and read-repair in one binary.

use std::time::Duration;

use memo_cluster::router::{self, RouterConfig};
use memo_cluster::topology::Node;
use memo_experiments::cli;

const FLAGS: [(&str, &str); 10] = [
    ("--addr=", "bind address (default 127.0.0.1:7170; port 0 = ephemeral)"),
    ("--nodes=", "backend fleet: name=host:port,name=host:port (names optional: bare host:port gets n0,n1,…)"),
    ("--rf=", "owners per key (default 2, clamped to the fleet size)"),
    ("--workers=", "worker threads (default: MEMO_JOBS or all cores)"),
    ("--queue-cap=", "queued connections before shedding 503 (default 128)"),
    ("--probe-interval-ms=", "time between /healthz sweeps of the fleet (default 500)"),
    ("--probe-timeout-ms=", "per-node probe timeout (default 250)"),
    ("--connect-timeout-ms=", "backend connect timeout (default 1000)"),
    ("--read-timeout-ms=", "client and backend read timeout (default 10000)"),
    ("--write-timeout-ms=", "client write timeout (default 10000)"),
];

fn value_of(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn usize_flag(prefix: &str) -> Option<usize> {
    value_of(prefix).and_then(|v| v.parse().ok())
}

fn millis_flag(prefix: &str) -> Option<Duration> {
    usize_flag(prefix).map(|ms| Duration::from_millis(ms.max(1) as u64))
}

/// Parse `--nodes=`: comma-separated `name=host:port` entries, with
/// bare `host:port` entries auto-named `n0`, `n1`, … by position.
fn parse_nodes(spec: &str) -> Result<Vec<Node>, String> {
    let mut nodes = Vec::new();
    for (idx, entry) in spec.split(',').filter(|e| !e.is_empty()).enumerate() {
        // `name=host:port` — but a bare `host:port` contains no `=`.
        let (name, addr) = match entry.split_once('=') {
            Some((name, addr)) if !name.is_empty() => (name.to_string(), addr.to_string()),
            Some((_, _)) => return Err(format!("empty node name in {entry:?}")),
            None => (format!("n{idx}"), entry.to_string()),
        };
        if !addr.contains(':') {
            return Err(format!("node address {addr:?} is not host:port"));
        }
        if nodes.iter().any(|n: &Node| n.name == name) {
            return Err(format!("duplicate node name {name:?}"));
        }
        nodes.push(Node { name, addr });
    }
    if nodes.is_empty() {
        return Err("--nodes= lists no backends".to_string());
    }
    Ok(nodes)
}

fn main() {
    cli::enforce(
        "memo-router",
        "Routes requests over a memo-serve fleet by consistent hash, with failover and read-repair.",
        &FLAGS,
    );
    let mut config = RouterConfig::default();
    if let Some(addr) = value_of("--addr=") {
        config.addr = addr;
    }
    match value_of("--nodes=").as_deref().map(parse_nodes) {
        Some(Ok(nodes)) => config.nodes = nodes,
        Some(Err(err)) => {
            eprintln!("memo-router: {err}");
            std::process::exit(2);
        }
        None => {
            eprintln!("memo-router: --nodes= is required (try --help)");
            std::process::exit(2);
        }
    }
    if let Some(v) = usize_flag("--rf=") {
        config.replication = v.max(1);
    }
    if let Some(v) = usize_flag("--workers=") {
        config.workers = v.max(1);
    }
    if let Some(v) = usize_flag("--queue-cap=") {
        config.queue_capacity = v.max(1);
    }
    if let Some(d) = millis_flag("--probe-interval-ms=") {
        config.probe_interval = d;
    }
    if let Some(d) = millis_flag("--probe-timeout-ms=") {
        config.probe_timeout = d;
    }
    if let Some(d) = millis_flag("--connect-timeout-ms=") {
        config.connect_timeout = d;
    }
    if let Some(d) = millis_flag("--read-timeout-ms=") {
        config.read_timeout = d;
        config.io_timeout = d;
    }
    if let Some(d) = millis_flag("--write-timeout-ms=") {
        config.write_timeout = d;
    }

    match router::start(&config) {
        Ok(handle) => {
            let fleet: Vec<String> =
                config.nodes.iter().map(|n| format!("{}={}", n.name, n.addr)).collect();
            println!(
                "memo-router listening on http://{} (rf {}, {} workers, fleet {})",
                handle.addr(),
                config.replication.min(config.nodes.len()).max(1),
                config.workers.max(1),
                fleet.join(",")
            );
            println!("endpoints: /healthz /metrics /quitquitquit + every memo-serve GET route");
            handle.wait();
            println!("memo-router drained; bye");
        }
        Err(err) => {
            eprintln!("memo-router: failed to start on {}: {err}", config.addr);
            std::process::exit(1);
        }
    }
}

//! Periodic `/healthz` probing of the backend fleet.
//!
//! Every interval the prober dials each configured node fresh (never
//! through the proxy pools — a wedged pool must not mask a healthy
//! node, and a dead node must not eat a pooled socket), reads its
//! `/healthz` body, and classifies it:
//!
//! - `ok` → [`Health::Up`]
//! - `degraded:*` → [`Health::Degraded`] (memo-serve still serves, but
//!   a tier is out — e.g. its disk breaker is open)
//! - `draining`, any other body, a non-200, or any transport failure →
//!   [`Health::Down`]
//!
//! The resulting vector goes through [`Topology::publish`], which
//! swaps the routing table only when something actually changed. On a
//! change, nodes now `Down` get their idle proxy connections dropped,
//! so a later recovery starts from fresh sockets instead of a stack of
//! corpses.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use memo_serve::http::read_response;

use crate::proxy::NodeProxy;
use crate::topology::{Health, Topology};

/// Probe one node's `/healthz` over a fresh connection.
#[must_use]
pub fn probe(addr: &str, timeout: Duration) -> Health {
    exchange(addr, timeout).unwrap_or(Health::Down)
}

fn exchange(addr: &str, timeout: Duration) -> io::Result<Health> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET /healthz HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut scratch = Vec::with_capacity(256);
    let resp = read_response(&mut stream, &mut scratch)?;
    if resp.status != 200 {
        return Ok(Health::Down);
    }
    let body = String::from_utf8_lossy(&resp.body);
    Ok(classify(body.trim()))
}

/// Map a `/healthz` body to a health state. `draining` is `Down` on
/// purpose: a draining node is about to disappear, so traffic should
/// fail over now rather than ride the drain to a closed socket.
#[must_use]
pub fn classify(body: &str) -> Health {
    if body == "ok" {
        Health::Up
    } else if body.starts_with("degraded") {
        Health::Degraded
    } else {
        Health::Down
    }
}

/// How finely the prober slices its sleep so a drain is noticed fast.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// Spawn the prober thread: sweep the fleet every `interval` until
/// `draining` flips, publishing health changes into `topology` and
/// draining the idle pools of nodes that went `Down`.
///
/// # Panics
///
/// If the OS refuses to spawn the thread.
#[must_use]
pub fn spawn(
    topology: Arc<Topology>,
    proxies: Arc<Vec<NodeProxy>>,
    draining: Arc<AtomicBool>,
    interval: Duration,
    timeout: Duration,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("memo-router-probe".to_string())
        .spawn(move || {
            while !draining.load(Ordering::SeqCst) {
                let health: Vec<Health> =
                    topology.nodes().iter().map(|n| probe(&n.addr, timeout)).collect();
                if topology.publish(health.clone()) {
                    for (idx, h) in health.iter().enumerate() {
                        if *h == Health::Down {
                            proxies[idx].drain_idle();
                        }
                    }
                }
                let wake = Instant::now() + interval;
                while Instant::now() < wake && !draining.load(Ordering::SeqCst) {
                    thread::sleep(SLEEP_SLICE.min(interval));
                }
            }
        })
        .expect("spawn prober thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn stub_health(body: &'static str, status: u16) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = io::Read::read(&mut stream, &mut buf);
            let resp = format!(
                "HTTP/1.1 {status} X\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(resp.as_bytes()).unwrap();
        });
        addr
    }

    #[test]
    fn classify_maps_the_three_states() {
        assert_eq!(classify("ok"), Health::Up);
        assert_eq!(classify("degraded:disk-breaker-open"), Health::Degraded);
        assert_eq!(classify("draining"), Health::Down);
        assert_eq!(classify("wat"), Health::Down);
    }

    #[test]
    fn probe_reads_real_health_bodies() {
        let t = Duration::from_secs(2);
        assert_eq!(probe(&stub_health("ok\n", 200), t), Health::Up);
        assert_eq!(probe(&stub_health("degraded:disk-breaker-open\n", 200), t), Health::Degraded);
        assert_eq!(probe(&stub_health("draining\n", 200), t), Health::Down);
        // Non-200 is down regardless of body.
        assert_eq!(probe(&stub_health("ok\n", 500), t), Health::Down);
    }

    #[test]
    fn dead_address_is_down() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert_eq!(probe(&addr, Duration::from_millis(300)), Health::Down);
    }
}

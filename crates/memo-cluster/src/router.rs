//! The serving loop: accept → bounded queue → worker pool → backends.
//!
//! The router reuses memo-serve's parts wholesale — same strict parser,
//! same bounded queue and worker pool, same shedding discipline — and
//! adds the placement logic on top. Each request is keyed exactly the
//! way the backends key their caches ([`routes::cache_key`]), walked
//! over the ring for its owners, and forwarded to the first owner whose
//! circuit breaker admits it. A transport failure or 5xx moves on to
//! the next owner (failover); 503 is relayed rather than retried
//! blindly once all owners shed, because backpressure is information.
//!
//! When the serving node answers from disk or compute — meaning its
//! memory tier didn't have the artifact — the router enqueues a
//! best-effort read-repair: the rendered bytes are `POST /v1/warm`ed to
//! the other owners so the next failover hits their memory tier.
//! Repair is fire-and-forget through a bounded queue; a full queue
//! drops the job (counted) instead of slowing the response path.
//!
//! HEAD is forwarded upstream as GET and trimmed on the way out: the
//! backend's HEAD reply carries no body, which would leave nothing to
//! repair with and make the proxy guess at message framing.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use memo_experiments::cache::TierBreaker;
use memo_experiments::{env, ExpConfig};
use memo_serve::http::{parse_request, ClientResponse, Request, Response, MAX_BODY, MAX_HEADER_BYTES};
use memo_serve::pool::WorkerPool;
use memo_serve::queue::{Bounded, PushError};
use memo_serve::routes;

use crate::metrics::RouterMetrics;
use crate::probe;
use crate::proxy::NodeProxy;
use crate::topology::{Node, Topology};

/// Everything configurable about one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// The backend fleet, in index order.
    pub nodes: Vec<Node>,
    /// Owners per key (clamped to the fleet size by the ring walk).
    pub replication: usize,
    /// Worker threads.
    pub workers: usize,
    /// Connections queued before shedding with 503.
    pub queue_capacity: usize,
    /// Read-repair jobs queued before dropping (repair never blocks).
    pub repair_capacity: usize,
    /// Client-side socket read timeout.
    pub read_timeout: Duration,
    /// Client-side socket write timeout.
    pub write_timeout: Duration,
    /// Backend connect timeout.
    pub connect_timeout: Duration,
    /// Backend exchange (read/write) timeout.
    pub io_timeout: Duration,
    /// Time between `/healthz` sweeps of the fleet.
    pub probe_interval: Duration,
    /// Per-node probe timeout (keep well under `probe_interval`).
    pub probe_timeout: Duration,
    /// Consecutive failures before a node's breaker ejects it
    /// (0 disables the breakers).
    pub breaker_threshold: u32,
    /// How long a tripped breaker waits before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Base experiment configuration — must match the backends', since
    /// it participates in the canonical cache keys.
    pub cfg: ExpConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7170".to_string(),
            nodes: Vec::new(),
            replication: 2,
            workers: env::jobs(),
            queue_capacity: 128,
            repair_capacity: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            cfg: ExpConfig::from_env(),
        }
    }
}

/// One queued read-repair: re-warm `replicas` with the bytes the
/// serving node just rendered or read off disk.
struct Repair {
    key: String,
    body: Vec<u8>,
    replicas: Vec<usize>,
}

/// Shared router state: the fleet view plus every counter.
pub struct RouterState {
    /// The fleet, its ring, and the swapped health table.
    pub topology: Arc<Topology>,
    /// Pooled connections, index-aligned with the fleet.
    pub proxies: Arc<Vec<NodeProxy>>,
    /// Per-node circuit breakers, index-aligned with the fleet.
    pub breakers: Vec<TierBreaker>,
    /// All router counters.
    pub metrics: RouterMetrics,
    /// Owners per key.
    pub rf: usize,
    /// Base experiment config (for canonical keying).
    pub cfg: ExpConfig,
    /// Worker count, reported in `/metrics`.
    pub workers: usize,
    draining: Arc<AtomicBool>,
    repairs: Bounded<Repair>,
}

impl RouterState {
    /// True once a drain has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Request a graceful drain.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// A running router. Call [`shutdown`](RouterHandle::shutdown) then
/// [`wait`](RouterHandle::wait) to stop it.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    queue: Arc<Bounded<(TcpStream, Instant)>>,
    accept_thread: JoinHandle<()>,
    pool: WorkerPool,
    prober: JoinHandle<()>,
    warmer: JoinHandle<()>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for inspection in tests.
    #[must_use]
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Connections currently queued for a worker.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Begin a graceful drain: stop accepting, serve what is queued.
    pub fn shutdown(&self) {
        self.state.start_drain();
    }

    /// Block until every thread has exited: accept loop, workers,
    /// prober, and the repair warmer (which first drains queued jobs).
    pub fn wait(self) {
        if self.accept_thread.join().is_err() {
            eprintln!("[memo-router] accept thread panicked");
        }
        self.pool.join();
        // No worker can enqueue repairs anymore; let the warmer finish
        // what was accepted, then exit.
        self.state.repairs.close();
        if self.warmer.join().is_err() {
            eprintln!("[memo-router] warmer thread panicked");
        }
        if self.prober.join().is_err() {
            eprintln!("[memo-router] prober thread panicked");
        }
    }
}

/// How often the accept loop re-checks the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Bind and start routing.
///
/// # Errors
///
/// Propagates the bind failure, or rejects an empty fleet.
pub fn start(config: &RouterConfig) -> io::Result<RouterHandle> {
    if config.nodes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "router needs at least one node"));
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let topology = Arc::new(Topology::new(config.nodes.clone()));
    let proxies: Arc<Vec<NodeProxy>> = Arc::new(
        config
            .nodes
            .iter()
            .map(|n| NodeProxy::new(n.addr.clone(), config.connect_timeout, config.io_timeout))
            .collect(),
    );
    let breakers = config
        .nodes
        .iter()
        .map(|_| TierBreaker::new(config.breaker_threshold, config.breaker_cooldown))
        .collect();
    let draining = Arc::new(AtomicBool::new(false));
    let state = Arc::new(RouterState {
        topology: Arc::clone(&topology),
        proxies: Arc::clone(&proxies),
        breakers,
        metrics: RouterMetrics::new(config.nodes.len()),
        rf: config.replication.max(1),
        cfg: config.cfg,
        workers: config.workers.max(1),
        draining: Arc::clone(&draining),
        repairs: Bounded::new(config.repair_capacity.max(1)),
    });
    let queue = Arc::new(Bounded::new(config.queue_capacity));

    let worker_state = Arc::clone(&state);
    let worker_queue = Arc::clone(&queue);
    let pool = WorkerPool::spawn(
        state.workers,
        Arc::clone(&queue),
        move |(stream, _accepted): (TcpStream, Instant)| {
            handle_connection(&worker_state, &worker_queue, stream);
        },
    );

    let warm_state = Arc::clone(&state);
    let warmer = thread::Builder::new()
        .name("memo-router-warm".to_string())
        .spawn(move || warm_loop(&warm_state))
        .expect("spawn warmer thread");

    let prober =
        probe::spawn(topology, proxies, draining, config.probe_interval, config.probe_timeout);

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let (read_timeout, write_timeout) = (config.read_timeout, config.write_timeout);
    let accept_thread = thread::Builder::new()
        .name("memo-router-accept".to_string())
        .spawn(move || {
            accept_loop(&listener, &accept_state, &accept_queue, read_timeout, write_timeout);
            accept_queue.close();
        })
        .expect("spawn accept thread");

    Ok(RouterHandle { addr, state, queue, accept_thread, pool, prober, warmer })
}

fn accept_loop(
    listener: &TcpListener,
    state: &RouterState,
    queue: &Bounded<(TcpStream, Instant)>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !state.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                let configured = stream.set_nonblocking(false).is_ok()
                    && stream.set_read_timeout(Some(read_timeout)).is_ok()
                    && stream.set_write_timeout(Some(write_timeout)).is_ok();
                if !configured {
                    continue;
                }
                if let Err(err) = queue.try_push((stream, Instant::now())) {
                    let (PushError::Full((mut stream, _)) | PushError::Closed((mut stream, _))) =
                        err;
                    state.metrics.queue_rejections.fetch_add(1, Ordering::Relaxed);
                    let _ = Response::text(503, "router queue full, retry shortly\n")
                        .with_header("retry-after", "1")
                        .write_to(&mut stream, false, false);
                }
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serve one client connection until close, drain, or protocol error.
fn handle_connection(
    state: &Arc<RouterState>,
    queue: &Bounded<(TcpStream, Instant)>,
    mut stream: TcpStream,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut scratch = Vec::with_capacity(8192);

    loop {
        loop {
            match parse_request(&buf) {
                Ok(Some((req, consumed))) => {
                    buf.drain(..consumed);
                    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    let response = respond(state, &req, queue.len(), &mut scratch);
                    let keep_alive = req.keep_alive && !state.draining();
                    let head_only = req.method == "HEAD";
                    if response.write_to(&mut stream, keep_alive, head_only).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    let _ = Response::from_parse_error(&err).write_to(&mut stream, false, false);
                    return;
                }
            }
        }

        if state.draining() && buf.is_empty() {
            return;
        }
        if buf.len() > MAX_HEADER_BYTES + MAX_BODY {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
}

/// One routed response: local endpoints or a forwarded exchange.
fn respond(state: &Arc<RouterState>, req: &Request, queue_depth: usize, scratch: &mut Vec<u8>) -> Response {
    if req.method != "GET" && req.method != "HEAD" {
        return Response::text(405, "only GET and HEAD are routed\n");
    }
    match req.path.as_str() {
        "/healthz" => {
            let body = if state.draining() {
                "draining\n".to_string()
            } else {
                let snap = state.topology.snapshot();
                let fleet = state.topology.nodes().len();
                let up = snap.up_count();
                if up == fleet {
                    "ok\n".to_string()
                } else if (0..fleet).any(|n| snap.routable(n)) {
                    format!("degraded:{up}/{fleet}-up\n")
                } else {
                    format!("degraded:no-backends:0/{fleet}-up\n")
                }
            };
            Response::text(200, body)
        }
        "/metrics" => {
            let snap = state.topology.snapshot();
            let text = state.metrics.render(
                state.topology.nodes(),
                &snap,
                queue_depth,
                state.repairs.len(),
                state.workers,
                state.draining(),
            );
            Response::text(200, text)
        }
        "/quitquitquit" => {
            state.start_drain();
            Response::text(200, "draining\n")
        }
        _ => forward(state, req, scratch),
    }
}

/// Forward `req` to its owners, failing over down the replica chain.
fn forward(state: &Arc<RouterState>, req: &Request, scratch: &mut Vec<u8>) -> Response {
    let snap = state.topology.snapshot();
    // The same canonical key the backends cache under; targets outside
    // the artifact space (404s and friends) still need deterministic
    // placement, so they hash their raw wire form.
    let artifact_key = routes::cache_key(state.cfg, req);
    let key = artifact_key.clone().unwrap_or_else(|| req.raw_target.clone());
    let owners = state.topology.owners(&snap, &key, state.rf);
    if owners.is_empty() {
        state.metrics.no_backend.fetch_add(1, Ordering::Relaxed);
        return Response::text(503, "no routable backend\n")
            .with_header("retry-after", "1")
            .with_header("x-memo-ring-gen", snap.generation.to_string());
    }

    let mut last_shed: Option<ClientResponse> = None;
    let mut attempted = 0u32;
    for &node in &owners {
        if !state.breakers[node].allow() {
            continue;
        }
        attempted += 1;
        let stats = state.metrics.node(node);
        let started = Instant::now();
        // Always GET upstream: a HEAD reply has no body to frame a
        // response around, let alone to repair replicas with. The
        // caller trims the body for HEAD clients.
        match state.proxies[node].get(&req.raw_target, scratch) {
            Ok(resp) if resp.status < 500 => {
                state.breakers[node].record_success();
                stats.requests.fetch_add(1, Ordering::Relaxed);
                stats
                    .latency
                    .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
                if node != owners[0] {
                    state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                }
                maybe_repair(state, artifact_key.as_deref(), &resp, &owners, node);
                return relay(resp, snap.generation);
            }
            Ok(resp) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                if resp.status == 503 {
                    // Shedding is the node being alive and explicit; it
                    // neither trips the breaker nor counts as an error.
                    state.breakers[node].record_success();
                } else {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    state.breakers[node].record_failure();
                }
                last_shed = Some(resp);
            }
            Err(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                state.breakers[node].record_failure();
            }
        }
    }

    if let Some(resp) = last_shed {
        // Every attempted owner answered 5xx; the last answer (with its
        // own retry-after, if any) is more honest than a synthetic 502.
        return relay(resp, snap.generation);
    }
    if attempted == 0 {
        state.metrics.no_backend.fetch_add(1, Ordering::Relaxed);
        return Response::text(503, "all replicas cooling down\n")
            .with_header("retry-after", "1")
            .with_header("x-memo-ring-gen", snap.generation.to_string());
    }
    state.metrics.bad_gateway.fetch_add(1, Ordering::Relaxed);
    Response::text(502, "every replica failed\n")
        .with_header("retry-after", "1")
        .with_header("x-memo-ring-gen", snap.generation.to_string())
}

/// Enqueue a read-repair when the serving node answered outside its
/// memory tier: the artifact exists in rendered form right here, so
/// re-warming the other owners costs one POST each, not a re-render.
fn maybe_repair(
    state: &Arc<RouterState>,
    artifact_key: Option<&str>,
    resp: &ClientResponse,
    owners: &[usize],
    served_by: usize,
) {
    let Some(key) = artifact_key else { return };
    if resp.status != 200 || resp.body.is_empty() || resp.body.len() > MAX_BODY {
        return;
    }
    if !matches!(resp.header("x-memo-cache"), Some("disk" | "miss")) {
        return;
    }
    let replicas: Vec<usize> = owners.iter().copied().filter(|&n| n != served_by).collect();
    if replicas.is_empty() {
        return;
    }
    let job = Repair { key: key.to_string(), body: resp.body.clone(), replicas };
    if state.repairs.try_push(job).is_err() {
        state.metrics.repair_drops.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drain the repair queue: one warming POST per replica per job.
fn warm_loop(state: &Arc<RouterState>) {
    let mut scratch = Vec::with_capacity(4096);
    while let Some(job) = state.repairs.pop() {
        for &replica in &job.replicas {
            match state.proxies[replica].warm(&job.key, &job.body, &mut scratch) {
                Ok(resp) if resp.status == 200 => {
                    state.metrics.read_repairs.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    state.metrics.read_repair_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Turn a backend's response into the client's: framing headers are
/// re-derived by [`Response::write_to`], everything else passes
/// through untouched, plus the routing-table generation that placed
/// this request.
fn relay(resp: ClientResponse, generation: u64) -> Response {
    let mut headers: Vec<(String, String)> = resp
        .headers
        .into_iter()
        .filter(|(k, _)| k != "content-length" && k != "connection" && k != "content-type")
        .collect();
    headers.push(("x-memo-ring-gen".to_string(), generation.to_string()));
    Response { status: resp.status, headers, body: resp.body, content_type: "text/plain; charset=utf-8" }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_serve::server::{self, ServerConfig};
    use std::io::Write;

    fn backend(name: &str) -> (server::ServerHandle, Node) {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cfg: ExpConfig::quick(),
            node_id: Some(name.to_string()),
            ..ServerConfig::default()
        };
        let handle = server::start(&config).unwrap();
        let node = Node { name: name.to_string(), addr: handle.addr().to_string() };
        (handle, node)
    }

    fn router_over(nodes: Vec<Node>) -> RouterHandle {
        start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes,
            workers: 2,
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(200),
            cfg: ExpConfig::quick(),
            ..RouterConfig::default()
        })
        .unwrap()
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {target} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let mut scratch = Vec::new();
        let resp = memo_serve::http::read_response(&mut s, &mut scratch).unwrap();
        (resp.status, resp.headers, resp.body)
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    #[test]
    fn routes_to_a_backend_and_stamps_router_headers() {
        let (b0, n0) = backend("n0");
        let (b1, n1) = backend("n1");
        let direct = get(b0.addr(), "/v1/table/3");
        let router = router_over(vec![n0, n1]);

        let (status, headers, body) = get(router.addr(), "/v1/table/3");
        assert_eq!(status, 200);
        assert_eq!(body, direct.2, "routed body is byte-identical to a direct render");
        assert!(header(&headers, "x-memo-node").is_some(), "backend identity survives the proxy");
        assert!(header(&headers, "x-memo-ring-gen").is_some(), "router stamps the table generation");

        let (status, _, body) = get(router.addr(), "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");

        router.shutdown();
        router.wait();
        for b in [b0, b1] {
            b.shutdown();
            b.wait();
        }
    }

    #[test]
    fn fails_over_when_the_primary_dies_and_counts_it() {
        let (b0, n0) = backend("n0");
        let (b1, n1) = backend("n1");
        // A long probe interval keeps the routing table oblivious to
        // the kill below: the request must fail over on the transport
        // error itself, not ride a health-table update.
        let router = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes: vec![n0, n1],
            workers: 2,
            probe_interval: Duration::from_secs(60),
            probe_timeout: Duration::from_millis(200),
            cfg: ExpConfig::quick(),
            ..RouterConfig::default()
        })
        .unwrap();

        // Find a target whose primary is node 0 by asking the router —
        // x-memo-node names whoever served it — then kill node 0 and
        // request it again: the request must still succeed.
        let owned_by_0 = (1..=20)
            .map(|n| format!("/v1/table/{n}"))
            .find(|t| {
                let (status, headers, _) = get(router.addr(), t);
                assert_eq!(status, 200);
                header(&headers, "x-memo-node") == Some("n0")
            })
            .expect("some table key lands on node 0 first");
        b0.shutdown();
        b0.wait();

        let (status, headers, _) = get(router.addr(), &owned_by_0);
        assert_eq!(status, 200, "replica serves while the primary is dead");
        assert_eq!(header(&headers, "x-memo-node"), Some("n1"));
        assert!(
            router.state().metrics.failovers.load(Ordering::Relaxed) >= 1,
            "failover must be counted"
        );

        router.shutdown();
        router.wait();
        b1.shutdown();
        b1.wait();
    }

    #[test]
    fn read_repair_warms_the_replica_after_a_computed_answer() {
        let (b0, n0) = backend("n0");
        let (b1, n1) = backend("n1");
        let router = router_over(vec![n0, n1]);

        // A fresh artifact: the serving node computes (x-memo-cache:
        // miss), which must trigger a warm on the other owner.
        let (status, headers, _) = get(router.addr(), "/v1/table/5");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-memo-cache"), Some("miss"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while router.state().metrics.read_repairs.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "read-repair never completed");
            thread::sleep(Duration::from_millis(10));
        }

        // The replica now serves the artifact from memory: ask each
        // backend directly and check one of them reports a warm install.
        let total_warms: u64 = [&b0, &b1]
            .iter()
            .map(|b| b.state().metrics.warms.load(Ordering::Relaxed))
            .sum();
        assert!(total_warms >= 1, "exactly the non-serving owner was warmed");

        router.shutdown();
        router.wait();
        for b in [b0, b1] {
            b.shutdown();
            b.wait();
        }
    }

    #[test]
    fn local_endpoints_and_method_guard() {
        let (b0, n0) = backend("n0");
        let router = router_over(vec![n0]);

        let (status, _, body) = get(router.addr(), "/metrics");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("memo_router_failovers_total 0"), "{text}");
        assert!(text.contains("memo_router_read_repairs_total 0"), "{text}");
        assert!(text.contains("memo_router_node_health{node=\"n0\"} 2"), "{text}");

        let mut s = TcpStream::connect(router.addr()).unwrap();
        s.write_all(b"POST /v1/warm?key=x HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut scratch = Vec::new();
        let resp = memo_serve::http::read_response(&mut s, &mut scratch).unwrap();
        assert_eq!(resp.status, 405, "the router does not accept writes from clients");

        router.shutdown();
        router.wait();
        b0.shutdown();
        b0.wait();
    }

    #[test]
    fn all_backends_dead_yields_503_no_backend() {
        let (b0, n0) = backend("n0");
        let addr_dead = n0.addr.clone();
        b0.shutdown();
        b0.wait();
        let router = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes: vec![Node { name: "n0".to_string(), addr: addr_dead }],
            workers: 1,
            probe_interval: Duration::from_millis(30),
            probe_timeout: Duration::from_millis(100),
            cfg: ExpConfig::quick(),
            ..RouterConfig::default()
        })
        .unwrap();

        // Wait for the prober to mark the node down, then request.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = router.state().topology.snapshot();
            if !snap.routable(0) {
                break;
            }
            assert!(Instant::now() < deadline, "prober never marked the dead node down");
            thread::sleep(Duration::from_millis(10));
        }
        let (status, headers, _) = get(router.addr(), "/v1/table/2");
        assert_eq!(status, 503);
        assert_eq!(header(&headers, "retry-after"), Some("1"));
        assert!(router.state().metrics.no_backend.load(Ordering::Relaxed) >= 1);

        let (_, _, body) = get(router.addr(), "/healthz");
        assert!(String::from_utf8_lossy(&body).starts_with("degraded:no-backends"));

        router.shutdown();
        router.wait();
    }
}

//! The router's own counters and `/metrics` exposition.
//!
//! Same discipline as memo-serve's metrics: atomics and lock-free
//! [`Histogram`]s only, Prometheus text format with deterministic label
//! order so the CI smoke job and the load generator can scrape by
//! simple prefix match. The load generator's `--cluster` mode reads
//! `memo_router_failovers_total` and `memo_router_read_repairs_total`
//! verbatim — renaming either breaks `BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};

use memo_serve::hist::Histogram;

use crate::topology::{Health, Node, Snapshot};

/// Per-backend counters, index-aligned with the configured fleet.
pub struct NodeStats {
    /// Requests this node answered (any status).
    pub requests: AtomicU64,
    /// Transport failures plus non-backpressure 5xx (503 is shedding,
    /// not an error — the node is alive and telling us so).
    pub errors: AtomicU64,
    /// Per-exchange latency, microseconds, successful exchanges only.
    pub latency: Histogram,
}

/// All counters for one router instance.
pub struct RouterMetrics {
    nodes: Vec<NodeStats>,
    /// Requests parsed off client connections.
    pub requests_total: AtomicU64,
    /// Connections accepted off the listener.
    pub connections_accepted: AtomicU64,
    /// Connections shed 503 because the router queue was full.
    pub queue_rejections: AtomicU64,
    /// Requests served by a non-primary owner (the primary was down,
    /// breaker-ejected, or failed mid-request).
    pub failovers: AtomicU64,
    /// Replica re-warms that completed (`POST /v1/warm` returned 2xx).
    pub read_repairs: AtomicU64,
    /// Replica re-warms that failed in transport or with a 5xx.
    pub read_repair_failures: AtomicU64,
    /// Repair jobs dropped because the repair queue was full — repair
    /// is best-effort and must never backpressure serving.
    pub repair_drops: AtomicU64,
    /// Requests answered 503 because no backend was routable.
    pub no_backend: AtomicU64,
    /// Requests answered 502 because every owner failed in transport.
    pub bad_gateway: AtomicU64,
}

impl RouterMetrics {
    /// Fresh zeroed metrics for a fleet of `fleet` nodes.
    #[must_use]
    pub fn new(fleet: usize) -> Self {
        RouterMetrics {
            nodes: (0..fleet)
                .map(|_| NodeStats {
                    requests: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    latency: Histogram::new(),
                })
                .collect(),
            requests_total: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            read_repair_failures: AtomicU64::new(0),
            repair_drops: AtomicU64::new(0),
            no_backend: AtomicU64::new(0),
            bad_gateway: AtomicU64::new(0),
        }
    }

    /// Counters for backend `idx`.
    #[must_use]
    pub fn node(&self, idx: usize) -> &NodeStats {
        &self.nodes[idx]
    }

    /// Render the Prometheus-style text exposition. `nodes` and
    /// `snapshot` supply the names and health the metrics struct does
    /// not own; `queue_depth`, `repair_depth`, `workers`, `draining`
    /// are point-in-time router state.
    ///
    /// # Panics
    ///
    /// If `nodes.len()` differs from the fleet this was built for.
    #[must_use]
    pub fn render(
        &self,
        nodes: &[Node],
        snapshot: &Snapshot,
        queue_depth: usize,
        repair_depth: usize,
        workers: usize,
        draining: bool,
    ) -> String {
        assert_eq!(nodes.len(), self.nodes.len(), "fleet size matches metrics");
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, value: u64| {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        };
        counter("memo_router_requests_total", self.requests_total.load(Ordering::Relaxed));
        counter(
            "memo_router_connections_accepted_total",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        counter("memo_router_queue_rejections_total", self.queue_rejections.load(Ordering::Relaxed));
        counter("memo_router_failovers_total", self.failovers.load(Ordering::Relaxed));
        counter("memo_router_read_repairs_total", self.read_repairs.load(Ordering::Relaxed));
        counter(
            "memo_router_read_repair_failures_total",
            self.read_repair_failures.load(Ordering::Relaxed),
        );
        counter("memo_router_repair_queue_drops_total", self.repair_drops.load(Ordering::Relaxed));
        counter("memo_router_no_backend_total", self.no_backend.load(Ordering::Relaxed));
        counter("memo_router_bad_gateway_total", self.bad_gateway.load(Ordering::Relaxed));

        out.push_str("# TYPE memo_router_ring_generation gauge\n");
        out.push_str(&format!("memo_router_ring_generation {}\n", snapshot.generation));
        out.push_str("# TYPE memo_router_queue_depth gauge\n");
        out.push_str(&format!("memo_router_queue_depth {queue_depth}\n"));
        out.push_str("# TYPE memo_router_repair_queue_depth gauge\n");
        out.push_str(&format!("memo_router_repair_queue_depth {repair_depth}\n"));
        out.push_str("# TYPE memo_router_workers gauge\n");
        out.push_str(&format!("memo_router_workers {workers}\n"));
        out.push_str("# TYPE memo_router_draining gauge\n");
        out.push_str(&format!("memo_router_draining {}\n", u8::from(draining)));

        // 2 = up, 1 = degraded, 0 = down: a sum over the fleet of 2n
        // means everything is healthy, which dashboards read at a glance.
        out.push_str("# TYPE memo_router_node_health gauge\n");
        for (node, health) in nodes.iter().zip(&snapshot.health) {
            let v = match health {
                Health::Up => 2,
                Health::Degraded => 1,
                Health::Down => 0,
            };
            out.push_str(&format!("memo_router_node_health{{node=\"{}\"}} {v}\n", node.name));
        }
        out.push_str("# TYPE memo_router_node_requests_total counter\n");
        for (node, stats) in nodes.iter().zip(&self.nodes) {
            out.push_str(&format!(
                "memo_router_node_requests_total{{node=\"{}\"}} {}\n",
                node.name,
                stats.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE memo_router_node_errors_total counter\n");
        for (node, stats) in nodes.iter().zip(&self.nodes) {
            out.push_str(&format!(
                "memo_router_node_errors_total{{node=\"{}\"}} {}\n",
                node.name,
                stats.errors.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE memo_router_node_latency_seconds summary\n");
        for (node, stats) in nodes.iter().zip(&self.nodes) {
            if stats.latency.count() == 0 {
                continue;
            }
            for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                #[allow(clippy::cast_precision_loss)]
                let secs = stats.latency.quantile(q) as f64 / 1e6;
                out.push_str(&format!(
                    "memo_router_node_latency_seconds{{node=\"{}\",quantile=\"{qs}\"}} {secs:.6}\n",
                    node.name,
                ));
            }
            out.push_str(&format!(
                "memo_router_node_latency_seconds_count{{node=\"{}\"}} {}\n",
                node.name,
                stats.latency.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<Node> {
        vec![
            Node { name: "n0".to_string(), addr: "127.0.0.1:7071".to_string() },
            Node { name: "n1".to_string(), addr: "127.0.0.1:7072".to_string() },
        ]
    }

    #[test]
    fn render_exposes_the_counters_the_load_generator_scrapes() {
        let m = RouterMetrics::new(2);
        m.failovers.fetch_add(3, Ordering::Relaxed);
        m.read_repairs.fetch_add(5, Ordering::Relaxed);
        m.node(0).requests.fetch_add(7, Ordering::Relaxed);
        m.node(0).latency.record(1500);
        m.node(1).errors.fetch_add(1, Ordering::Relaxed);
        let snap = Snapshot { generation: 4, health: vec![Health::Up, Health::Down] };
        let text = m.render(&fleet(), &snap, 2, 1, 3, false);

        // Exact prefix + space + value: what memo-load's scraper parses.
        assert!(text.contains("memo_router_failovers_total 3\n"), "{text}");
        assert!(text.contains("memo_router_read_repairs_total 5\n"), "{text}");
        assert!(text.contains("memo_router_ring_generation 4"), "{text}");
        assert!(text.contains("memo_router_node_health{node=\"n0\"} 2"), "{text}");
        assert!(text.contains("memo_router_node_health{node=\"n1\"} 0"), "{text}");
        assert!(text.contains("memo_router_node_requests_total{node=\"n0\"} 7"), "{text}");
        assert!(text.contains("memo_router_node_errors_total{node=\"n1\"} 1"), "{text}");
        assert!(text.contains("memo_router_node_latency_seconds{node=\"n0\",quantile=\"0.99\"}"));
        // A node with no samples contributes no latency lines.
        assert!(!text.contains("memo_router_node_latency_seconds{node=\"n1\""), "{text}");
        assert!(text.contains("memo_router_queue_depth 2"));
        assert!(text.contains("memo_router_repair_queue_depth 1"));
        assert!(text.contains("memo_router_workers 3"));
        assert!(text.contains("memo_router_draining 0"));
    }
}

//! Sharded multi-node serving: a consistent-hash router over memo-serve.
//!
//! The paper's banked memo-tables spread lookups across independent
//! banks so no single port bottlenecks (DESIGN.md §8); this crate lifts
//! that idea one level up. A fleet of memo-serve nodes each owns a slice
//! of the canonical `(experiment, config)` key space, and `memo-router`
//! — a zero-dependency HTTP tier built from the same bounded-queue /
//! worker-pool parts as memo-serve — places every request on its owners
//! via a 160-vnode consistent-hash ring:
//!
//! - [`ring`]: the hash ring — vnode placement, clockwise owner walks,
//!   minimal remapping when a node leaves;
//! - [`topology`]: the fleet — node identities plus an atomically
//!   swapped health snapshot (the routing table) with a generation
//!   counter, so in-flight requests keep the table they started with;
//! - [`probe`]: periodic `/healthz` probing, including the
//!   `degraded:*` states memo-serve reports when its disk tier is out;
//! - [`proxy`]: pooled backend connections — forward a request
//!   verbatim, read the response through the shared parser, re-warm a
//!   replica;
//! - [`router`]: the serving loop — primary-then-replica failover on
//!   connection failure or 5xx, per-node circuit breakers, and
//!   read-repair that re-warms replicas whenever the serving node
//!   answered from disk or compute;
//! - [`metrics`]: the router's own `/metrics` — per-node
//!   request/error/latency, ring generation, failover and read-repair
//!   totals.
//!
//! Responses gain two router headers: `x-memo-ring-gen` (the routing
//! table generation that placed the request) on top of the backend's
//! `x-memo-node`. Bodies are byte-identical to a single node's output —
//! the router never rewrites what a backend rendered.

pub mod metrics;
pub mod probe;
pub mod proxy;
pub mod ring;
pub mod router;
pub mod topology;

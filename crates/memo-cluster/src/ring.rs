//! The consistent-hash ring: 160 vnodes per node on a `u64` circle.
//!
//! Every node contributes [`VNODES_PER_NODE`] pseudo-random points
//! (vnodes) to the circle; a key is owned by the first `rf` *distinct*
//! nodes found walking clockwise from the key's own position. Many
//! vnodes per node keep the per-node share of the key space close to
//! uniform, and — the property the cluster leans on — when a node drops
//! out, only the keys it owned move: every other key's walk is
//! unchanged, so a failover never reshuffles the whole fleet, exactly
//! like one broken bank in the paper's memo unit idles without
//! disturbing the other banks' contents.
//!
//! The ring itself is built once over the *configured* fleet and never
//! rebuilt; liveness is a filter applied during the walk (see
//! [`Ring::owners`]). That keeps placement stable across a node's
//! down/up bounce — its keys come straight back — and makes "swap the
//! routing table" a health-vector swap, not a ring rebuild.

/// Vnodes each node contributes to the circle.
pub const VNODES_PER_NODE: usize = 160;

/// FNV-1a over `bytes`, then a SplitMix64-style finalizer. FNV alone
/// clusters badly for short, similar strings (`node-1#0`, `node-1#1`…);
/// the finalizer's avalanche spreads them over the whole circle.
#[must_use]
pub fn hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The circle: vnode positions, each tagged with its node's index.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(position, node index)`, sorted by position.
    points: Vec<(u64, u16)>,
    nodes: usize,
}

impl Ring {
    /// Build the circle over `node_names`. Names must be distinct —
    /// they seed the vnode positions, so two nodes sharing a name would
    /// stack their vnodes on identical points.
    #[must_use]
    pub fn build(node_names: &[String]) -> Ring {
        let mut points = Vec::with_capacity(node_names.len() * VNODES_PER_NODE);
        for (idx, name) in node_names.iter().enumerate() {
            let idx = u16::try_from(idx).expect("fleet fits u16");
            for v in 0..VNODES_PER_NODE {
                points.push((hash(format!("{name}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring { points, nodes: node_names.len() }
    }

    /// Nodes the ring was built over.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The first `rf` distinct routable nodes clockwise from `key`'s
    /// position — primary first. Nodes for which `routable` returns
    /// false are skipped, which is how a dead node's vnodes fail over:
    /// the walk simply lands on the next live node, and every key whose
    /// walk never met the dead node keeps its owners unchanged.
    ///
    /// Returns fewer than `rf` owners (possibly none) when the routable
    /// fleet is smaller than `rf`.
    #[must_use]
    pub fn owners(&self, key: &str, rf: usize, routable: impl Fn(usize) -> bool) -> Vec<usize> {
        if self.points.is_empty() || rf == 0 {
            return Vec::new();
        }
        let want = rf.min(self.nodes);
        let pos = hash(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < pos) % self.points.len();
        let mut owners = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let node = usize::from(self.points[(start + i) % self.points.len()].1);
            if routable(node) && !owners.contains(&node) {
                owners.push(node);
                if owners.len() == want {
                    break;
                }
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    fn all(_: usize) -> bool {
        true
    }

    #[test]
    fn owners_are_distinct_deterministic_and_clamped() {
        let ring = Ring::build(&names(3));
        let a = ring.owners("table/1@scale=16;sci_n=16", 2, all);
        let b = ring.owners("table/1@scale=16;sci_n=16", 2, all);
        assert_eq!(a, b, "placement is a pure function of the key");
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1], "replicas land on distinct nodes");
        // rf beyond the fleet clamps to the fleet.
        assert_eq!(ring.owners("anything", 9, all).len(), 3);
        assert_eq!(ring.owners("anything", 0, all), Vec::<usize>::new());
    }

    #[test]
    fn load_spreads_close_to_uniform() {
        let ring = Ring::build(&names(3));
        let mut counts = [0u32; 3];
        for i in 0..9000 {
            counts[ring.owners(&format!("key-{i}"), 1, all)[0]] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            // Perfect balance is 3000; 160 vnodes keeps skew well inside
            // ±40%.
            assert!((1800..=4200).contains(&c), "node {node} owns {c} of 9000 keys");
        }
    }

    #[test]
    fn losing_a_node_only_remaps_its_own_keys() {
        let ring = Ring::build(&names(4));
        let keys: Vec<String> = (0..2000).map(|i| format!("figure/{i}@scale=8;sci_n=16")).collect();
        let dead = 2usize;
        let mut moved = 0;
        for key in &keys {
            let before = ring.owners(key, 2, all);
            let after = ring.owners(key, 2, |n| n != dead);
            if before[0] == dead {
                moved += 1;
                // The old secondary is exactly the new primary: clients
                // that fell over mid-outage were already talking to it.
                assert_eq!(after[0], before[1], "failover target is the old replica for {key}");
            } else {
                assert_eq!(after[0], before[0], "unrelated key {key} must not move");
            }
        }
        // The dead node owned roughly a quarter of the keys — and only
        // those moved.
        assert!((250..=750).contains(&moved), "{moved} of 2000 keys moved");
    }

    #[test]
    fn no_routable_nodes_means_no_owners() {
        let ring = Ring::build(&names(3));
        assert!(ring.owners("k", 2, |_| false).is_empty());
    }
}

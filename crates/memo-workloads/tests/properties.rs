//! Property tests for the workload kernels: totality over arbitrary
//! inputs, determinism, and event-stream sanity.

use memo_imaging::rng::SplitMix64;
use memo_imaging::Image;
use memo_sim::{CountingSink, NullSink};
use memo_workloads::{mm, sci};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    ((4usize..48, 4usize..48), any::<u64>(), 1u64..=256).prop_map(|((w, h), seed, levels)| {
        let mut rng = SplitMix64::new(seed);
        Image::from_fn_byte(w, h, |_, _| {
            (rng.next_below(levels) * (256 / levels.max(1))).min(255) as u8
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every MM application accepts any byte image without panicking and
    /// produces a finite-valued image of matching width/height.
    #[test]
    fn mm_apps_are_total_over_arbitrary_images(img in arb_image(), idx in 0usize..18) {
        let app = mm::apps()[idx];
        let out = app.run(&mut NullSink, &img);
        prop_assert_eq!(out.width(), img.width(), "{}", app.name);
        prop_assert_eq!(out.height(), img.height(), "{}", app.name);
        for s in out.samples() {
            prop_assert!(s.is_finite(), "{} produced {}", app.name, s);
        }
    }

    /// Kernels are pure: identical images give identical outputs and
    /// identical event mixes.
    #[test]
    fn mm_apps_are_deterministic(img in arb_image(), idx in 0usize..18) {
        let app = mm::apps()[idx];
        let mut s1 = CountingSink::new();
        let mut s2 = CountingSink::new();
        let o1 = app.run(&mut s1, &img);
        let o2 = app.run(&mut s2, &img);
        prop_assert_eq!(o1, o2, "{}", app.name);
        prop_assert_eq!(s1.mix(), s2.mix(), "{}", app.name);
    }

    /// Event volume scales with the pixel count (no hidden quadratic
    /// blowups; at least one event per pixel).
    #[test]
    fn mm_event_volume_is_pixel_proportional(img in arb_image(), idx in 0usize..18) {
        let app = mm::apps()[idx];
        let mut sink = CountingSink::new();
        app.run(&mut sink, &img);
        let pixels = (img.pixels_per_band() * img.bands()) as u64;
        let events = sink.mix().total();
        // Tile-based generators (vgauss renders one blob per 16×16 cell)
        // legitimately emit nothing on images smaller than a tile.
        if img.width() >= 16 && img.height() >= 16 {
            prop_assert!(events >= pixels, "{}: {} events for {} pixels", app.name, events, pixels);
        }
        // Generous upper bound: FFT apps are O(n log n) per row, k-means
        // iterates; nothing should exceed ~2k events per pixel.
        prop_assert!(
            events < pixels.saturating_mul(2000) + 100_000,
            "{}: {} events for {} pixels",
            app.name,
            events,
            pixels
        );
    }

    /// Scientific kernels run at any size without panicking, and their
    /// event mixes are deterministic.
    #[test]
    fn sci_apps_are_total_and_deterministic(n in 8usize..40, idx in 0usize..19) {
        let app = sci::all_apps()[idx];
        let mut s1 = CountingSink::new();
        let mut s2 = CountingSink::new();
        app.run(&mut s1, n);
        app.run(&mut s2, n);
        prop_assert_eq!(s1.mix(), s2.mix(), "{}", app.name);
        prop_assert!(s1.mix().total() > 0, "{}", app.name);
    }

    /// The instrumented-math helpers stay close to libm over the domains
    /// the kernels use.
    #[test]
    fn math_helpers_track_reference(a in 0.01f64..1e6, b in 0.01f64..1e6) {
        use memo_workloads::math;
        let mut sink = NullSink;
        let s = math::newton_sqrt(&mut sink, a, 5);
        prop_assert!((s - a.sqrt()).abs() / a.sqrt() < 1e-4, "sqrt({a}) = {s}");
        let h = math::hypot_approx(&mut sink, a.min(1e3), b.min(1e3));
        let want = (a.min(1e3).powi(2) + b.min(1e3).powi(2)).sqrt();
        prop_assert!((h - want).abs() / want < 1e-3, "hypot = {h} vs {want}");
        let t = math::atan2_approx(&mut sink, b, a);
        prop_assert!((t - f64::atan2(b, a)).abs() < 5e-3);
    }
}

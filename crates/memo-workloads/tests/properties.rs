//! Property-style tests for the workload kernels: totality over
//! deterministic pseudo-random inputs, determinism, and event-stream
//! sanity (SplitMix64 streams replace proptest; the repo builds offline).

use memo_imaging::rng::SplitMix64;
use memo_imaging::Image;
use memo_sim::{CountingSink, NullSink};
use memo_workloads::{mm, sci};

fn arb_image(r: &mut SplitMix64) -> Image {
    let w = 4 + r.next_below(44) as usize;
    let h = 4 + r.next_below(44) as usize;
    let levels = 1 + r.next_below(256);
    let mut rng = SplitMix64::new(r.next_u64());
    Image::from_fn_byte(w, h, |_, _| {
        (rng.next_below(levels) * (256 / levels.max(1))).min(255) as u8
    })
}

/// Every MM application accepts any byte image without panicking and
/// produces a finite-valued image of matching width/height.
#[test]
fn mm_apps_are_total_over_arbitrary_images() {
    for (idx, app) in mm::apps().iter().enumerate() {
        let mut r = SplitMix64::new(idx as u64).split("mm-total");
        for _ in 0..3 {
            let img = arb_image(&mut r);
            let out = app.run(&mut NullSink, &img);
            assert_eq!(out.width(), img.width(), "{}", app.name);
            assert_eq!(out.height(), img.height(), "{}", app.name);
            for s in out.samples() {
                assert!(s.is_finite(), "{} produced {}", app.name, s);
            }
        }
    }
}

/// Kernels are pure: identical images give identical outputs and
/// identical event mixes.
#[test]
fn mm_apps_are_deterministic() {
    for (idx, app) in mm::apps().iter().enumerate() {
        let mut r = SplitMix64::new(idx as u64).split("mm-det");
        let img = arb_image(&mut r);
        let mut s1 = CountingSink::new();
        let mut s2 = CountingSink::new();
        let o1 = app.run(&mut s1, &img);
        let o2 = app.run(&mut s2, &img);
        assert_eq!(o1, o2, "{}", app.name);
        assert_eq!(s1.mix(), s2.mix(), "{}", app.name);
    }
}

/// Event volume scales with the pixel count (no hidden quadratic
/// blowups; at least one event per pixel).
#[test]
fn mm_event_volume_is_pixel_proportional() {
    for (idx, app) in mm::apps().iter().enumerate() {
        let mut r = SplitMix64::new(idx as u64).split("mm-volume");
        for _ in 0..3 {
            let img = arb_image(&mut r);
            let mut sink = CountingSink::new();
            app.run(&mut sink, &img);
            let pixels = (img.pixels_per_band() * img.bands()) as u64;
            let events = sink.mix().total();
            // Tile-based generators (vgauss renders one blob per 16×16 cell)
            // legitimately emit nothing on images smaller than a tile.
            if img.width() >= 16 && img.height() >= 16 {
                assert!(events >= pixels, "{}: {events} events for {pixels} pixels", app.name);
            }
            // Generous upper bound: FFT apps are O(n log n) per row, k-means
            // iterates; nothing should exceed ~2k events per pixel.
            assert!(
                events < pixels.saturating_mul(2000) + 100_000,
                "{}: {events} events for {pixels} pixels",
                app.name
            );
        }
    }
}

/// Scientific kernels run at any size without panicking, and their
/// event mixes are deterministic.
#[test]
fn sci_apps_are_total_and_deterministic() {
    for (idx, app) in sci::all_apps().iter().enumerate() {
        let mut r = SplitMix64::new(idx as u64).split("sci");
        let n = 8 + r.next_below(32) as usize;
        let mut s1 = CountingSink::new();
        let mut s2 = CountingSink::new();
        app.run(&mut s1, n);
        app.run(&mut s2, n);
        assert_eq!(s1.mix(), s2.mix(), "{}", app.name);
        assert!(s1.mix().total() > 0, "{}", app.name);
    }
}

/// The instrumented-math helpers stay close to libm over the domains
/// the kernels use.
#[test]
fn math_helpers_track_reference() {
    use memo_workloads::math;
    for seed in 0..64 {
        let mut r = SplitMix64::new(seed).split("math");
        let a = 0.01 + (1e6 - 0.01) * r.next_f64();
        let b = 0.01 + (1e6 - 0.01) * r.next_f64();
        let mut sink = NullSink;
        let s = math::newton_sqrt(&mut sink, a, 5);
        assert!((s - a.sqrt()).abs() / a.sqrt() < 1e-4, "sqrt({a}) = {s}");
        let h = math::hypot_approx(&mut sink, a.min(1e3), b.min(1e3));
        let want = (a.min(1e3).powi(2) + b.min(1e3).powi(2)).sqrt();
        assert!((h - want).abs() / want < 1e-3, "hypot = {h} vs {want}");
        let t = math::atan2_approx(&mut sink, b, a);
        assert!((t - f64::atan2(b, a)).abs() < 5e-3);
    }
}

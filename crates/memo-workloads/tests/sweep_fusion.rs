//! Fused-sweep equivalence: the single-pass stack engine must be
//! bit-identical to per-configuration replay for every (size,
//! associativity, tag-policy, trivial-policy) cell of the paper grid —
//! over real recorded kernels and SplitMix64-driven synthetic streams
//! (no external dev-deps; the repo builds offline).

use memo_imaging::Image;
use memo_sim::OpTrace;
use memo_table::rng::SplitMix64;
use memo_table::{Assoc, MemoConfig, Op, OpKind, TagPolicy, TrivialPolicy};
use memo_workloads::suite::{
    fusion_counters, mm_inputs, record_mm_trace, record_sci_trace, replay_stats,
    replay_stats_fused, KindStats, SweepSpec,
};
use memo_workloads::{mm, sci};

const KINDS: [OpKind; 3] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];

/// The paper's geometry grid: Figure 3's sizes at 4 ways plus Figure 4's
/// associativities at 32 entries (direct-mapped through fully
/// associative).
fn paper_grid(tag: TagPolicy, trivial: TrivialPolicy) -> Vec<MemoConfig> {
    let mut configs = Vec::new();
    for size in [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        configs.push(
            MemoConfig::builder(size)
                .assoc(Assoc::Ways(4))
                .tag(tag)
                .trivial(trivial)
                .build()
                .unwrap(),
        );
    }
    for assoc in [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(8), Assoc::Full] {
        configs.push(
            MemoConfig::builder(32).assoc(assoc).tag(tag).trivial(trivial).build().unwrap(),
        );
    }
    configs
}

/// Fused vs direct over one trace set and one (tag, trivial) plane of the
/// paper grid; asserts bit-identical per-kind statistics for every cell.
fn assert_plane_matches(name: &str, traces: &[&OpTrace], tag: TagPolicy, trivial: TrivialPolicy) {
    let with_infinite = tag == TagPolicy::FullValue && trivial != TrivialPolicy::Memoize;
    let mut specs: Vec<SweepSpec> = paper_grid(tag, trivial)
        .into_iter()
        .map(|cfg| SweepSpec::finite(cfg, &KINDS))
        .collect();
    if with_infinite {
        specs.push(SweepSpec::infinite(&KINDS));
    }
    let fused = replay_stats_fused(traces.iter().copied(), &specs);
    for (spec, cell) in specs.iter().zip(&fused) {
        let direct = KindStats::from_bank(&replay_stats(traces.iter().copied(), *spec));
        assert_eq!(*cell, direct, "{name}: {tag:?}/{trivial:?} diverged at {spec:?}");
    }
}

/// ≥8 real kernels (five MM applications, four scientific kernels), full
/// paper grid, all four (tag, trivial) planes the hit-ratio experiments
/// use.
#[test]
fn fused_sweep_is_bit_identical_for_real_kernels() {
    let images: Vec<Image> = mm_inputs(16).into_iter().map(|c| c.image).take(2).collect();
    let image_refs: Vec<&Image> = images.iter().collect();
    let mut kernels: Vec<(String, OpTrace)> = Vec::new();
    for name in ["vcost", "vdiff", "venhance", "vgauss", "vspatial"] {
        let app = mm::find(name).unwrap();
        kernels.push((name.to_string(), record_mm_trace(&app, &image_refs)));
    }
    for app in sci::all_apps().into_iter().take(4) {
        let trace = record_sci_trace(&app, 20);
        kernels.push((app.name.to_string(), trace));
    }
    assert!(kernels.len() >= 8, "enough kernels for the property");

    let before = fusion_counters();
    for (name, trace) in &kernels {
        for (tag, trivial) in [
            (TagPolicy::FullValue, TrivialPolicy::Exclude),
            (TagPolicy::FullValue, TrivialPolicy::Integrate),
            (TagPolicy::FullValue, TrivialPolicy::Memoize),
            (TagPolicy::MantissaOnly, TrivialPolicy::Exclude),
        ] {
            assert_plane_matches(name, &[trace], tag, trivial);
        }
    }
    let after = fusion_counters();
    assert!(
        after.grids_fused > before.grids_fused,
        "the full-value planes must actually take the fused path"
    );
}

/// Deterministic synthetic operand streams: heavy reuse, conflict
/// pressure, trivial operands, denormal-adjacent magnitudes, and both
/// operand orders — the stress inputs the image kernels don't produce.
fn synthetic_trace(seed: u64, n: usize) -> OpTrace {
    let mut rng = SplitMix64::new(seed).split("sweep-fusion");
    let mut trace = OpTrace::new();
    for _ in 0..n {
        let a = rng.next_below(40) as i64 - 4;
        let b = rng.next_below(40) as i64 - 4;
        let scale = match rng.next_below(8) {
            0 => 2f64.powi(-500),
            1 => 2f64.powi(400),
            _ => 0.5,
        };
        match rng.next_below(4) {
            0 => trace.push(Op::IntMul(a, b)),
            1 => trace.push(Op::FpMul(a as f64 * scale, b as f64 * 0.25)),
            2 => trace.push(Op::FpDiv(a as f64, b as f64 * scale)),
            _ => trace.push(Op::FpSqrt((a.unsigned_abs() as f64) * scale)),
        }
    }
    trace
}

/// Eight synthetic kernels across the same planes, plus the edge
/// geometries (assoc == entries, single-entry, infinite column).
#[test]
fn fused_sweep_is_bit_identical_for_synthetic_streams() {
    for kernel in 0..8u64 {
        let trace = synthetic_trace(0x5EED + kernel, 6000);
        for (tag, trivial) in [
            (TagPolicy::FullValue, TrivialPolicy::Exclude),
            (TagPolicy::FullValue, TrivialPolicy::Memoize),
            (TagPolicy::MantissaOnly, TrivialPolicy::Exclude),
        ] {
            assert_plane_matches("synthetic", &[&trace], tag, trivial);
        }
    }
}

/// Edge geometries as their own spec family: a 1-entry table, a fully
/// associative 4-entry table (one set), and the infinite column fused in
/// a single grid.
#[test]
fn fused_sweep_handles_edge_geometries() {
    let trace = synthetic_trace(0xED6E, 5000);
    let specs = [
        SweepSpec::finite(
            MemoConfig::builder(1).assoc(Assoc::DirectMapped).build().unwrap(),
            &KINDS,
        ),
        SweepSpec::finite(MemoConfig::builder(4).assoc(Assoc::Full).build().unwrap(), &KINDS),
        SweepSpec::infinite(&KINDS),
    ];
    let fused = replay_stats_fused([&trace], &specs);
    for (spec, cell) in specs.iter().zip(&fused) {
        let direct = KindStats::from_bank(&replay_stats([&trace], *spec));
        assert_eq!(*cell, direct, "edge geometry diverged at {spec:?}");
    }
}

/// Multi-trace replay (several inputs of one application) must fuse to
/// the same statistics as feeding the same traces directly, in order.
#[test]
fn fused_sweep_preserves_multi_trace_order() {
    let traces: Vec<OpTrace> = (0..3).map(|i| synthetic_trace(0xABC + i, 2000)).collect();
    let refs: Vec<&OpTrace> = traces.iter().collect();
    let specs: Vec<SweepSpec> = paper_grid(TagPolicy::FullValue, TrivialPolicy::Exclude)
        .into_iter()
        .map(|cfg| SweepSpec::finite(cfg, &KINDS))
        .collect();
    let fused = replay_stats_fused(refs.iter().copied(), &specs);
    for (spec, cell) in specs.iter().zip(&fused) {
        let direct = KindStats::from_bank(&replay_stats(refs.iter().copied(), *spec));
        assert_eq!(*cell, direct, "multi-trace diverged at {spec:?}");
    }
}
